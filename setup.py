"""Legacy setup shim.

Kept so that ``pip install -e .`` works in fully offline environments whose
pip/setuptools cannot build PEP 660 editable wheels (no ``wheel`` package);
all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
