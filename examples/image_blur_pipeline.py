#!/usr/bin/env python
"""Image-processing pipeline: compare SSAM against the library baselines.

Applies a sharpening filter and a large Gaussian blur to an image and
compares the SSAM kernel with the NPP-like, ArrayFire-like and cuFFT-like
baselines — the Figure 4 experiment at a workstation-friendly size, with
functional outputs cross-checked against each other.

The second half runs the two-pass Gaussian blur *pipeline* both ways:
as the conventional chain of two kernel launches (the intermediate image
round-tripping through DRAM) and as one fused launch on the trace-replay
engine, where producer blocks stay a halo ahead of consumer blocks and
the intermediate never leaves the cache hierarchy.  The outputs are
bit-identical; only the DRAM traffic differs.
"""

import numpy as np

from repro import ConvolutionSpec
from repro.baselines import (
    arrayfire_like_convolve2d,
    cufft_like_convolve2d,
    npp_like_convolve2d,
)
from repro.kernels.conv2d_ssam import ssam_convolve2d, ssam_convolve2d_chain
from repro.workloads import gradient_image


def run_filter(name: str, spec: ConvolutionSpec, image: np.ndarray) -> None:
    print(f"\n--- {name} ({spec.filter_width}x{spec.filter_height}) ---")
    reference = spec.reference(image)
    implementations = {
        "ssam": ssam_convolve2d(image, spec, "p100"),
        "npp_like": npp_like_convolve2d(image, spec, "p100"),
        "arrayfire_like": arrayfire_like_convolve2d(image, spec, "p100"),
        "cufft_like": cufft_like_convolve2d(image, spec, "p100"),
    }
    for label, result in implementations.items():
        error = float(np.max(np.abs(result.output - reference))) if result.output is not None else float("nan")
        interior_note = " (interior only)" if label == "cufft_like" else ""
        print(f"{label:15s} estimated {result.milliseconds:8.3f} ms   "
              f"max|err|={error:.2e}{interior_note}")


def run_blur_pipeline(spec: ConvolutionSpec, image: np.ndarray) -> None:
    print(f"\n--- two-pass blur pipeline ({spec.filter_width}x{spec.filter_height}, applied twice) ---")
    chain = ssam_convolve2d_chain(image, spec, passes=2, fused=False)
    fused = ssam_convolve2d_chain(image, spec, passes=2, fused=True)
    np.testing.assert_array_equal(fused.output, chain.output)
    for label, result in (("chained (2 launches)", chain),
                          ("fused (1 launch)", fused)):
        counters = result.launch.counters
        dram = counters.dram_read_bytes + counters.dram_write_bytes
        print(f"{label:22s} dram={dram / 1024:10.1f} KiB   "
              f"(read {counters.dram_read_bytes / 1024:.1f}, "
              f"write {counters.dram_write_bytes / 1024:.1f})")
    saved = (chain.launch.counters.dram_write_bytes
             - fused.launch.counters.dram_write_bytes)
    print(f"fusion keeps the intermediate on chip: "
          f"{saved / 1024:.1f} KiB of DRAM writes eliminated, "
          f"outputs bit-identical")


def main() -> None:
    image = gradient_image(384, 256) + 0.05 * np.random.default_rng(0).standard_normal((256, 384)).astype(np.float32)
    run_filter("sharpen", ConvolutionSpec.sharpen(), image)
    run_filter("gaussian blur", ConvolutionSpec.gaussian(9), image)
    run_blur_pipeline(ConvolutionSpec.gaussian(9), image)


if __name__ == "__main__":
    main()
