#!/usr/bin/env python
"""Image-processing pipeline: compare SSAM against the library baselines.

Applies a sharpening filter and a large Gaussian blur to an image and
compares the SSAM kernel with the NPP-like, ArrayFire-like and cuFFT-like
baselines — the Figure 4 experiment at a workstation-friendly size, with
functional outputs cross-checked against each other.
"""

import numpy as np

from repro import ConvolutionSpec
from repro.baselines import (
    arrayfire_like_convolve2d,
    cufft_like_convolve2d,
    npp_like_convolve2d,
)
from repro.kernels.conv2d_ssam import ssam_convolve2d
from repro.workloads import gradient_image


def run_filter(name: str, spec: ConvolutionSpec, image: np.ndarray) -> None:
    print(f"\n--- {name} ({spec.filter_width}x{spec.filter_height}) ---")
    reference = spec.reference(image)
    implementations = {
        "ssam": ssam_convolve2d(image, spec, "p100"),
        "npp_like": npp_like_convolve2d(image, spec, "p100"),
        "arrayfire_like": arrayfire_like_convolve2d(image, spec, "p100"),
        "cufft_like": cufft_like_convolve2d(image, spec, "p100"),
    }
    for label, result in implementations.items():
        error = float(np.max(np.abs(result.output - reference))) if result.output is not None else float("nan")
        interior_note = " (interior only)" if label == "cufft_like" else ""
        print(f"{label:15s} estimated {result.milliseconds:8.3f} ms   "
              f"max|err|={error:.2e}{interior_note}")


def main() -> None:
    image = gradient_image(384, 256) + 0.05 * np.random.default_rng(0).standard_normal((256, 384)).astype(np.float32)
    run_filter("sharpen", ConvolutionSpec.sharpen(), image)
    run_filter("gaussian blur", ConvolutionSpec.gaussian(9), image)


if __name__ == "__main__":
    main()
