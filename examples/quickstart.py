#!/usr/bin/env python
"""Quickstart: run an SSAM convolution and inspect its cost breakdown.

Convolves an image with a Gaussian filter using the software-systolic
kernel of Listing 1 on the simulated Tesla V100, checks the result against
the CPU reference and prints where the time goes.
"""

import numpy as np

from repro import ConvolutionSpec, plan_convolution, ssam_convolve2d
from repro.workloads import random_image


def main() -> None:
    image = random_image(512, 256, seed=7)
    spec = ConvolutionSpec.gaussian(5)

    plan = plan_convolution(spec, architecture="v100")
    print("SSAM plan:", plan.describe())

    result = ssam_convolve2d(image, spec, architecture="v100", plan=plan)
    reference = spec.reference(image)
    error = float(np.max(np.abs(result.output - reference)))

    timing = result.launch.timing
    print(f"max |error| vs reference : {error:.2e}")
    print(f"estimated kernel time    : {result.milliseconds:.3f} ms")
    print(f"bottleneck               : {timing.bottleneck}")
    print("time breakdown (ms)      :",
          {k: round(v * 1e3, 4) for k, v in timing.as_dict().items()})
    counters = result.launch.counters
    print(f"warp instructions        : fma={counters.fma:.0f} shfl={counters.shfl:.0f} "
          f"smem_broadcast={counters.smem_broadcast:.0f}")
    print(f"DRAM traffic             : {counters.dram_bytes / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
