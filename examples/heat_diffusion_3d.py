#!/usr/bin/env python
"""3-D heat diffusion with the SSAM 7-point stencil (Section 4.9).

Runs several Jacobi iterations of the 3-D diffusion stencil on a grid with a
hot cube in the centre, validates against the CPU reference, and reports the
throughput the same configuration would reach at the paper's 512^3 scale.
"""

import numpy as np

from repro.kernels.stencil3d_ssam import analytic_launch, ssam_stencil3d
from repro.stencils.catalog import get_benchmark
from repro.workloads import hotspot_grid


def main() -> None:
    benchmark = get_benchmark("3d7pt")
    spec = benchmark.spec
    iterations = 4

    grid = hotspot_grid(48, 40, depth=24, peak=100.0)
    result = ssam_stencil3d(grid, spec, iterations=iterations, architecture="p100")
    reference = spec.reference(grid, iterations=iterations)
    print(f"grid {grid.shape}, {iterations} Jacobi iterations of {spec.name}")
    print(f"max |error| vs reference     : {np.max(np.abs(result.output - reference)):.2e}")
    print(f"centre temperature (t0 -> tN): {grid[12, 20, 24]:.1f} -> {result.output[12, 20, 24]:.2f}")
    print(f"estimated kernel time        : {result.milliseconds:.3f} ms "
          f"({result.launch.timing.bottleneck}-bound)")

    # paper-scale projection (512^3, one iteration) on both GPUs
    for arch in ("p100", "v100"):
        projected = analytic_launch(spec, 512, 512, 512, 1, arch)
        gcells = projected.gcells_per_second(benchmark.cells, 1)
        print(f"projected 512^3 throughput on {arch.upper():5s}: {gcells:6.1f} GCells/s")


if __name__ == "__main__":
    main()
