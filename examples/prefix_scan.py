#!/usr/bin/env python
"""The Kogge–Stone scan expressed in SSAM (the Section 3.6 motivating example).

Shows the J = (O, D, X, Y) formulation explicitly — the dependency graph, the
shuffle schedule and its critical-path latency on both GPUs — and then runs
the warp-level scan kernel on real data.
"""

import numpy as np

from repro.core.model import SystolicProgram
from repro.kernels.scan_ssam import reference_scan, ssam_scan
from repro.workloads import sequence


def main() -> None:
    program = SystolicProgram.kogge_stone_scan()
    print("J = (O, D, X, Y) for the warp-level Kogge-Stone scan:")
    for key, value in program.describe().items():
        print(f"  {key:20s}: {value}")
    for arch in ("p100", "v100"):
        print(f"  critical path on {arch}: {program.critical_path_cycles(arch):.0f} cycles")

    data = sequence(10_000, seed=42)
    result = ssam_scan(data, architecture="v100")
    expected = reference_scan(data)
    print(f"\nscanned {data.size} elements; max |error| = "
          f"{np.max(np.abs(result.output - expected)):.2e}")
    print(f"warp shuffles issued: {result.launch.counters.shfl:.0f}")
    print(f"estimated kernel time: {result.milliseconds:.4f} ms")


if __name__ == "__main__":
    main()
