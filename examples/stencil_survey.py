#!/usr/bin/env python
"""Survey the Table 3 stencil suite: SSAM vs baselines at paper scale.

Regenerates a compact version of Figure 5 (P100, single precision) and
prints the Section 5 latency-model prediction next to the measured speedup
so the two can be compared — the experiment behind EXPERIMENTS.md.
"""

from repro.analysis.tables import format_series, format_table
from repro.core.performance_model import compare_latencies
from repro.experiments import figure5
from repro.stencils.catalog import CATALOG

BENCHMARKS = ("2d5pt", "2d9pt", "2d25pt", "2d81pt", "3d7pt", "poisson")


def main() -> None:
    panel = figure5.run("p100", "float32", benchmarks=BENCHMARKS)
    print(format_series("Figure 5 subset — Tesla P100, float32", "benchmark",
                        panel["benchmarks"], panel["gcells_per_second"], unit="GCells/s"))
    print(f"\nSSAM fastest or tied on {panel['ssam_wins']}/{panel['total']} benchmarks\n")

    rows = []
    for name in BENCHMARKS:
        spec = CATALOG[name].spec
        comparison = compare_latencies("p100", spec.footprint_width, spec.footprint_height)
        ssam = panel["gcells_per_second"]["ssam"][list(BENCHMARKS).index(name)]
        smem = panel["gcells_per_second"]["ppcg"][list(BENCHMARKS).index(name)]
        rows.append({
            "benchmark": name,
            "latency_model_speedup": round(comparison.speedup, 2),
            "measured_speedup_vs_ppcg": round(ssam / smem, 2),
        })
    print(format_table(rows))


if __name__ == "__main__":
    main()
