"""Benchmark regenerating Figure 4 (2-D convolution runtime vs. filter size).

Prints, for each architecture, the per-filter-size runtimes of SSAM and of
every baseline at the paper's 8192^2 problem size, plus the headline
SSAM-vs-NPP speedup the paper reports as ~2.5x.
"""

import pytest

from repro.analysis.tables import format_series
from repro.experiments import figure4

#: reduced sweep keeps the benchmark harness quick; pass the full range to
#: ``figure4.run`` (or use ``ssam-repro -e figure4``) for every size 2..20
BENCH_FILTER_SIZES = (2, 3, 5, 7, 9, 11, 13, 15, 17, 20)


@pytest.mark.parametrize("architecture", ["p100", "v100"])
def test_bench_figure4_panel(benchmark, architecture):
    panel = benchmark(figure4.run, architecture, "float32", BENCH_FILTER_SIZES)
    labels = [f"{s}x{s}" for s in panel["filter_sizes"]]
    print("\n" + format_series(
        f"Figure 4 ({architecture.upper()}, float32, 8192x8192) — runtime",
        "filter", labels, panel["milliseconds"], unit="ms"))
    print(f"summary: {panel['summary']}")
    assert panel["summary"]["ssam_vs_npp_geomean_speedup"] > 1.5
    assert panel["summary"]["ssam_fastest_fraction"] >= 0.6


def test_bench_figure4_functional_small_image(benchmark):
    """Times the actual simulated SSAM kernel end to end on a small image."""
    import numpy as np

    from repro.convolution.spec import ConvolutionSpec
    from repro.kernels.conv2d_ssam import ssam_convolve2d
    from repro.workloads import random_image

    spec = ConvolutionSpec.gaussian(5)
    image = random_image(256, 128, seed=1)
    result = benchmark(ssam_convolve2d, image, spec, "p100")
    np.testing.assert_allclose(result.output, spec.reference(image), rtol=2e-5, atol=2e-5)
