"""Benchmark regenerating Figure 5 (stencil throughput across Table 3).

Each panel prints GCells/s for SSAM and the baseline implementations at the
paper's domain sizes (8192^2 / 512^3).
"""

import pytest

from repro.analysis.tables import format_series
from repro.experiments import figure5

#: subset used by the timed benchmark (full suite via ``ssam-repro -e figure5``)
BENCH_BENCHMARKS = ("2d5pt", "2d9pt", "2d25pt", "2d81pt", "2d121pt", "3d7pt", "poisson")


@pytest.mark.parametrize("architecture, precision", [
    ("p100", "float32"), ("v100", "float32"), ("p100", "float64"), ("v100", "float64"),
])
def test_bench_figure5_panel(benchmark, architecture, precision):
    panel = benchmark(figure5.run, architecture, precision, BENCH_BENCHMARKS)
    print("\n" + format_series(
        f"Figure 5 ({architecture.upper()}, {precision}) — stencil throughput",
        "benchmark", panel["benchmarks"], panel["gcells_per_second"], unit="GCells/s"))
    print(f"SSAM fastest or tied on {panel['ssam_wins']}/{panel['total']} benchmarks")
    assert panel["ssam_wins"] >= panel["total"] - 3


def test_bench_figure5_functional_small_grid(benchmark):
    """Times the simulated SSAM 2-D stencil kernel on a small grid."""
    import numpy as np

    from repro.kernels.stencil2d_ssam import ssam_stencil2d
    from repro.stencils.catalog import get_stencil
    from repro.workloads import random_image

    spec = get_stencil("2d5pt")
    grid = random_image(256, 128, seed=2)
    result = benchmark(ssam_stencil2d, grid, spec, 1, "v100")
    np.testing.assert_allclose(result.output, spec.reference(grid), rtol=2e-5, atol=2e-5)
