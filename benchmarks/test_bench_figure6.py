"""Benchmark regenerating Figure 6 (temporal blocking comparison)."""

import pytest

from repro.analysis.tables import format_series
from repro.experiments import figure6


@pytest.mark.parametrize("architecture, precision", [
    ("p100", "float32"), ("p100", "float64"), ("v100", "float32"), ("v100", "float64"),
])
def test_bench_figure6_panel(benchmark, architecture, precision):
    panel = benchmark(figure6.run, architecture, precision)
    print("\n" + format_series(
        f"Figure 6 ({architecture.upper()}, {precision}) — temporal blocking",
        "benchmark", panel["benchmarks"], panel["gcells_per_second"], unit="GCells/s"))
    ssam = [v for v in panel["gcells_per_second"]["ssam"] if v]
    single_pass_roofline = 120.0 if precision == "float32" else 60.0
    # temporal blocking should push most benchmarks past the single-pass roofline
    assert max(ssam) > single_pass_roofline


def test_bench_figure6_diffusion_reference_comparison(benchmark):
    """SSAM vs the published Diffusion/Bricks numbers on 3d7pt (P100, fp32)."""
    from repro.baselines.temporal import published_reference, ssam_temporal_stencil
    from repro.stencils.catalog import get_benchmark

    bench = get_benchmark("3d7pt")
    width, height, depth = bench.domain

    def run():
        return ssam_temporal_stencil(bench.spec, width, height, depth, time_steps=32,
                                     architecture="p100").gcells_per_second(bench.cells, 32)

    ssam = benchmark(run)
    bricks = published_reference("bricks", "p100", "float32")
    print(f"\nSSAM temporal 3d7pt P100: {ssam:.1f} GCells/s "
          f"(Bricks published: {bricks}, Diffusion published: "
          f"{published_reference('diffusion', 'p100', 'float32')})")
    assert ssam > bricks
