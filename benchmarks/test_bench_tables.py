"""Benchmarks regenerating Table 1, Table 2 and Table 3 of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark times the
regeneration harness and prints the rows the paper reports so that the
output can be compared side by side with the original tables.
"""


from repro.experiments import table1, table2, table3


def test_bench_table1(benchmark):
    rows = benchmark(table1.run)
    assert all(row["matches_paper"] for row in rows)
    print("\n" + table1.report())


def test_bench_table2(benchmark):
    rows = benchmark(table2.run)
    assert all(row["matches_paper"] for row in rows)
    print("\n" + table2.report())


def test_bench_table3(benchmark):
    rows = benchmark(table3.run)
    assert all(row["matches_paper"] for row in rows)
    print("\n" + table3.report())
