"""Benchmarks for the Section 5 performance model and the simulator itself.

These are the ablation-style benches called out in DESIGN.md: the analytic
model sweep (Eq. 4/5 + halo analysis), the occupancy calculator, and the raw
block-execution throughput of the simulator.
"""

import numpy as np

from repro.core.performance_model import advantage_table
from repro.experiments import model_validation
from repro.gpu.architecture import TESLA_P100
from repro.gpu.microbench import run_table2
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.warp import shfl_up


def test_bench_section5_model_sweep(benchmark):
    rows = benchmark(advantage_table, "p100", range(2, 21), 4)
    assert all(row["dif_cycles"] > 0 for row in rows)
    print("\n" + model_validation.report())


def test_bench_occupancy_calculator(benchmark):
    def sweep():
        return [compute_occupancy(TESLA_P100, block, regs, smem).occupancy
                for block in (64, 128, 256, 512)
                for regs in (32, 64, 128, 255)
                for smem in (0, 16 * 1024, 48 * 1024)]

    occupancies = benchmark(sweep)
    # the sweep spans configurations from fully occupied down to ones whose
    # register demand cannot fit a single 512-thread block on an SM
    assert max(occupancies) == 1.0
    assert min(occupancies) >= 0.0


def test_bench_microbenchmark_harness(benchmark):
    rows = benchmark(run_table2)
    assert len(rows) == 6


def test_bench_warp_shuffle_throughput(benchmark):
    values = np.arange(32 * 4096, dtype=np.float32)

    def shuffle_many():
        out = values
        for _ in range(8):
            out = shfl_up(out, 1)
        return out

    result = benchmark(shuffle_many)
    assert result.shape == values.shape
