"""Per-PR benchmark artifact: emit ``BENCH_10.json`` at the repo root.

Measures the quantities this PR's acceptance criteria pin:

* **blocks/s per kernel x engine** — the five paper SSAM kernels through
  the scalar (per-block loop), batched (vectorized multi-block) and replay
  (compiled trace) engines, on paper-scale domains with grid sampling to
  bound wall-clock.  Replay is timed cold (record + compile + run) and
  warm (cached program, memoized counters); the headline pin is warm
  replay >= 3x batched blocks/s on conv2d and stencil2d.
* **blocks/s on the new architectures** — every registered SSAM scenario
  (the paper five plus the PR-8 registry additions) through each
  functional engine on the post-paper A100/H100 parts, via the registry.
* **sweep wall-clock, cold vs warm** — one sweep matrix through the cached
  job pipeline twice against a fresh cache directory, with the cache hit
  rates of both passes (warm must be 100% hits).
* **store throughput** — results/s into the shared sqlite/WAL result
  store: serial upserts, warm lookups, and aggregate results/s under
  concurrent writer threads (the regime the sweep service and overlapping
  CLI runs put it in).
* **guided autotuning** — model evaluations and wall-clock of the guided
  search against the exhaustive oracle over the full 80-cell tune matrix
  (quick: a pinned subset), plus the ``best_config`` lookup latency of the
  persistent tuning database — the cost a warm planner pays to resolve
  tuned defaults.
* **static analysis** — per-scenario wall-clock of the trace-IR verifier
  (record + interval analysis + race/bounds/lint checks + the
  static-vs-dynamic counter cross-check), one cell per analyzable scenario
  per architecture (quick: p100 only), with the finding count — the cost
  the ``analyze`` experiment and the CI analyze gate pay per cell.

Run from the repo root::

    PYTHONPATH=src python benchmarks/export.py            # full, ~2 min
    PYTHONPATH=src python benchmarks/export.py --quick    # CI smoke, ~15 s

The artifact is committed at the repo root so the perf trajectory is
reviewable per PR; CI regenerates it at ``--quick`` scale and uploads it.
``BENCH_9.json`` (the PR-9 artifact) stays committed for the trajectory.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
from typing import Callable, Dict, Optional

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

SCHEMA = "ssam-bench/PR10"

#: the post-paper parts added by PR 8; the registry loop below measures
#: every SSAM scenario on each of them
NEW_ARCHITECTURES = ("a100", "h100")

#: acceptance pins checked by ``--check`` and recorded in the artifact
REPLAY_SPEEDUP_PINS = {"conv2d": 3.0, "stencil2d": 3.0}


def _workloads(quick: bool) -> Dict[str, Dict[str, object]]:
    """Fixed benchmark workloads (paper-scale domains, sampled grids)."""
    from repro.convolution.spec import ConvolutionSpec
    from repro.stencils.catalog import get_stencil

    rng = np.random.default_rng(20190617)
    if quick:
        image = rng.random((256, 512), dtype=np.float32)
        volume = rng.random((16, 40, 64), dtype=np.float32)
        sequence = rng.random(1 << 16, dtype=np.float32)
        max_blocks = 512
    else:
        image = rng.random((2048, 2048), dtype=np.float32)
        volume = rng.random((64, 256, 256), dtype=np.float32)
        sequence = rng.random(1 << 22, dtype=np.float32)
        max_blocks = 4096
    conv_spec = ConvolutionSpec.gaussian(9)
    taps = rng.random(7).astype(np.float32)

    def conv2d(batch_size, blocks=None):
        from repro.kernels.conv2d_ssam import ssam_convolve2d
        return ssam_convolve2d(image, conv_spec, batch_size=batch_size,
                               max_blocks=blocks or max_blocks)

    def stencil2d(batch_size, blocks=None):
        from repro.kernels.stencil2d_ssam import ssam_stencil2d
        return ssam_stencil2d(image, get_stencil("2d9pt"),
                              batch_size=batch_size,
                              max_blocks=blocks or max_blocks)

    def stencil3d(batch_size, blocks=None):
        from repro.kernels.stencil3d_ssam import ssam_stencil3d
        return ssam_stencil3d(volume, get_stencil("3d7pt"),
                              batch_size=batch_size,
                              max_blocks=blocks or max_blocks)

    def conv1d(batch_size, blocks=None):
        from repro.kernels.conv1d_ssam import ssam_convolve1d
        return ssam_convolve1d(sequence, taps, batch_size=batch_size,
                               max_blocks=blocks or max_blocks)

    def scan(batch_size, blocks=None):
        from repro.kernels.scan_ssam import ssam_scan
        return ssam_scan(sequence, batch_size=batch_size,
                         max_blocks=blocks or max_blocks)

    shapes = {
        "conv2d": {"domain": list(image.shape), "filter": "gaussian9"},
        "stencil2d": {"domain": list(image.shape), "stencil": "2d9pt"},
        "stencil3d": {"domain": list(volume.shape), "stencil": "3d7pt"},
        "conv1d": {"domain": [int(sequence.size)], "taps": 7},
        "scan": {"domain": [int(sequence.size)]},
    }
    runners = {"conv2d": conv2d, "stencil2d": stencil2d,
               "stencil3d": stencil3d, "conv1d": conv1d, "scan": scan}
    return {name: {"run": runners[name], "max_blocks": max_blocks,
                   **shapes[name]}
            for name in runners}


def _rate(run: Callable, batch_size, repeats: int,
          blocks_cap: Optional[int] = None) -> Dict[str, float]:
    """Best-of-N blocks/s of one engine on one workload."""
    best = float("inf")
    blocks = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = run(batch_size, blocks_cap)
        best = min(best, time.perf_counter() - start)
        blocks = int(result.launch.blocks_executed)
    return {"blocks": blocks, "seconds": round(best, 6),
            "blocks_per_second": round(blocks / best, 1)}


def measure_throughput(quick: bool) -> Dict[str, object]:
    repeats = 1 if quick else 3
    out: Dict[str, object] = {}
    for name, workload in _workloads(quick).items():
        run = workload.pop("run")
        engines: Dict[str, Dict[str, float]] = {}
        engines["batched"] = _rate(run, "auto", repeats)
        cold_start = time.perf_counter()
        cold_result = run("replay", None)
        cold_seconds = time.perf_counter() - cold_start
        engines["replay_cold"] = {
            "blocks": int(cold_result.launch.blocks_executed),
            "seconds": round(cold_seconds, 6),
            "blocks_per_second": round(
                cold_result.launch.blocks_executed / cold_seconds, 1),
        }
        engines["replay"] = _rate(run, "replay", repeats)
        # the per-block loop is orders of magnitude slower: sample a
        # smaller grid so the artifact stays cheap (blocks/s is a rate,
        # sampling does not change it materially)
        engines["scalar"] = _rate(run, 1, 1,
                                  blocks_cap=128 if quick else 512)
        speedup = (engines["replay"]["blocks_per_second"]
                   / engines["batched"]["blocks_per_second"])
        out[name] = dict(workload)
        out[name]["engines"] = engines
        out[name]["replay_speedup_vs_batched"] = round(speedup, 3)
    return out


def measure_new_architectures(quick: bool) -> Dict[str, object]:
    """blocks/s per registered SSAM kernel x functional engine on A100/H100.

    Driven through the scenario registry, so the PR-8 kernels (higher-order
    and variable-coefficient stencils, the masked stencil, the two-stage
    convolution chain) are covered automatically alongside the paper five.
    """
    from repro.scenarios import ScenarioCase, get_scenario, scenario_names

    engines = ("scalar", "batched", "replay")
    size = "tiny" if quick else "small"
    out: Dict[str, object] = {}
    for name in scenario_names(role="ssam"):
        scenario = get_scenario(name)
        per_arch: Dict[str, Dict[str, Dict[str, float]]] = {}
        for arch in NEW_ARCHITECTURES:
            per_engine: Dict[str, Dict[str, float]] = {}
            for engine in engines:
                if not scenario.supports(arch, "float32", engine, size):
                    continue
                case = ScenarioCase(name, arch, "float32", engine, size)
                start = time.perf_counter()
                result = scenario.run_case(case)
                seconds = time.perf_counter() - start
                blocks = int(result.launch.blocks_executed)
                per_engine[engine] = {
                    "blocks": blocks,
                    "seconds": round(seconds, 6),
                    "blocks_per_second": round(blocks / seconds, 1),
                }
            per_arch[arch] = per_engine
        out[name] = {"size": size, **per_arch}
    return out


def measure_sweep(quick: bool) -> Dict[str, object]:
    """Cold and warm wall-clock of one sweep matrix through the pipeline."""
    from repro.experiments.cache import SimulationCache
    from repro.experiments.parallel import execute_jobs
    from repro.scenarios import sweep

    matrix = sweep.load_matrix("smoke" if quick else "tier1")
    jobs = sweep.jobs(matrix)
    with tempfile.TemporaryDirectory() as tmp:
        cold_cache = SimulationCache(tmp)
        start = time.perf_counter()
        execute_jobs(jobs, workers=1, cache=cold_cache)
        cold_seconds = time.perf_counter() - start

        warm_cache = SimulationCache(tmp)
        start = time.perf_counter()
        execute_jobs(sweep.jobs(matrix), workers=1, cache=warm_cache)
        warm_seconds = time.perf_counter() - start

    cold_stats = cold_cache.stats()
    warm_stats = warm_cache.stats()

    def hit_rate(stats):
        total = stats["hits"] + stats["misses"]
        return round(stats["hits"] / total, 4) if total else None

    return {
        "matrix": matrix.get("name", "smoke" if quick else "tier1"),
        "jobs": len(jobs),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "cold_cache": {**cold_stats, "hit_rate": hit_rate(cold_stats)},
        "warm_cache": {**warm_stats, "hit_rate": hit_rate(warm_stats)},
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
    }


def measure_store(quick: bool) -> Dict[str, object]:
    """Results/s into the shared sqlite/WAL store, serial and concurrent.

    Three regimes: serial first-writer upserts (the store-back path of a
    cold sweep), warm lookups (the dedup path of a resubmit), and several
    writer threads publishing disjoint key ranges into one store at once
    (the service worker pool / overlapping CLI runs).  Payload shape
    mirrors a sweep cell's (a small nested mapping with counters).
    """
    import threading

    from repro.service.store import ResultStore

    entries = 200 if quick else 2000
    writer_threads = 4

    def payload_for(i: int) -> Dict[str, object]:
        return {"milliseconds": i * 0.25,
                "counters": {"fma": i * 100.0, "dram_read_bytes": i * 8.0},
                "config": {"block_threads": 128, "outputs_per_thread": 4},
                "label": f"bench-cell-{i}"}

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(str(pathlib.Path(tmp) / "bench.sqlite"),
                            code_version=lambda: "bench")
        start = time.perf_counter()
        for i in range(entries):
            store.upsert({"bench": "serial", "i": i}, payload_for(i),
                         job_key=f"bench:{i}")
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for i in range(entries):
            store.get({"bench": "serial", "i": i})
        lookup_seconds = time.perf_counter() - start
        store.close()

        concurrent = ResultStore(str(pathlib.Path(tmp) / "bench-mt.sqlite"),
                                 code_version=lambda: "bench")
        share = entries // writer_threads
        barrier = threading.Barrier(writer_threads + 1)

        def write_range(start_i: int) -> None:
            barrier.wait()
            for i in range(start_i, start_i + share):
                concurrent.upsert({"bench": "mt", "i": i}, payload_for(i),
                                  job_key=f"bench:{i}")

        threads = [threading.Thread(target=write_range, args=(t * share,))
                   for t in range(writer_threads)]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - start
        written = concurrent.entry_count()
        concurrent.close()

    return {
        "entries": entries,
        "serial_upserts_per_second": round(entries / serial_seconds, 1),
        "lookups_per_second": round(entries / lookup_seconds, 1),
        "concurrent_writers": writer_threads,
        "concurrent_entries": written,
        "concurrent_upserts_per_second": round(written / concurrent_seconds,
                                               1),
    }


def measure_tuning(quick: bool) -> Dict[str, object]:
    """Guided vs exhaustive search cost, and tuned-config lookup latency.

    The search comparison runs the model stage only (no confirmation) so
    both numbers isolate the quantity the guided strategy actually saves:
    performance-model evaluations.  The lookup benchmark then measures the
    ``best_config`` path a warm planner takes — a single-row sqlite read —
    both uncached (every call hits the database) and through the
    resolver's memoised lookup.
    """
    from repro.core.launch_defaults import (
        clear_lookup_cache,
        lookup_tuned_config,
        tuning_database,
    )
    from repro.experiments.cache import SimulationCache
    from repro.tuning import run_tuning

    if quick:
        cells = dict(scenarios=["conv2d", "stencil2d", "scan"],
                     architectures=["p100", "h100"],
                     precisions=["float32"])
    else:
        cells = {}   # the full 80-cell tune matrix
    out: Dict[str, object] = {}
    with tempfile.TemporaryDirectory() as tmp:
        cache = SimulationCache(tmp)
        for search in ("exhaustive", "guided"):
            start = time.perf_counter()
            result = run_tuning(confirm=False, search=search,
                                cache=cache if search == "guided" else None,
                                **cells)
            seconds = time.perf_counter() - start
            evals = result.metadata["evaluations"]
            out[search] = {
                "cells": len(result.measurements),
                "model_evaluations": evals["evaluated"],
                "space_points": evals["space"],
                "seconds": round(seconds, 3),
            }
        out["guided_fraction_of_exhaustive"] = round(
            out["guided"]["model_evaluations"]
            / out["exhaustive"]["model_evaluations"], 4)

        # the guided run above persisted tuned rows into the cache's store
        store = cache.result_store()
        lookups = 200 if quick else 2000
        start = time.perf_counter()
        for _ in range(lookups):
            found = store.best_config("conv2d", "p100", "float32")
        uncached_seconds = time.perf_counter() - start
        assert found is not None, "the guided tune must have written rows"

        with tuning_database(tmp):
            lookup_tuned_config("conv2d", "p100", "float32")  # prime
            start = time.perf_counter()
            for _ in range(lookups):
                lookup_tuned_config("conv2d", "p100", "float32")
            memoised_seconds = time.perf_counter() - start
        clear_lookup_cache()
        out["best_config_lookup"] = {
            "lookups": lookups,
            "store_microseconds": round(1e6 * uncached_seconds / lookups, 2),
            "resolver_memoised_microseconds": round(
                1e6 * memoised_seconds / lookups, 2),
        }
    return out


def measure_analysis(quick: bool) -> Dict[str, object]:
    """Wall-clock of the static verifier per analyzable scenario.

    Each cell runs the full ``analyze`` path: record the replay traces,
    run the interval/race/bounds/lint passes, and cross-check the static
    counter predictions against the dynamic engine.  Quick covers p100
    only; the full artifact covers every supported architecture, matching
    the CI analyze gate.
    """
    import repro.scenarios.builtin  # noqa: F401  (populate the registry)
    from repro.analysis.scenario import (
        ANALYZE_ARCHITECTURES,
        analyze_scenario,
        supports_analysis,
    )
    from repro.scenarios import all_scenarios

    architectures = ("p100",) if quick else ANALYZE_ARCHITECTURES
    scenarios: Dict[str, object] = {}
    total_findings = 0
    total_seconds = 0.0
    for entry in all_scenarios():
        if not supports_analysis(entry):
            continue
        per_arch: Dict[str, Dict[str, object]] = {}
        for arch in architectures:
            if arch not in entry.architectures:
                continue
            start = time.perf_counter()
            analysis = analyze_scenario(entry.name, architecture=arch)
            seconds = time.perf_counter() - start
            per_arch[arch] = {
                "seconds": round(seconds, 6),
                "traces": len(analysis.reports),
                "findings": len(analysis.findings),
                "ok": analysis.ok,
            }
            total_findings += len(analysis.findings)
            total_seconds += seconds
        scenarios[entry.name] = per_arch
    return {
        "architectures": list(architectures),
        "scenarios": scenarios,
        "cells": sum(len(v) for v in scenarios.values()),
        "total_seconds": round(total_seconds, 3),
        "total_findings": total_findings,
    }


def export(quick: bool = False) -> Dict[str, object]:
    throughput = measure_throughput(quick)
    pins = {
        kernel: {
            "min_replay_speedup_vs_batched": minimum,
            "observed": throughput[kernel]["replay_speedup_vs_batched"],
            "ok": throughput[kernel]["replay_speedup_vs_batched"] >= minimum,
        }
        for kernel, minimum in REPLAY_SPEEDUP_PINS.items()
    }
    return {
        "schema": SCHEMA,
        "quick": quick,
        "throughput": throughput,
        "new_architectures": measure_new_architectures(quick),
        "pins": pins,
        "sweep": measure_sweep(quick),
        "store": measure_store(quick),
        "tuning": measure_tuning(quick),
        "analysis": measure_analysis(quick),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Export the per-PR benchmark artifact (BENCH_10.json)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale: small domains, one repetition")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="artifact path (default: BENCH_10.json at the "
                             "repo root)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if a speedup pin is missed "
                             "(full scale only: quick domains are too small "
                             "to pin)")
    args = parser.parse_args(argv)
    payload = export(quick=args.quick)
    output = args.output or str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_10.json")
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {output}")
    for kernel, pin in payload["pins"].items():
        state = "ok" if pin["ok"] else "MISS"
        print(f"  pin {kernel}: replay {pin['observed']}x vs batched "
              f"(needs >= {pin['min_replay_speedup_vs_batched']}x) [{state}]")
    sweep = payload["sweep"]
    print(f"  sweep {sweep['matrix']}: cold {sweep['cold_seconds']}s, "
          f"warm {sweep['warm_seconds']}s "
          f"(hit rate {sweep['warm_cache']['hit_rate']})")
    store = payload["store"]
    print(f"  store: {store['serial_upserts_per_second']} upserts/s serial, "
          f"{store['concurrent_upserts_per_second']} upserts/s with "
          f"{store['concurrent_writers']} writers, "
          f"{store['lookups_per_second']} lookups/s")
    tuning = payload["tuning"]
    print(f"  tuning: guided {tuning['guided']['model_evaluations']} vs "
          f"exhaustive {tuning['exhaustive']['model_evaluations']} model "
          f"evaluations ({tuning['guided_fraction_of_exhaustive']:.0%}), "
          f"best_config "
          f"{tuning['best_config_lookup']['store_microseconds']}us/lookup")
    analysis = payload["analysis"]
    print(f"  analysis: {analysis['cells']} scenario x architecture cells "
          f"verified in {analysis['total_seconds']}s, "
          f"{analysis['total_findings']} finding(s)")
    if args.check and not args.quick:
        if not all(pin["ok"] for pin in payload["pins"].values()):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
