"""Microbenchmark of the execution engine: blocks/second, legacy vs. batched.

Runs the SSAM conv2d kernel on a fixed workload through both engines and
reports the simulated-blocks-per-second throughput of each, so the batched
engine's speedup is tracked in the perf trajectory.  The acceptance bar is
a >= 5x speedup of the batched engine over the legacy per-block loop.
"""

import time

import numpy as np

from repro.convolution.spec import ConvolutionSpec
from repro.kernels.conv2d_ssam import ssam_convolve2d
from repro.workloads import random_image

#: fixed workload: 5x5 Gaussian on a 512x256 image (320 blocks at P=4, B=128)
FILTER_SIZE = 5
IMAGE_WIDTH = 512
IMAGE_HEIGHT = 256

_SPEC = ConvolutionSpec.gaussian(FILTER_SIZE)
_IMAGE = random_image(IMAGE_WIDTH, IMAGE_HEIGHT, seed=20190617)


def _run(batch_size):
    return ssam_convolve2d(_IMAGE, _SPEC, "p100", batch_size=batch_size)


def _blocks_per_second(batch_size, repeats=3):
    """Best-of-N throughput of one engine on the fixed workload."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = _run(batch_size)
        best = min(best, time.perf_counter() - start)
    return result.launch.blocks_executed / best, result


def test_bench_batched_engine_blocks_per_second(benchmark):
    """Tracked metric: batched-engine wall time on the fixed conv2d workload."""
    result = benchmark(_run, "auto")
    blocks = result.launch.blocks_executed
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["blocks_per_second"] = blocks / seconds
    print(f"\nbatched engine: {blocks} blocks, "
          f"{blocks / seconds:,.0f} blocks/s (mean over {benchmark.stats.stats.rounds} rounds)")


def test_bench_batched_vs_legacy_speedup():
    """Acceptance: the batched engine is >= 5x faster than the per-block loop."""
    legacy_rate, legacy_result = _blocks_per_second(1)
    batched_rate, batched_result = _blocks_per_second("auto")
    speedup = batched_rate / legacy_rate
    print(f"\nlegacy:  {legacy_rate:,.0f} blocks/s")
    print(f"batched: {batched_rate:,.0f} blocks/s")
    print(f"speedup: {speedup:.1f}x")
    # same work was simulated on both engines
    np.testing.assert_array_equal(legacy_result.output, batched_result.output)
    assert legacy_result.launch.counters.as_dict() == batched_result.launch.counters.as_dict()
    assert speedup >= 5.0
