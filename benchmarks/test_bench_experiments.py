"""Acceptance harness for the structured experiment pipeline.

Asserts the two pipeline-level guarantees:

* ``--experiment all --quick --jobs 4`` produces **byte-identical**
  table/figure text to the serial run (the executor keys payloads by job
  id and assembly order is fixed, so worker count cannot leak into the
  report);
* a **warm-cache rerun is >= 5x faster** than the cold run.  Both runs are
  timed in fresh subprocesses so the cold measurement includes none of
  this process's warmed ``lru_cache`` state.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

from repro.experiments import runner

_TIMING_SCRIPT = """
import sys, time
from repro.experiments import runner
from repro.experiments.cache import SimulationCache
cache = SimulationCache(sys.argv[1])
start = time.perf_counter()
text = runner.run_experiment('all', quick=True, cache=cache)
print(time.perf_counter() - start)
print(len(text))
"""


def _timed_subprocess_run(cache_dir: str):
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                       "src")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    proc = subprocess.run([sys.executable, "-c", _TIMING_SCRIPT, cache_dir],
                          capture_output=True, text=True, env=env, check=True)
    seconds, text_length = proc.stdout.strip().splitlines()[-2:]
    return float(seconds), int(text_length)


def test_parallel_report_is_byte_identical_to_serial():
    serial = runner.run_experiment("all", quick=True, jobs=1)
    parallel = runner.run_experiment("all", quick=True, jobs=4)
    assert parallel == serial
    assert len(serial) > 1000


def test_warm_cache_rerun_is_5x_faster_than_cold():
    with tempfile.TemporaryDirectory() as cache_dir:
        cold_seconds, cold_length = _timed_subprocess_run(cache_dir)
        warm_seconds, warm_length = _timed_subprocess_run(cache_dir)
    assert warm_length == cold_length
    assert cold_seconds >= 5 * warm_seconds, (
        f"warm-cache speedup too small: cold {cold_seconds:.3f}s vs "
        f"warm {warm_seconds:.3f}s")


def test_cached_payloads_render_identically(tmp_path):
    from repro.experiments.cache import SimulationCache

    cache = SimulationCache(str(tmp_path / "cache"))
    cold = runner.run_experiment("all", quick=True, cache=cache)
    warm = runner.run_experiment("all", quick=True, cache=cache)
    assert warm == cold
    assert cache.stats()["hits"] == cache.stats()["stores"]
