"""Microbenchmark of the shared result store: upserts/s and lookups/s.

Tracks the sqlite/WAL store's write and read rates — the store sits on the
hot path of every cached simulation (one upsert per executed cell, one
lookup per requested cell), so a regression here slows every sweep, tune
and service submission.  The concurrent case runs four writer threads
against one database, the regime the service worker pool creates.
"""

from __future__ import annotations

import threading
import time

from repro.service.store import ResultStore

ENTRIES = 500
WRITERS = 4


def _payload(i: int) -> dict:
    return {"milliseconds": i * 0.25,
            "counters": {"fma": i * 100.0, "dram_read_bytes": i * 8.0},
            "config": {"block_threads": 128, "outputs_per_thread": 4}}


def _fill(store: ResultStore, tag: str, count: int) -> None:
    for i in range(count):
        store.upsert({"bench": tag, "i": i}, _payload(i),
                     job_key=f"bench:{tag}:{i}")


def test_bench_serial_upserts(benchmark, tmp_path):
    counter = iter(range(10**9))

    def setup():
        tag = f"round-{next(counter)}"
        return (tag,), {}

    store = ResultStore(str(tmp_path / "bench.sqlite"),
                        code_version=lambda: "bench")
    benchmark.pedantic(lambda tag: _fill(store, tag, ENTRIES),
                       setup=setup, rounds=3)
    seconds = benchmark.stats.stats.mean
    rate = ENTRIES / seconds
    benchmark.extra_info["upserts_per_second"] = rate
    print(f"\nstore: {rate:,.0f} upserts/s serial ({ENTRIES} entries)")


def test_bench_warm_lookups(benchmark, tmp_path):
    store = ResultStore(str(tmp_path / "bench.sqlite"),
                        code_version=lambda: "bench")
    _fill(store, "warm", ENTRIES)

    def lookup_all():
        for i in range(ENTRIES):
            assert store.get({"bench": "warm", "i": i}) is not None

    benchmark(lookup_all)
    rate = ENTRIES / benchmark.stats.stats.mean
    benchmark.extra_info["lookups_per_second"] = rate
    print(f"\nstore: {rate:,.0f} lookups/s warm")


def test_bench_concurrent_writers(tmp_path):
    """Four threads writing disjoint ranges into one store: every row lands
    exactly once, and aggregate throughput is printed for the trajectory."""
    store = ResultStore(str(tmp_path / "bench-mt.sqlite"),
                        code_version=lambda: "bench")
    share = ENTRIES // WRITERS
    barrier = threading.Barrier(WRITERS + 1)

    def write_range(start_i: int) -> None:
        barrier.wait()
        for i in range(start_i, start_i + share):
            store.upsert({"bench": "mt", "i": i}, _payload(i),
                         job_key=f"bench:mt:{i}")

    threads = [threading.Thread(target=write_range, args=(t * share,))
               for t in range(WRITERS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    written = store.entry_count()
    assert written == share * WRITERS, "no lost writes under contention"
    print(f"\nstore: {written / seconds:,.0f} upserts/s aggregate "
          f"({WRITERS} writers)")
