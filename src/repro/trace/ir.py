"""Dataflow IR recorded from one eager execution of a kernel body.

A :class:`Trace` is built by :class:`~repro.trace.tracer.TracingContext`
while the *first* batch chunk of a launch executes eagerly through the
ordinary :class:`~repro.gpu.batch.BatchedBlockContext`.  Every context
operation and every NumPy expression the kernel body evaluates on traced
register vectors appends one :class:`Node`.  The recording is therefore a
straight-line program: kernel bodies unroll their (host-side) loops over
concrete Python values, and data-dependent control flow is rejected.

Two classifications drive the compiled replay:

* **kind** — how a node's value varies across the grid.  ``CONST`` values
  are plain scalars, ``THREAD`` values are block-uniform (every block in a
  chunk sees the same per-thread row, so a single ``(T,)`` row represents
  them), and ``BLOCK`` values differ per block (leading axis is the chunk's
  block count ``B``).  Kind depends only on the kinds of a node's inputs —
  loads from global/shared memory are block-uniform whenever their indices
  and mask are, because memory content is shared by all blocks.
* **tier** — when a node's value can be computed.  ``COMPILE`` values are
  fixed by the trace key and stored in the compiled program; ``LAUNCH``
  values are computed once per launch (e.g. loads from buffers the trace
  never stores to); ``CHUNK`` values are recomputed for every chunk.  Tiers
  are assigned by :func:`repro.trace.replay.compile_trace`.

Concrete values are retained only for ``CONST``/``THREAD`` nodes (a scalar
or one ``(T,)`` row); ``BLOCK`` intermediates are dropped as soon as the
kernel body releases them, so recording costs no more memory than the eager
engine does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..gpu.memory import DeviceBuffer


class TraceUnsupported(SimulationError):
    """The kernel body used an operation the tracer cannot record.

    ``replay_launch`` treats this as a signal to fall back to the batched
    engine for that kernel rather than failing the launch.
    """


# value variation across the grid
KIND_CONST = 0   # plain scalar, identical for every thread of every block
KIND_THREAD = 1  # block-uniform: one (T,)-shaped row represents all blocks
KIND_BLOCK = 2   # block-varying: leading axis is the chunk block count B

# evaluation time
TIER_COMPILE = 0  # fixed by the trace key; baked into the program
TIER_LAUNCH = 1   # computed once per launch (session initialisation)
TIER_CHUNK = 2    # recomputed for every batch chunk

#: symbolic leading axis used in ``Node.shape`` for BLOCK-kind values
B_AXIS = "B"


class Node:
    """One recorded operation (or input / constant) in a trace."""

    __slots__ = ("id", "op", "fn", "inputs", "kwargs", "params",
                 "kind", "tier", "shape", "dtype", "value")

    def __init__(self, node_id: int, op: str, *, fn=None,
                 inputs: Tuple[int, ...] = (), kwargs=None, params=None,
                 kind: int = KIND_CONST, shape: Tuple = (),
                 dtype=None, value=None):
        self.id = node_id
        self.op = op
        self.fn = fn
        self.inputs = inputs
        self.kwargs = kwargs or {}
        self.params = params or {}
        self.kind = kind
        self.tier = TIER_CHUNK  # assigned properly by compile_trace
        self.shape = shape
        self.dtype = dtype
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Node({self.id}, {self.op!r}, kind={self.kind}, "
                f"shape={self.shape}, dtype={self.dtype})")


def _const_key(value) -> Optional[tuple]:
    """Interning key for scalar constants (None for arrays: no interning)."""
    if isinstance(value, np.ndarray):
        return None
    try:
        return (type(value).__name__, repr(value))
    except Exception:  # pragma: no cover - exotic reprs
        return None


class Trace:
    """A recorded kernel body: node list plus buffer-slot bookkeeping.

    Device buffers are identified *positionally* (by their index in the
    kernel's argument tuple), so one trace replays against any launch whose
    argument signature matches the trace key — e.g. the stencil ping-pong
    rebinding ``src``/``dst`` every iteration reuses a single trace.
    """

    def __init__(self, args: Tuple, *, batch_blocks: int, block_threads: int,
                 warp_size: int, num_warps: int, numpy_dtype):
        self.nodes: List[Node] = []
        self.batch_blocks = batch_blocks
        self.block_threads = block_threads
        self.warp_size = warp_size
        self.num_warps = num_warps
        self.numpy_dtype = numpy_dtype
        #: buffer_id -> argument position of every DeviceBuffer argument
        self.slot_of: Dict[int, int] = {}
        #: argument position -> static facts used by the compiled program
        self.slot_info: Dict[int, Dict[str, object]] = {}
        #: argument positions the trace stores to
        self.written_slots: set = set()
        self._cse: Dict[tuple, int] = {}
        self._consts: Dict[tuple, int] = {}
        self._inputs: Dict[str, int] = {}
        for position, arg in enumerate(args):
            if isinstance(arg, DeviceBuffer):
                self.slot_of[arg.buffer_id] = position
                self.slot_info[position] = {
                    "dtype": arg.dtype,
                    "itemsize": arg.itemsize,
                    "size": arg.size,
                    "cached": arg.cached,
                    "name": arg.name,
                }

    # ------------------------------------------------------------- nodes

    def add(self, op: str, **kw) -> Node:
        node = Node(len(self.nodes), op, **kw)
        self.nodes.append(node)
        return node

    def const(self, value) -> Node:
        """Record (or reuse) a constant node for a host scalar or array."""
        key = _const_key(value)
        if key is not None and key in self._consts:
            return self.nodes[self._consts[key]]
        if isinstance(value, np.ndarray):
            stored = value.copy()
            node = self.add("const", kind=KIND_CONST, shape=stored.shape,
                            dtype=stored.dtype, value=stored)
        else:
            stored = value
            arr = np.asarray(value)
            node = self.add("const", kind=KIND_CONST, shape=(),
                            dtype=arr.dtype, value=stored)
        if key is not None:
            self._consts[key] = node.id
        return node

    def input(self, name: str, kind: int, value, shape) -> Node:
        """Record (or reuse) a launch-input node (thread ids, block ids)."""
        if name in self._inputs:
            return self.nodes[self._inputs[name]]
        node = self.add("input", params={"name": name}, kind=kind,
                        shape=shape, dtype=np.dtype(np.int64),
                        value=value if kind <= KIND_THREAD else None)
        self._inputs[name] = node.id
        return node

    def slot_for(self, buffer: DeviceBuffer) -> int:
        slot = self.slot_of.get(buffer.buffer_id)
        if slot is None:
            raise TraceUnsupported(
                f"kernel accessed device buffer {buffer.name!r} that is not "
                f"one of its launch arguments; the replay engine can only "
                f"bind argument buffers")
        return slot

    # ------------------------------------------------------- shape logic

    def result_shape(self, kind: int, concrete: np.ndarray) -> Tuple:
        """Symbolic shape of a node: BLOCK values get a ``B`` leading axis."""
        shape = tuple(np.shape(concrete))
        if kind == KIND_BLOCK:
            if not shape or shape[0] != self.batch_blocks:
                raise TraceUnsupported(
                    f"block-varying value with shape {shape} does not carry "
                    f"the chunk block count {self.batch_blocks} on its "
                    f"leading axis")
            return (B_AXIS,) + shape[1:]
        return shape

    def reduce_concrete(self, kind: int, concrete):
        """Drop redundant axes from a block-uniform concrete value.

        Eager context operations return full ``(B, T)`` registers; when the
        recorded kind proves the value block-uniform we keep only row 0 (and
        assert the uniformity, which doubles as a check on the kind logic).
        """
        if kind == KIND_BLOCK or not isinstance(concrete, np.ndarray):
            return concrete
        if concrete.ndim >= 2 and concrete.shape[0] == self.batch_blocks:
            row = concrete[0]
            if self.batch_blocks > 1 and not np.array_equal(
                    np.broadcast_to(row, concrete.shape), concrete):
                raise TraceUnsupported(
                    "value classified block-uniform varies across blocks")
            return np.ascontiguousarray(row)
        return concrete
