"""Kernel trace IR, compiled replay engine, fusion and derived counts.

The package captures each kernel body once as a dataflow IR
(:mod:`repro.trace.ir`, recorded by :mod:`repro.trace.tracer`), compiles it
to a straight-line vectorized program (:mod:`repro.trace.replay`), fuses
adjacent traces that share a blocking plan (:mod:`repro.trace.fusion`) and
derives static instruction counts from the IR (:mod:`repro.trace.counts`).
"""

from .counts import (MODEL_AGREEMENT_BOUNDS, block_counts, check_against_model,
                     launch_counts, relative_errors)
from .fusion import FusedStage, fused_launch
from .ir import Trace, TraceUnsupported
from .replay import ReplayProgram, ReplaySession, compile_trace, replay_launch

__all__ = [
    "Trace",
    "TraceUnsupported",
    "ReplayProgram",
    "ReplaySession",
    "FusedStage",
    "fused_launch",
    "compile_trace",
    "replay_launch",
    "block_counts",
    "launch_counts",
    "relative_errors",
    "check_against_model",
    "MODEL_AGREEMENT_BOUNDS",
]
