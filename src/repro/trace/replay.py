"""Compile a recorded trace into a straight-line vectorized replay program.

``compile_trace`` classifies every IR node into an evaluation **tier** and
emits three artifacts:

* a *launch prologue* — closures run once per :class:`ReplaySession` that
  materialise LAUNCH-tier values (e.g. loads from buffers the trace never
  stores to, shared-memory staging of broadcast weights) and precompute the
  per-block **linear counter delta**: the sum of every accounting
  contribution that is identical for all blocks (instruction counts, warp
  activity of thread-uniform masks, coalescing of thread-uniform index
  patterns, all shared-memory costs of the five SSAM kernels).  Applying
  that delta once per chunk — scaled by the chunk's block count — replaces
  hundreds of per-op counter updates and per-warp sort/unique reductions.
* a *chunk program* — closures run per batch chunk that compute only the
  genuinely block-varying values (CHUNK tier), writing into a pooled
  scratch arena (liveness-scanned slots, allocated once at the maximum
  chunk size) so the steady state performs no large allocations.
* exact-accounting *fast paths* for the block-varying memory ops: bounds
  via min/max reductions, coalescing via a sorted-adjacent-difference
  count with a verified masked variant, both falling back to the batched
  engine's :func:`~repro.gpu.memory.rowwise_unique_counts` whenever their
  soundness precondition does not hold — every counter and every output
  byte stays bit-identical to the batched engine by construction.

The replay of a chunk therefore touches NumPy kernels only — no Python
kernel-body dispatch, no per-op method calls, no redundant index
re-derivation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import LaunchError, SimulationError
from ..gpu.architecture import GPUArchitecture, get_architecture
from ..gpu.batch import BatchedBlockContext
from ..gpu.counters import KernelCounters
from ..gpu.kernel import LaunchResult, auto_batch_size
from ..gpu.memory import (
    _SENTINEL,
    DeviceBuffer,
    rowwise_unique_counts,
)
from ..gpu.shared_memory import bank_conflict_profile
from ..gpu.simt import grouped_warp_counts
from ..gpu import warp as warp_ops
from .ir import (
    B_AXIS,
    KIND_THREAD,
    TIER_CHUNK,
    TIER_COMPILE,
    TIER_LAUNCH,
    Trace,
    TraceUnsupported,
)
from .tracer import TracingContext, _astype_fn


# ------------------------------------------------------------------ helpers

def _transactions(wm: np.ndarray, mm: Optional[np.ndarray],
                  diff_buf: Optional[np.ndarray] = None
                  ) -> Tuple[int, Optional[np.ndarray], bool]:
    """Sum of per-warp-row unique counts over active lanes, exact.

    Returns ``(transactions, diff_matrix_or_None, rows_sorted)``.

    Fast path: when every row is ascending (the register-cache access
    patterns are monotone in the lane index) a fully-active row's unique
    count is ``1 + count(strict increases)`` — one subtraction and a couple
    of reductions instead of a segmented sort.  Partially-active rows (grid
    boundary warps, typically a small minority) are extracted and counted
    with the batched engine's primitive; unsorted inputs fall back to it
    entirely, so the result is always exact.
    """
    rows, width = wm.shape
    if width <= 1:
        trans = rows * width if mm is None else int(np.count_nonzero(mm))
        return trans, None, True
    if diff_buf is None:
        d = wm[:, 1:] - wm[:, :-1]
    else:
        d = diff_buf
        np.subtract(wm[:, 1:], wm[:, :-1], out=d)
    if int(d.min()) < 0:
        return int(rowwise_unique_counts(wm, mm).sum()), None, False
    if mm is None:
        return rows + int(np.count_nonzero(d)), d, True
    rises = ~mm[:, :-1] & mm[:, 1:]
    if int((rises.sum(axis=1) + mm[:, 0]).max()) <= 1:
        # every row's active lanes form one contiguous run (the SSAM
        # valid_x tail masks and left-edge anchor masks): uniques over the
        # run are one plus the strict increases strictly inside it
        k = mm.sum(axis=1)
        s = np.argmax(mm, axis=1)
        jj = np.arange(width - 1)
        inc = (d != 0) & (jj >= s[:, None]) & (jj < (s + k - 1)[:, None])
        return int(inc.sum()) + int(np.count_nonzero(k)), d, True
    full = mm.all(axis=1)
    if full.all():
        return rows + int(np.count_nonzero(d)), d, True
    per_row = (d != 0).sum(axis=1)
    partial = ~full
    trans = int(per_row[full].sum()) + int(np.count_nonzero(full)) + int(
        rowwise_unique_counts(wm[partial], mm[partial]).sum())
    return trans, d, True


def _compact_sorted_rows(arr: np.ndarray) -> np.ndarray:
    """Sentinel-padded per-row uniques of an ascending, sentinel-free matrix.

    The sort-free analogue of :func:`~repro.gpu.memory.rowwise_unique_pad`
    used to pre-compact each traffic record before the per-chunk union.
    """
    rows, width = arr.shape
    firsts = np.empty(arr.shape, dtype=bool)
    firsts[:, 0] = True
    np.not_equal(arr[:, 1:], arr[:, :-1], out=firsts[:, 1:])
    counts = firsts.sum(axis=1)
    padded = max(1, int(counts.max()))
    out = np.full((rows, padded), _SENTINEL, dtype=np.int64)
    positions = np.cumsum(firsts, axis=1) - 1
    row_ids = np.broadcast_to(np.arange(rows)[:, None], arr.shape)
    out[row_ids[firsts], positions[firsts]] = arr[firsts]
    return out


def _is_rowwise_sorted(arr: np.ndarray) -> bool:
    return arr.shape[1] <= 1 or bool(np.all(arr[:, 1:] >= arr[:, :-1]))


def _line_shift(itemsize: int, line_bytes: int) -> Optional[int]:
    """Right-shift equivalent of ``(idx * itemsize) // line_bytes``.

    Valid because indices are bounds-checked non-negative; None when the
    line/item ratio is not a power of two.
    """
    if line_bytes % itemsize != 0:
        return None
    ratio = line_bytes // itemsize
    if ratio & (ratio - 1):
        return None
    return ratio.bit_length() - 1


def _interval_union_sum(los: np.ndarray, his: np.ndarray) -> int:
    """Total length of the per-row union of closed integer intervals.

    ``los``/``his`` are ``(rows, K)`` interval bounds; the result is
    ``sum_r |union_k [los[r,k], his[r,k]]|``.  Used by the per-chunk DRAM
    traffic finalize: each verified-contiguous warp access contributes one
    interval of cache lines, so the per-block unique-line count reduces to
    a tiny sort over K intervals instead of a segmented sort over all lanes.
    """
    order = np.argsort(los, axis=1, kind="stable")
    los_s = np.take_along_axis(los, order, axis=1)
    his_s = np.take_along_axis(his, order, axis=1)
    running = np.maximum.accumulate(his_s, axis=1)
    prev = np.empty_like(running)
    prev[:, 0] = los_s[:, 0] - 1
    prev[:, 1:] = running[:, :-1]
    contrib = his_s - np.maximum(los_s - 1, prev)
    return int(np.maximum(contrib, 0, out=contrib).sum())


def _intervals_to_matrix(lo: np.ndarray, hi: np.ndarray, rows: int
                         ) -> np.ndarray:
    """Expand interval records to a per-block line matrix (mixed-mode path).

    Entries past an interval's end repeat ``hi`` — duplicates are harmless
    for unique counting.  Only used when one chunk mixes interval and raw
    matrix records for the same buffer, which the SSAM kernels never do.
    """
    width = int((hi - lo).max()) + 1
    mat = lo[:, None] + np.arange(width, dtype=np.int64)
    np.minimum(mat, hi[:, None], out=mat)
    return mat.reshape(rows, -1)


# ---------------------------------------------------------- tier assignment

def _assign_tiers(trace: Trace, volatile_slots: frozenset
                  ) -> Tuple[List[int], Dict[int, int]]:
    """Fixpoint tier assignment (monotone, so it terminates quickly)."""
    nodes = trace.nodes
    tiers = [TIER_COMPILE] * len(nodes)
    content: Dict[int, int] = {n.id: TIER_LAUNCH for n in nodes
                               if n.op == "alloc_shared"}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            op = node.op
            if op == "const":
                t = TIER_COMPILE
            elif op == "input":
                t = (TIER_CHUNK if node.params["name"] in ("bx", "by", "bz")
                     else TIER_COMPILE)
            elif op in ("sync", "misc"):
                t = TIER_COMPILE
            elif op == "alloc_shared":
                t = content[node.id]
            elif op == "load_global":
                slot = node.params["slot"]
                t = max([tiers[i] for i in node.inputs] + [TIER_LAUNCH])
                if slot in trace.written_slots or slot in volatile_slots:
                    t = TIER_CHUNK
            elif op == "store_global":
                t = max([tiers[i] for i in node.inputs] + [TIER_LAUNCH])
            elif op == "load_shared":
                t = max([tiers[i] for i in node.inputs]
                        + [content[node.params["shared"]]])
            elif op == "store_shared":
                t = max([tiers[i] for i in node.inputs] + [TIER_LAUNCH])
                shared = node.params["shared"]
                if t > content[shared]:
                    content[shared] = t
                    changed = True
            else:  # pure / arith / shfl
                t = max([tiers[i] for i in node.inputs], default=TIER_COMPILE)
            if t != tiers[node.id]:
                tiers[node.id] = t
                changed = True
    return tiers, content


# ------------------------------------------------------------ scratch pool

class _Pool:
    """Compile-time planner for the per-session scratch arena."""

    def __init__(self) -> None:
        self.slots: List[Tuple[Tuple[int, ...], np.dtype]] = []
        self._free: Dict[tuple, List[int]] = {}

    def alloc(self, tail: Tuple[int, ...], dtype) -> int:
        dtype = np.dtype(dtype)
        key = (tail, dtype.str)
        free = self._free.get(key)
        if free:
            return free.pop()
        self.slots.append((tail, dtype))
        return len(self.slots) - 1

    def release(self, slot: int) -> None:
        tail, dtype = self.slots[slot]
        self._free.setdefault((tail, dtype.str), []).append(slot)


# ----------------------------------------------------------------- program

class ReplayProgram:
    """Everything needed to replay one trace against fresh launch arguments."""

    __slots__ = ("env_template", "launch_steps", "delta_thunks", "chunk_steps",
                 "pool_slots", "block_inputs", "slot_info", "num_cells",
                 "line_bytes", "block_threads", "num_warps", "warp_size",
                 "numpy_dtype", "count_traffic", "node_count", "memoizable",
                 "counter_cache", "written_slots", "trace")

    def __init__(self) -> None:
        self.env_template: List[object] = []
        self.launch_steps: List = []
        self.delta_thunks: List = []
        self.chunk_steps: List = []
        self.pool_slots: List[Tuple[Tuple[int, ...], np.dtype]] = []
        self.block_inputs: List[Tuple[int, int]] = []
        self.slot_info: Dict[int, Dict[str, object]] = {}
        self.num_cells = 0
        self.line_bytes = 128
        self.block_threads = 0
        self.num_warps = 0
        self.warp_size = 32
        self.numpy_dtype = np.dtype(np.float32)
        self.count_traffic = True
        self.node_count = 0
        #: True when every memory index/mask is a pure function of consts,
        #: thread ids and block ids — the counters of a launch are then a
        #: pure function of the block schedule and can be reused verbatim
        self.memoizable = False
        #: (grid_dim, max_blocks, count_traffic) -> counter dict of a
        #: completed launch, replayed without re-deriving the accounting
        self.counter_cache: Dict[tuple, Dict[str, float]] = {}
        #: argument positions of global buffers this program writes
        #: (used by stage fusion to mark downstream reads volatile)
        self.written_slots: frozenset = frozenset()
        #: the source trace (kept for static count derivation / inspection)
        self.trace = None


class ReplaySession:
    """One launch of a compiled program: buffer bindings + scratch arena."""

    def __init__(self, program: ReplayProgram, args: Sequence[object],
                 counters: KernelCounters, max_chunk_blocks: int,
                 account: bool = True) -> None:
        self.program = program
        self.counters = counters
        #: False when the launch's counters come from the program's
        #: counter cache: the accounting work (bounds checks included —
        #: they are deterministic and passed on the cached launch) is
        #: skipped and only the value steps run
        self.account = account
        self.buffers: Dict[int, DeviceBuffer] = {}
        for slot, info in program.slot_info.items():
            buffer = args[slot]
            if not isinstance(buffer, DeviceBuffer):
                raise SimulationError(
                    f"replay argument {slot} must be a device buffer")
            self.buffers[slot] = buffer
        self.env: List[object] = list(program.env_template)
        self.scratch = [np.empty((max_chunk_blocks,) + tail, dtype)
                        for tail, dtype in program.pool_slots]
        self.cells: List[object] = [None] * program.num_cells
        self.B = 0
        self.traffic: Dict[int, List[np.ndarray]] = {}
        for step in program.launch_steps:
            step(self)
        self.delta_items: List = []
        if account:
            delta: Dict[str, object] = {}
            for thunk in program.delta_thunks:
                for field, amount in thunk(self).items():
                    delta[field] = delta.get(field, 0) + amount
            self.delta_items = list(delta.items())

    def s(self, slot: int) -> np.ndarray:
        """Current chunk's view of one pooled scratch slot."""
        return self.scratch[slot][:self.B]

    def run_chunk(self, block_indices: np.ndarray) -> None:
        """Replay the program for one contiguous chunk of blocks."""
        B = int(block_indices.shape[0])
        self.B = B
        env = self.env
        for node_id, axis in self.program.block_inputs:
            env[node_id] = block_indices[:, axis:axis + 1]
        self.traffic = {}
        for step in self.program.chunk_steps:
            step(self)
        counters = self.counters
        for field, amount in self.delta_items:
            setattr(counters, field, getattr(counters, field) + amount * B)


# ------------------------------------------------------------ the compiler

def compile_trace(trace: Trace, architecture: GPUArchitecture,
                  count_traffic: bool,
                  volatile_slots: frozenset = frozenset()) -> ReplayProgram:
    """Lower a recorded trace to a :class:`ReplayProgram`."""
    nodes = trace.nodes
    tiers, content_tiers = _assign_tiers(trace, volatile_slots)

    program = ReplayProgram()
    program.slot_info = dict(trace.slot_info)
    program.line_bytes = architecture.cache_line_bytes
    program.block_threads = trace.block_threads
    program.num_warps = trace.num_warps
    program.warp_size = architecture.warp_size
    program.numpy_dtype = np.dtype(trace.numpy_dtype)
    program.count_traffic = count_traffic
    program.written_slots = frozenset(trace.written_slots)
    program.trace = trace

    # launch-invariant accounting: when every memory index and mask derives
    # only from constants, thread ids and block ids — never from loaded
    # data — warp counts, transactions, divergence and traffic are a pure
    # function of the block schedule, so a repeat launch with the same grid
    # and sampling can reuse the first launch's counters verbatim
    data_free = [False] * len(nodes)
    for node in nodes:
        if node.op in ("const", "input"):
            data_free[node.id] = True
        elif node.op in ("pure", "arith", "shfl"):
            data_free[node.id] = all(data_free[i] for i in node.inputs)
    program.memoizable = True
    for node in nodes:
        if node.op in ("load_global", "load_shared"):
            ok = data_free[node.inputs[0]] and (
                not node.params["masked"] or data_free[node.inputs[1]])
        elif node.op == "store_global":
            ok = data_free[node.inputs[0]] and (
                not node.params["masked"] or data_free[node.inputs[2]])
        elif node.op == "store_shared":
            ok = data_free[node.inputs[0]] and (
                not node.params["masked"] or data_free[node.inputs[-1]])
        else:
            continue
        if not ok:
            program.memoizable = False
            break
    program.node_count = len(nodes)
    program.env_template = [None] * len(nodes)

    T = trace.block_threads
    W = trace.num_warps
    ws = architecture.warp_size
    working = program.numpy_dtype
    line_bytes = architecture.cache_line_bytes
    banks = architecture.shared_memory_banks
    bank_bytes = architecture.shared_memory_bank_bytes

    pool = _Pool()
    storage: Dict[int, int] = {}
    delta_static: Dict[str, object] = {
        "blocks_executed": 1, "warps_executed": W}

    # peephole: a shuffle consumed only by the accumulator operand of one
    # fused multiply-add collapses into that mad's emission — the shifted
    # addend is added slice-wise straight out of the previous partial sum,
    # removing one full register-wide copy per filter tap
    uses = [0] * len(nodes)
    for node in nodes:
        for i in node.inputs:
            uses[i] += 1
    fused_shfl: Dict[int, int] = {}  # mad node id -> its fused shfl node id
    fused_ids: set = set()
    for node in nodes:
        if (node.op != "arith" or node.params["kind"] != "mad"
                or tiers[node.id] != TIER_CHUNK):
            continue
        acc = nodes[node.inputs[2]]
        if (acc.op != "shfl" or uses[acc.id] != 1
                or tiers[acc.id] != TIER_CHUNK
                or acc.params["dir"] not in ("up", "down")
                or not 0 < acc.params["amount"] < ws):
            continue
        prev = nodes[acc.inputs[0]]
        shapes_ok = (node.shape == acc.shape == prev.shape
                     and node.shape and node.shape[0] == B_AXIS)
        dtypes = [node.dtype, acc.dtype, prev.dtype,
                  nodes[node.inputs[0]].dtype, nodes[node.inputs[1]].dtype]
        if shapes_ok and all(np.dtype(d) == working for d in dtypes):
            fused_shfl[node.id] = acc.id
            fused_ids.add(acc.id)

    # liveness: a node's value slot is reclaimed after its last consumer
    last_use = list(range(len(nodes)))
    for node in nodes:
        for i in node.inputs:
            last_use[i] = node.id
        if node.op in ("load_shared", "store_shared"):
            last_use[node.params["shared"]] = node.id
    for mad_id, shfl_id in fused_shfl.items():
        src = nodes[shfl_id].inputs[0]
        last_use[src] = max(last_use[src], mad_id)
    release_at: Dict[int, List[int]] = {}
    for i, at in enumerate(last_use):
        release_at.setdefault(at, []).append(i)

    def add_delta(field: str, amount) -> None:
        delta_static[field] = delta_static.get(field, 0) + amount

    def new_cell() -> int:
        program.num_cells += 1
        return program.num_cells - 1

    def pooled(node) -> Optional[int]:
        if node.shape and node.shape[0] == B_AXIS:
            slot = pool.alloc(tuple(node.shape[1:]), node.dtype)
            storage[node.id] = slot
            return slot
        return None

    def static_tier(i: Optional[int]) -> bool:
        return i is None or tiers[i] <= TIER_LAUNCH

    def row_of(env_value, dtype=None) -> np.ndarray:
        """One block's (T,)-row of a thread-uniform operand."""
        arr = np.asarray(env_value)
        if dtype is not None and arr.dtype != dtype:
            arr = arr.astype(dtype)
        return np.ascontiguousarray(np.broadcast_to(arr, (T,)))

    # ----------------------------------------------------- generic values

    def emit_value(node, tier):
        """Emit the value computation for pure/arith/shfl nodes."""
        nid = node.id
        if tier == TIER_COMPILE:
            program.env_template[nid] = node.value
            return
        op = node.op
        ids = node.inputs
        if op == "pure":
            fn, kwargs = node.fn, node.kwargs
            if tier == TIER_LAUNCH:
                def step(session, fn=fn, ids=ids, kwargs=kwargs, nid=nid):
                    env = session.env
                    session.env[nid] = fn(*[env[i] for i in ids], **kwargs)
                program.launch_steps.append(step)
                return
            slot = pooled(node)
            if slot is None:
                def step(session, fn=fn, ids=ids, kwargs=kwargs, nid=nid):
                    env = session.env
                    env[nid] = fn(*[env[i] for i in ids], **kwargs)
                program.chunk_steps.append(step)
                return
            if fn is _astype_fn:
                i0 = ids[0]

                def step(session, i0=i0, slot=slot, nid=nid):
                    buf = session.s(slot)
                    np.copyto(buf, session.env[i0], casting="unsafe")
                    session.env[nid] = buf
            elif fn is np.where:
                ic, ia, ib = ids

                def step(session, ic=ic, ia=ia, ib=ib, slot=slot, nid=nid):
                    env = session.env
                    buf = session.s(slot)
                    np.copyto(buf, env[ib], casting="unsafe")
                    np.copyto(buf, env[ia], where=env[ic], casting="unsafe")
                    env[nid] = buf
            elif fn is np.clip:
                ia, ilo, ihi = ids

                def step(session, ia=ia, ilo=ilo, ihi=ihi, slot=slot, nid=nid):
                    env = session.env
                    buf = session.s(slot)
                    np.clip(env[ia], env[ilo], env[ihi], out=buf)
                    env[nid] = buf
            elif isinstance(fn, np.ufunc) and fn.nout == 1 and not kwargs:
                def step(session, fn=fn, ids=ids, slot=slot, nid=nid):
                    env = session.env
                    buf = session.s(slot)
                    fn(*[env[i] for i in ids], out=buf)
                    env[nid] = buf
            else:
                def step(session, fn=fn, ids=ids, kwargs=kwargs, slot=slot,
                         nid=nid):
                    env = session.env
                    buf = session.s(slot)
                    buf[...] = fn(*[env[i] for i in ids], **kwargs)
                    env[nid] = buf
            program.chunk_steps.append(step)
            return
        if op == "arith":
            kind = node.params["kind"]

            def eager_formula(vals, kind=kind, dt=working):
                if kind == "mad":
                    return (np.asarray(vals[0], dtype=dt)
                            * np.asarray(vals[1], dtype=dt) + vals[2])
                if kind == "add":
                    return (np.asarray(vals[0], dtype=dt)
                            + np.asarray(vals[1], dtype=dt))
                return (np.asarray(vals[0], dtype=dt)
                        * np.asarray(vals[1], dtype=dt))

            if tier == TIER_LAUNCH:
                def step(session, ids=ids, nid=nid):
                    env = session.env
                    env[nid] = eager_formula([env[i] for i in ids])
                program.launch_steps.append(step)
                return
            slot = pooled(node)
            operand_dtypes = [nodes[i].dtype for i in ids]
            fast = (slot is not None and node.dtype == working
                    and all(np.dtype(d) == working for d in operand_dtypes))
            if fast and kind == "mad":
                ia, ib_, iacc = ids

                def step(session, ia=ia, ib_=ib_, iacc=iacc, slot=slot,
                         nid=nid):
                    env = session.env
                    buf = session.s(slot)
                    np.multiply(env[ia], env[ib_], out=buf)
                    np.add(buf, env[iacc], out=buf)
                    env[nid] = buf
            elif fast:
                ufunc = np.add if kind == "add" else np.multiply
                ia, ib_ = ids

                def step(session, ia=ia, ib_=ib_, ufunc=ufunc, slot=slot,
                         nid=nid):
                    env = session.env
                    buf = session.s(slot)
                    ufunc(env[ia], env[ib_], out=buf)
                    env[nid] = buf
            else:
                def step(session, ids=ids, slot=slot, nid=nid):
                    env = session.env
                    value = eager_formula([env[i] for i in ids])
                    if slot is not None:
                        buf = session.s(slot)
                        buf[...] = value
                        value = buf
                    env[nid] = value
            program.chunk_steps.append(step)
            return
        if op == "shfl":
            direction = node.params["dir"]
            amount = node.params["amount"]
            i0 = ids[0]
            if tier == TIER_LAUNCH:
                shfl_fn = {"up": warp_ops.shfl_up, "down": warp_ops.shfl_down,
                           "idx": warp_ops.shfl_idx}[direction]
                expected = tuple(node.shape)

                def step(session, i0=i0, shfl_fn=shfl_fn, amount=amount,
                         expected=expected, nid=nid):
                    base = np.broadcast_to(np.asarray(session.env[i0]),
                                           expected)
                    session.env[nid] = shfl_fn(base, amount, ws)
                program.launch_steps.append(step)
                return
            slot = pooled(node)
            if slot is None:  # pragma: no cover - shfl results are (B, T)
                raise TraceUnsupported("chunk-tier shuffle of a non-register "
                                       "value")

            def step(session, i0=i0, slot=slot, nid=nid, direction=direction,
                     amount=amount):
                env = session.env
                buf = session.s(slot)
                src = np.asarray(env[i0])
                if src.shape != buf.shape:
                    src = np.broadcast_to(src, buf.shape)
                g_in = src.reshape(-1, ws)
                g_out = buf.reshape(-1, ws)
                if direction == "idx":
                    g_out[:] = g_in[:, amount:amount + 1]
                elif amount == 0 or amount >= ws:
                    g_out[:] = g_in
                elif direction == "up":
                    g_out[:, :amount] = g_in[:, :amount]
                    g_out[:, amount:] = g_in[:, :ws - amount]
                else:  # down
                    g_out[:, ws - amount:] = g_in[:, ws - amount:]
                    g_out[:, :ws - amount] = g_in[:, amount:]
                env[nid] = buf
            program.chunk_steps.append(step)
            return
        raise TraceUnsupported(f"cannot emit value for op {op!r}")

    def emit_fused_mad(node, shfl_id):
        """mul into the out slot, then add the lane-shifted previous partial
        slice-wise — bit-identical to shfl followed by mad (same elementwise
        additions on the same operands), one register-wide pass cheaper."""
        acc = nodes[shfl_id]
        ia, ib_ = node.inputs[0], node.inputs[1]
        iprev = acc.inputs[0]
        direction = acc.params["dir"]
        amount = acc.params["amount"]
        slot = pooled(node)

        def step(session, ia=ia, ib_=ib_, iprev=iprev, slot=slot,
                 nid=node.id, direction=direction, amount=amount):
            env = session.env
            buf = session.s(slot)
            np.multiply(env[ia], env[ib_], out=buf)
            prev = np.asarray(env[iprev])
            if prev.shape != buf.shape:
                prev = np.broadcast_to(prev, buf.shape)
            g_out = buf.reshape(-1, ws)
            g_prev = prev.reshape(-1, ws)
            if direction == "up":
                g_out[:, :amount] += g_prev[:, :amount]
                g_out[:, amount:] += g_prev[:, :ws - amount]
            else:
                g_out[:, :ws - amount] += g_prev[:, amount:]
                g_out[:, ws - amount:] += g_prev[:, ws - amount:]
            env[nid] = buf
        program.chunk_steps.append(step)

    # ------------------------------------------------------- global loads

    def emit_load_global(node, tier):
        nid = node.id
        params = node.params
        slot = params["slot"]
        masked = params["masked"]
        i_idx = node.inputs[0]
        i_mask = node.inputs[1] if masked else None
        info = trace.slot_info[slot]
        itemsize = int(info["itemsize"])
        buf_dtype = np.dtype(info["dtype"])
        cached = bool(info["cached"])
        idx_static = static_tier(i_idx)
        mask_static = static_tier(i_mask)
        track = count_traffic and not cached
        idx_cast = np.dtype(nodes[i_idx].dtype) != np.dtype(np.int64)

        if idx_static and mask_static:
            # the whole access pattern is thread-uniform: fold warp counts,
            # transactions and bytes into the per-block delta, record one
            # broadcast traffic row per chunk
            cell = new_cell() if track else None

            def thunk(session, i_idx=i_idx, i_mask=i_mask, slot=slot,
                      cell=cell):
                env = session.env
                buffer = session.buffers[slot]
                idx = row_of(env[i_idx], np.int64)
                if int(idx.min()) < 0 or int(idx.max()) >= buffer.size:
                    raise SimulationError(
                        f"out-of-bounds global load on {buffer.name!r}")
                mask = None if i_mask is None else row_of(env[i_mask], bool)
                if mask is None:
                    warps, div, active = W, 0, T
                else:
                    warps, div = grouped_warp_counts(mask, ws)
                    active = int(mask.sum())
                lines = (idx * itemsize) // line_bytes
                trans = int(rowwise_unique_counts(
                    lines.reshape(-1, ws),
                    None if mask is None else mask.reshape(-1, ws)).sum())
                if cell is not None and active:
                    session.cells[cell] = (np.where(mask, lines, _SENTINEL)
                                           if mask is not None else lines)
                return {"gmem_load": warps, "divergent_branches": div,
                        "gmem_load_transactions": trans,
                        "cache_read_bytes": float(active * itemsize)}
            program.delta_thunks.append(thunk)
            if cell is not None:
                def record(session, cell=cell, slot=slot):
                    row = session.cells[cell]
                    if row is not None:
                        session.traffic.setdefault(slot, []).append(
                            ("mat", np.broadcast_to(row, (session.B, T))))
                program.chunk_steps.append(record)

        if tier == TIER_LAUNCH:
            def load_step(session, i_idx=i_idx, i_mask=i_mask, slot=slot,
                          nid=nid):
                env = session.env
                buffer = session.buffers[slot]
                idx = row_of(env[i_idx], np.int64)
                values = np.zeros((T,), dtype=buffer.dtype)
                if i_mask is None:
                    values[:] = buffer.flat[idx]
                else:
                    mask = row_of(env[i_mask], bool)
                    values[mask] = buffer.flat[idx[mask]]
                env[nid] = values.astype(working, copy=False)
            program.launch_steps.append(load_step)
            return

        # CHUNK-tier value (and possibly CHUNK-tier accounting)
        out_slot = pooled(node)
        dyn_acct = not (idx_static and mask_static)
        lines_slot = diff_slot = None
        if dyn_acct:
            lines_slot = pool.alloc((T,), np.int64)
            if ws > 1:
                diff_slot = pool.alloc((T - W,), np.int64)
        shift = _line_shift(itemsize, line_bytes)

        def step(session, i_idx=i_idx, i_mask=i_mask, slot=slot, nid=nid,
                 out_slot=out_slot, lines_slot=lines_slot,
                 diff_slot=diff_slot, dyn_acct=dyn_acct, idx_cast=idx_cast,
                 masked=masked, track=track, buf_dtype=buf_dtype,
                 itemsize=itemsize, shift=shift):
            env = session.env
            B = session.B
            buffer = session.buffers[slot]
            counters = session.counters
            account = session.account
            idx = np.asarray(env[i_idx])
            if idx_cast:
                idx = idx.astype(np.int64)
            if account and (int(idx.min()) < 0
                            or int(idx.max()) >= buffer.size):
                raise SimulationError(
                    f"out-of-bounds global load on {buffer.name!r}")
            shape = (B, T)
            idxb = idx if idx.shape == shape else np.broadcast_to(idx, shape)
            mask = None
            if masked:
                mask = np.asarray(env[i_mask])
                if mask.shape != shape:
                    mask = np.broadcast_to(mask, shape)
            if dyn_acct and account:
                if mask is None:
                    warps, active = B * W, B * T
                else:
                    warps, div = grouped_warp_counts(mask, ws)
                    counters.divergent_branches += div
                    active = int(mask.sum())
                counters.gmem_load += warps
                counters.cache_read_bytes += float(active * itemsize)
                lines = session.s(lines_slot).reshape(shape)
                if shift is not None:
                    np.right_shift(idxb, shift, out=lines)
                else:
                    np.multiply(idxb, itemsize, out=lines)
                    np.floor_divide(lines, line_bytes, out=lines)
                wm = lines.reshape(-1, ws)
                mm = (None if mask is None
                      else np.ascontiguousarray(mask).reshape(-1, ws))
                dbuf = (session.s(diff_slot).reshape(-1, ws - 1)
                        if diff_slot is not None else None)
                trans, d, rows_sorted = _transactions(wm, mm, dbuf)
                counters.gmem_load_transactions += trans
                if track and active:
                    if (mask is None and rows_sorted and d is not None
                            and int(d.max()) <= 1):
                        # each warp row covers one contiguous line range:
                        # record just the bounds, unioned at chunk end
                        session.traffic.setdefault(slot, []).append(
                            ("iv", wm[:, 0].copy(), wm[:, -1].copy()))
                    else:
                        record = (lines.copy() if mask is None
                                  else np.where(mask, lines, _SENTINEL))
                        session.traffic.setdefault(slot, []).append(
                            ("mat", record))
            # functional gather — mirrors the batched engine expression
            if out_slot is not None and buf_dtype == working and mask is None:
                out = session.s(out_slot)
                np.take(buffer.flat, idxb, out=out)
                env[nid] = out
                return
            if out_slot is not None and buf_dtype == working:
                out = session.s(out_slot)
                out.fill(0)
                out[mask] = buffer.flat[idxb[mask]]
                env[nid] = out
                return
            values = np.zeros(shape, dtype=buf_dtype)
            if mask is None:
                values[:] = buffer.flat[idxb]
            else:
                values[mask] = buffer.flat[idxb[mask]]
            env[nid] = values.astype(working, copy=False)
        program.chunk_steps.append(step)

    # ------------------------------------------------------ global stores

    def emit_store_global(node, tier):
        params = node.params
        slot = params["slot"]
        masked = params["masked"]
        i_idx = node.inputs[0]
        i_val = node.inputs[1]
        i_mask = node.inputs[2] if masked else None
        info = trace.slot_info[slot]
        itemsize = int(info["itemsize"])
        cached = bool(info["cached"])
        idx_static = static_tier(i_idx)
        mask_static = static_tier(i_mask)
        idx_cast = np.dtype(nodes[i_idx].dtype) != np.dtype(np.int64)

        if idx_static and mask_static:
            def thunk(session, i_idx=i_idx, i_mask=i_mask, slot=slot):
                env = session.env
                buffer = session.buffers[slot]
                idx = row_of(env[i_idx], np.int64)
                if int(idx.min()) < 0 or int(idx.max()) >= buffer.size:
                    raise SimulationError(
                        f"out-of-bounds global store on {buffer.name!r}")
                mask = None if i_mask is None else row_of(env[i_mask], bool)
                if mask is None:
                    warps, div, active = W, 0, T
                else:
                    warps, div = grouped_warp_counts(mask, ws)
                    active = int(mask.sum())
                lines = (idx * itemsize) // line_bytes
                trans = int(rowwise_unique_counts(
                    lines.reshape(-1, ws),
                    None if mask is None else mask.reshape(-1, ws)).sum())
                delta = {"gmem_store": warps, "divergent_branches": div,
                         "gmem_store_transactions": trans}
                if not buffer.cached:
                    delta["dram_write_bytes"] = float(active * itemsize)
                return delta
            program.delta_thunks.append(thunk)

        if tier == TIER_LAUNCH:
            def store_step(session, i_idx=i_idx, i_val=i_val, i_mask=i_mask,
                           slot=slot):
                env = session.env
                buffer = session.buffers[slot]
                idx = row_of(env[i_idx], np.int64)
                values = np.broadcast_to(np.asarray(env[i_val]), (T,))
                if i_mask is None:
                    buffer.flat[idx] = values.astype(buffer.dtype, copy=False)
                else:
                    mask = row_of(env[i_mask], bool)
                    buffer.flat[idx[mask]] = values[mask].astype(
                        buffer.dtype, copy=False)
            program.launch_steps.append(store_step)
            return

        dyn_acct = not (idx_static and mask_static)
        lines_slot = diff_slot = None
        if dyn_acct:
            lines_slot = pool.alloc((T,), np.int64)
            if ws > 1:
                diff_slot = pool.alloc((T - W,), np.int64)
        shift = _line_shift(itemsize, line_bytes)

        def step(session, i_idx=i_idx, i_val=i_val, i_mask=i_mask, slot=slot,
                 lines_slot=lines_slot, diff_slot=diff_slot,
                 dyn_acct=dyn_acct, idx_cast=idx_cast, masked=masked,
                 cached=cached, itemsize=itemsize, shift=shift):
            env = session.env
            B = session.B
            buffer = session.buffers[slot]
            counters = session.counters
            account = session.account
            idx = np.asarray(env[i_idx])
            if idx_cast:
                idx = idx.astype(np.int64)
            if account and (int(idx.min()) < 0
                            or int(idx.max()) >= buffer.size):
                raise SimulationError(
                    f"out-of-bounds global store on {buffer.name!r}")
            shape = (B, T)
            idxb = idx if idx.shape == shape else np.broadcast_to(idx, shape)
            mask = None
            if masked:
                mask = np.asarray(env[i_mask])
                if mask.shape != shape:
                    mask = np.broadcast_to(mask, shape)
            if dyn_acct and account:
                if mask is None:
                    warps, active = B * W, B * T
                else:
                    warps, div = grouped_warp_counts(mask, ws)
                    counters.divergent_branches += div
                    active = int(mask.sum())
                counters.gmem_store += warps
                lines = session.s(lines_slot).reshape(shape)
                if shift is not None:
                    np.right_shift(idxb, shift, out=lines)
                else:
                    np.multiply(idxb, itemsize, out=lines)
                    np.floor_divide(lines, line_bytes, out=lines)
                wm = lines.reshape(-1, ws)
                mm = (None if mask is None
                      else np.ascontiguousarray(mask).reshape(-1, ws))
                dbuf = (session.s(diff_slot).reshape(-1, ws - 1)
                        if diff_slot is not None else None)
                counters.gmem_store_transactions += _transactions(
                    wm, mm, dbuf)[0]
                if not cached:
                    counters.dram_write_bytes += float(active * itemsize)
            values = np.broadcast_to(np.asarray(env[i_val]), shape)
            if mask is None:
                buffer.flat[idxb] = values.astype(buffer.dtype, copy=False)
            else:
                buffer.flat[idxb[mask]] = values[mask].astype(buffer.dtype,
                                                              copy=False)
        program.chunk_steps.append(step)

    # -------------------------------------------------------- shared memory

    def emit_alloc_shared(node, content_tier):
        nid = node.id
        size = node.params["size"]
        dtype = np.dtype(node.params["dtype"])
        if content_tier <= TIER_LAUNCH:
            def step(session, nid=nid, size=size, dtype=dtype):
                session.env[nid] = np.zeros((size,), dtype=dtype)
            program.launch_steps.append(step)
            return
        slot = pool.alloc((size,), dtype)
        storage[nid] = slot

        def step(session, nid=nid, slot=slot):
            buf = session.s(slot)
            buf.fill(0)
            session.env[nid] = buf
        program.chunk_steps.append(step)

    def smem_access_thunk(node, is_load: bool):
        """Per-block shared-memory accounting (thread-uniform access only)."""
        params = node.params
        masked = params["masked"]
        uniform = params["uniform"]
        i_idx = node.inputs[0]
        i_mask = node.inputs[-1] if masked else None
        if not (static_tier(i_idx) and static_tier(i_mask)):
            raise TraceUnsupported(
                "block-varying shared-memory index/mask patterns are not "
                "supported by the replay engine")
        alloc = nodes[params["shared"]]
        itemsize = int(alloc.params["itemsize"])
        size = int(alloc.params["size"])
        name = alloc.params["name"]
        op_word = "load" if is_load else "store"

        def thunk(session, i_idx=i_idx, i_mask=i_mask):
            env = session.env
            idx = row_of(env[i_idx], np.int64)
            if int(idx.min()) < 0 or int(idx.max()) >= size:
                raise SimulationError(
                    f"out-of-bounds shared {op_word} on {name!r}")
            mask = None if i_mask is None else row_of(env[i_mask], bool)
            if uniform:
                if mask is None:
                    active_counts = np.full(W, ws, dtype=np.int64)
                else:
                    active_counts = mask.reshape(-1, ws).sum(axis=1)
                broadcasts = active_counts > 0
                degrees = broadcasts.astype(np.int64)
            else:
                degrees, broadcasts, active_counts = bank_conflict_profile(
                    idx.reshape(-1, ws), itemsize, banks, bank_bytes,
                    None if mask is None else mask.reshape(-1, ws))
            active_total = int(active_counts.sum())
            if is_load:
                occupied = active_counts > 0
                broadcast_warps = int((broadcasts & occupied).sum())
                conflict_degrees = degrees[occupied & ~broadcasts]
                accesses = int(conflict_degrees.sum())
                conflicts = int((conflict_degrees - 1).sum())
                return {"smem_broadcast": broadcast_warps,
                        "smem_load": accesses,
                        "smem_bank_conflicts": conflicts,
                        "smem_read_bytes": float(active_total * itemsize)}
            store_degrees = degrees[active_counts > 0]
            accesses = int(store_degrees.sum())
            conflicts = int((store_degrees - 1).sum())
            return {"smem_store": accesses,
                    "smem_bank_conflicts": conflicts,
                    "smem_write_bytes": float(active_total * itemsize)}
        program.delta_thunks.append(thunk)

    def emit_load_shared(node, tier):
        nid = node.id
        params = node.params
        shared_id = params["shared"]
        masked = params["masked"]
        uniform = params["uniform"]
        i_idx = node.inputs[0]
        i_mask = node.inputs[1] if masked else None
        content_dtype = np.dtype(nodes[shared_id].params["dtype"])
        smem_access_thunk(node, is_load=True)

        if tier <= TIER_LAUNCH:
            # content and indices are launch-static: one (T,)-row gather
            def step(session, i_idx=i_idx, i_mask=i_mask, shared_id=shared_id,
                     nid=nid, uniform=uniform):
                env = session.env
                content = env[shared_id]
                raw = np.asarray(env[i_idx])
                if i_mask is None and uniform:
                    index = int(raw.reshape(-1)[0])
                    env[nid] = content[index].astype(working)
                    return
                idx = row_of(raw, np.int64)
                if i_mask is None:
                    env[nid] = content[idx].astype(working, copy=False)
                    return
                mask = row_of(env[i_mask], bool)
                values = np.zeros((T,), dtype=working)
                values[mask] = content[idx[mask]].astype(working, copy=False)
                env[nid] = values
            program.launch_steps.append(step)
            return

        content_chunk = content_tiers[shared_id] == TIER_CHUNK
        out_slot = pooled(node)
        idx_is_block = nodes[i_idx].kind > KIND_THREAD

        def step(session, i_idx=i_idx, i_mask=i_mask, shared_id=shared_id,
                 nid=nid, uniform=uniform, masked=masked,
                 content_chunk=content_chunk, out_slot=out_slot,
                 idx_is_block=idx_is_block, content_dtype=content_dtype):
            env = session.env
            B = session.B
            content = env[shared_id]
            raw = np.asarray(env[i_idx])
            if uniform and not masked:
                out = session.s(out_slot)  # (B, 1)
                if content_chunk:
                    if idx_is_block:
                        out[:, 0] = content[np.arange(B), raw[:, 0]]
                    else:
                        out[:, 0] = content[:, int(raw.reshape(-1)[0])]
                else:
                    if idx_is_block:
                        out[:, 0] = content[raw[:, 0]]
                    else:
                        out[:, 0] = content[int(raw.reshape(-1)[0])]
                env[nid] = out
                return
            shape = (B, T)
            idxb = raw if raw.shape == shape else np.broadcast_to(raw, shape)
            if idxb.dtype != np.int64:
                idxb = idxb.astype(np.int64)
            mask = None
            if masked:
                mask = np.asarray(env[i_mask])
                if mask.shape != shape:
                    mask = np.broadcast_to(mask, shape)
            out = session.s(out_slot) if out_slot is not None else \
                np.empty(shape, dtype=working)
            if not content_chunk:
                if mask is None:
                    if content.dtype == working:
                        np.take(content, idxb, out=out)
                    else:
                        np.copyto(out, content[idxb], casting="unsafe")
                else:
                    out.fill(0)
                    out[mask] = content[idxb[mask]].astype(working,
                                                           copy=False)
            else:
                if mask is None and not idx_is_block:
                    row = np.ascontiguousarray(raw).reshape(-1)
                    if content.dtype == working:
                        np.take(content, row, axis=1, out=out)
                    else:
                        np.copyto(out, content[:, row], casting="unsafe")
                elif mask is None:
                    rows = np.broadcast_to(np.arange(B)[:, None], shape)
                    np.copyto(out, content[rows, idxb], casting="unsafe")
                else:
                    rows = np.broadcast_to(np.arange(B)[:, None], shape)
                    out.fill(0)
                    out[mask] = content[rows[mask], idxb[mask]].astype(
                        working, copy=False)
            env[nid] = out
        program.chunk_steps.append(step)

    def emit_store_shared(node, tier):
        params = node.params
        shared_id = params["shared"]
        masked = params["masked"]
        i_idx = node.inputs[0]
        i_val = node.inputs[1]
        i_mask = node.inputs[2] if masked else None
        smem_access_thunk(node, is_load=False)
        content_chunk = content_tiers[shared_id] == TIER_CHUNK
        idx_is_block = nodes[i_idx].kind > KIND_THREAD

        if not content_chunk:
            # launch-static content: scatter one (T,)-row once per session
            def step(session, i_idx=i_idx, i_val=i_val, i_mask=i_mask,
                     shared_id=shared_id):
                env = session.env
                content = env[shared_id]
                idx = row_of(env[i_idx], np.int64)
                values = np.broadcast_to(np.asarray(env[i_val]), (T,))
                if i_mask is None:
                    content[idx] = values.astype(content.dtype, copy=False)
                else:
                    mask = row_of(env[i_mask], bool)
                    content[idx[mask]] = values[mask].astype(content.dtype,
                                                             copy=False)
            program.launch_steps.append(step)
            return

        def step(session, i_idx=i_idx, i_val=i_val, i_mask=i_mask,
                 shared_id=shared_id, masked=masked,
                 idx_is_block=idx_is_block):
            env = session.env
            B = session.B
            content = env[shared_id]
            shape = (B, T)
            raw = np.asarray(env[i_idx])
            values = np.broadcast_to(np.asarray(env[i_val]), shape)
            if not idx_is_block:
                row = row_of(raw, np.int64)
                if masked:
                    mask0 = row_of(env[i_mask], bool)
                    cols = row[mask0]
                    content[:, cols] = values[:, mask0].astype(content.dtype,
                                                               copy=False)
                else:
                    content[:, row] = values.astype(content.dtype, copy=False)
                return
            idxb = raw if raw.shape == shape else np.broadcast_to(raw, shape)
            if idxb.dtype != np.int64:
                idxb = idxb.astype(np.int64)
            rows = np.broadcast_to(np.arange(B)[:, None], shape)
            if masked:
                mask = np.asarray(env[i_mask])
                if mask.shape != shape:
                    mask = np.broadcast_to(mask, shape)
                content[rows[mask], idxb[mask]] = values[mask].astype(
                    content.dtype, copy=False)
            else:
                content[rows, idxb] = values.astype(content.dtype, copy=False)
        program.chunk_steps.append(step)

    # -------------------------------------------------------- emission walk

    for node in nodes:
        tier = tiers[node.id]
        op = node.op
        if op == "const":
            program.env_template[node.id] = node.value
        elif op == "input":
            name = node.params["name"]
            if name in ("bx", "by", "bz"):
                program.block_inputs.append(
                    (node.id, {"bx": 0, "by": 1, "bz": 2}[name]))
            else:
                program.env_template[node.id] = node.value
        elif op == "pure":
            emit_value(node, tier)
        elif op == "arith":
            add_delta({"mad": "fma", "add": "add", "mul": "mul"}
                      [node.params["kind"]], W)
            if node.id in fused_shfl:
                emit_fused_mad(node, fused_shfl[node.id])
            else:
                emit_value(node, tier)
        elif op == "shfl":
            add_delta("shfl", W)
            if node.id not in fused_ids:
                emit_value(node, tier)
        elif op == "sync":
            add_delta("sync", W)
        elif op == "misc":
            add_delta("misc", node.params["instructions"] * W)
        elif op == "load_global":
            emit_load_global(node, tier)
        elif op == "store_global":
            emit_store_global(node, tier)
        elif op == "alloc_shared":
            emit_alloc_shared(node, content_tiers[node.id])
        elif op == "load_shared":
            emit_load_shared(node, tier)
        elif op == "store_shared":
            emit_store_shared(node, tier)
        else:  # pragma: no cover - exhaustive over recorded ops
            raise TraceUnsupported(f"unknown trace op {op!r}")
        # reclaim scratch slots whose values are now dead
        for i in release_at.get(node.id, ()):
            if i in storage:
                pool.release(storage.pop(i))

    if count_traffic:
        def finalize_traffic(session):
            if not session.account:
                return
            total = 0
            B = session.B
            for slot, records in session.traffic.items():
                ivs = [r for r in records if r[0] == "iv"]
                mats = [r[1] for r in records if r[0] == "mat"]
                if ivs and mats:
                    # mixed chunk (never hit by the SSAM kernels): expand
                    # intervals so all records share the matrix path
                    for _, lo, hi in ivs:
                        mats.append(_intervals_to_matrix(lo, hi, B))
                    ivs = []
                if ivs:
                    los = np.concatenate(
                        [lo.reshape(B, -1) for _, lo, _ in ivs], axis=1)
                    his = np.concatenate(
                        [hi.reshape(B, -1) for _, _, hi in ivs], axis=1)
                    total += _interval_union_sum(los, his)
                    continue
                compacted = []
                for arr in mats:
                    arr = np.ascontiguousarray(arr)
                    if _SENTINEL not in (arr[0, -1], arr[-1, -1]) and \
                            _is_rowwise_sorted(arr):
                        compacted.append(_compact_sorted_rows(arr))
                    else:
                        compacted.append(arr)
                concat = compacted[0] if len(compacted) == 1 else \
                    np.concatenate(compacted, axis=1)
                total += int(rowwise_unique_counts(concat, None).sum())
            session.counters.dram_read_bytes += float(total * line_bytes)
        program.chunk_steps.append(finalize_traffic)

    for field, amount in delta_static.items():
        program.delta_thunks.append(
            lambda session, field=field, amount=amount: {field: amount})
    program.pool_slots = list(pool.slots)
    return program


# ----------------------------------------------------- capture + fallbacks

@dataclass
class TraceCaptureRecord:
    """One recorded kernel trace plus the context the verifier needs."""

    kernel_name: str
    trace: Trace
    config: object
    architecture: GPUArchitecture
    count_traffic: bool
    #: block-index matrix of the recorded chunk
    chunk_blocks: np.ndarray
    #: counter delta the eager engine accumulated while recording the chunk
    chunk_counters: Dict[str, float] = field(default_factory=dict)

    @property
    def dedupe_key(self) -> tuple:
        """Identity of the recorded program (repeat launches re-record)."""
        return (self.kernel_name, tuple(self.config.grid_dim),
                int(self.trace.block_threads),
                self.architecture.name,
                tuple(node.op for node in self.trace.nodes))


class TraceCapture:
    """Collects every trace (and fallback) recorded inside the context."""

    def __init__(self) -> None:
        self.records: List[TraceCaptureRecord] = []
        self.fallbacks: List[Dict[str, str]] = []

    def unique_records(self) -> List[TraceCaptureRecord]:
        """Records deduplicated by program identity, first capture wins."""
        seen = set()
        unique = []
        for record in self.records:
            key = record.dedupe_key
            if key not in seen:
                seen.add(key)
                unique.append(record)
        return unique


_CAPTURE_STACK: List[TraceCapture] = []


def _active_capture() -> Optional[TraceCapture]:
    return _CAPTURE_STACK[-1] if _CAPTURE_STACK else None


@contextmanager
def capture_traces():
    """Capture the recorded trace of every replay launch in the block.

    Forces re-recording of chunk 0 even on warm trace caches, so the
    capture always carries the eager chunk's counter delta for the
    static-vs-dynamic cross-check.  Kernels that fall back to the batched
    engine land in ``capture.fallbacks`` instead of silently vanishing.
    """
    capture = TraceCapture()
    _CAPTURE_STACK.append(capture)
    try:
        yield capture
    finally:
        _CAPTURE_STACK.pop()


#: per-process log of replay-to-batched fallbacks (kernel name -> reason);
#: the sweep reads deltas of this to surface unanalyzable kernels
_FALLBACK_LOG: List[Dict[str, str]] = []


def record_fallback(kernel_name: str, reason: str) -> None:
    """Log one replay-engine fallback (also mirrored into active captures)."""
    event = {"kernel": kernel_name, "reason": reason}
    _FALLBACK_LOG.append(event)
    capture = _active_capture()
    if capture is not None:
        capture.fallbacks.append(dict(event))


def fallback_log() -> List[Dict[str, str]]:
    """Snapshot of every fallback recorded by this process so far."""
    return [dict(event) for event in _FALLBACK_LOG]


# ---------------------------------------------------------------- the glue

def trace_key(config, architecture: GPUArchitecture, count_traffic: bool,
              args: Sequence[object],
              volatile_slots: frozenset = frozenset()) -> tuple:
    """Cache key of one compiled program.

    Deliberately grid-independent: kernel bodies never read ``grid_dim``, so
    one trace serves every launch of the same plan — including the stencil
    ping-pong, whose rebinding of ``src``/``dst`` preserves the positional
    buffer signature.
    """
    parts: List[object] = [architecture.name, config.precision.name,
                           int(config.block_threads), bool(count_traffic),
                           tuple(sorted(volatile_slots))]
    for arg in args:
        if isinstance(arg, DeviceBuffer):
            parts.append(("buf", str(arg.dtype), int(arg.size),
                          bool(arg.cached)))
        else:
            parts.append(("arg", repr(arg)))
    return tuple(parts)


def record_trace(kernel, config, args, architecture: GPUArchitecture,
                 counters: KernelCounters, count_traffic: bool,
                 block_indices: np.ndarray) -> Trace:
    """Run one chunk eagerly under the tracer and return the recorded trace.

    The chunk is fully simulated (counters, traffic, buffer writes) with the
    batched engine's semantics while the trace is captured.
    """
    eager = BatchedBlockContext(
        block_indices=block_indices,
        grid_dim=config.grid_dim,
        block_threads=config.block_threads,
        architecture=architecture,
        counters=counters,
        precision=config.precision,
        count_traffic=count_traffic,
    )
    trace = Trace(tuple(args), batch_blocks=int(block_indices.shape[0]),
                  block_threads=eager.block_threads,
                  warp_size=eager.warp_size, num_warps=eager.num_warps,
                  numpy_dtype=eager.numpy_dtype)
    ctx = TracingContext(eager, trace)
    kernel.func(ctx, *args)
    ctx.finalize()
    return trace


def get_program(kernel, config, args, architecture: GPUArchitecture,
                count_traffic: bool,
                volatile_slots: frozenset = frozenset()):
    """Cached compiled program for this (kernel, plan, precision, args) key.

    Returns ``(program, None)`` on a cache hit.  On a miss the recording
    chunk must be simulated by the caller: returns ``(None, key)`` so the
    caller can record, compile and :func:`store_program`.
    """
    cache = getattr(kernel, "_trace_cache", None)
    if cache is None:
        cache = kernel._trace_cache = {}
    key = trace_key(config, architecture, count_traffic, args, volatile_slots)
    return cache.get(key, None), key


def _block_index_matrix(grid_dim) -> np.ndarray:
    """(total_blocks, 3) matrix of (bx, by, bz) in bx-fastest launch order."""
    gx, gy, gz = grid_dim
    ar = np.arange(gx * gy * gz, dtype=np.int64)
    out = np.empty((ar.shape[0], 3), dtype=np.int64)
    out[:, 0] = ar % gx
    out[:, 1] = (ar // gx) % gy
    out[:, 2] = ar // (gx * gy)
    return out


def replay_launch(kernel, config, args, architecture: object = "p100",
                  max_blocks: Optional[int] = None,
                  count_traffic: bool = True) -> LaunchResult:
    """Execute a launch through the compiled replay engine.

    First launch of a ``(kernel, plan, precision)``: chunk 0 runs eagerly
    under the tracer (so its counters and writes are the batched engine's),
    the trace is compiled, and the remaining chunks replay the program.
    Subsequent launches replay every chunk.  Kernels the tracer cannot
    record fall back to the batched engine transparently.
    """
    arch = get_architecture(architecture)
    if config.block_threads % arch.warp_size != 0:
        raise LaunchError(
            f"block size {config.block_threads} is not a multiple of warp "
            f"size {arch.warp_size}")
    index_matrix = _block_index_matrix(config.grid_dim)
    total_blocks = index_matrix.shape[0]
    sampled = False
    if max_blocks is not None and max_blocks < total_blocks:
        stride = max(1, total_blocks // max_blocks)
        index_matrix = np.ascontiguousarray(
            index_matrix[::stride][:max_blocks])
        sampled = True
    n = index_matrix.shape[0]
    # force at least two chunks so the compiled path is exercised (and
    # covered by the differential tests) even on tiny grids; chunk 0 of a
    # cold launch runs eagerly under the tracer
    chunk = min(auto_batch_size(config), max(1, (n + 1) // 2)) if n > 1 \
        else 1

    counters = KernelCounters()
    capture = _active_capture()
    program, key = get_program(kernel, config, args, arch, count_traffic)
    start = 0
    executed = 0
    if (capture is None and program is None and key is not None
            and key in kernel._trace_cache):
        # known-untraceable kernel: delegate to the batched engine (a
        # capture context retries the recording to report the reason)
        record_fallback(kernel.name, "known untraceable (cached)")
        return kernel.launch(config, args, architecture=arch,
                             max_blocks=max_blocks,
                             count_traffic=count_traffic, batch_size="auto")
    if program is None or capture is not None:
        # chunk 0 runs eagerly under the tracer; under a capture context
        # this happens even on a warm cache so the chunk's counter delta
        # is observable (recording is bit-identical to replaying)
        before = counters.as_dict()
        try:
            trace = record_trace(kernel, config, args, arch, counters,
                                 count_traffic, index_matrix[:chunk])
            if program is None:
                program = compile_trace(trace, arch, count_traffic)
                kernel._trace_cache[key] = program
        except TraceUnsupported as exc:
            kernel._trace_cache[key] = None
            record_fallback(kernel.name, str(exc))
            return kernel.launch(config, args, architecture=arch,
                                 max_blocks=max_blocks,
                                 count_traffic=count_traffic,
                                 batch_size="auto")
        if capture is not None:
            after = counters.as_dict()
            delta = {name: after[name] - before.get(name, 0)
                     for name in after}
            capture.records.append(TraceCaptureRecord(
                kernel_name=kernel.name, trace=trace, config=config,
                architecture=arch, count_traffic=count_traffic,
                chunk_blocks=np.ascontiguousarray(index_matrix[:chunk]),
                chunk_counters=delta))
        start = chunk
        executed = int(index_matrix[:chunk].shape[0])
    memo_key = cached = None
    if program.memoizable:
        memo_key = (config.grid_dim, max_blocks, bool(count_traffic))
        if start == 0:  # fully-replayed launch: eligible for reuse
            cached = program.counter_cache.get(memo_key)
    session = ReplaySession(program, args, counters,
                            max_chunk_blocks=min(chunk, max(1, n)),
                            account=cached is None)
    for s in range(start, n, chunk):
        batch = index_matrix[s:s + chunk]
        session.run_chunk(batch)
        executed += int(batch.shape[0])
    sample_fraction = executed / total_blocks if total_blocks else 1.0
    if cached is not None:
        counters = KernelCounters.from_dict(cached)
    else:
        if sampled and sample_fraction > 0:
            counters = counters.scaled(1.0 / sample_fraction)
        if memo_key is not None:
            program.counter_cache[memo_key] = counters.as_dict()
    return LaunchResult(
        kernel_name=kernel.name,
        config=config,
        architecture=arch,
        counters=counters,
        blocks_executed=executed,
        sampled=sampled,
        sample_fraction=sample_fraction,
    )
