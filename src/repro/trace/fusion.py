"""Stage fusion: adjacent traced launches as one software-pipelined launch.

Two kernels that share a blocking plan (same grid and block geometry) and
communicate through an intermediate buffer can be fused: the fused launch
interleaves replay chunks of the stages so the producer runs just far
enough ahead of the consumer to cover its halo, the way a fused device
kernel keeps a bounded rolling window of the intermediate on chip.  The
intermediate buffer is marked ``cached`` — its writes and reads stay in
L2/registers and generate no DRAM traffic — so the fused launch's traffic
is strictly below the unfused chain's.

Results are bit-identical to running the stages back to back: fusion only
reorders whole blocks across stages, and a consumer chunk never runs
before every producer block it reads from.  Stages must be out-of-place
(no stage may read a buffer it also writes); consumer reads of the
intermediate are forced to chunk tier through the replay compiler's
``volatile_slots`` mechanism so they observe the producer's freshest
writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


from ..errors import LaunchError
from ..gpu.architecture import get_architecture
from ..gpu.counters import KernelCounters
from ..gpu.kernel import Kernel, LaunchConfig, LaunchResult, auto_batch_size
from ..gpu.memory import DeviceBuffer
from .ir import TraceUnsupported
from .replay import (ReplaySession, _block_index_matrix, compile_trace,
                     get_program, record_trace)


@dataclass(frozen=True)
class FusedStage:
    """One stage of a fused pipeline: a kernel plus its launch binding."""

    kernel: Kernel
    config: LaunchConfig
    args: Tuple[object, ...]


class _StageState:
    """Execution cursor of one stage inside a fused launch."""

    def __init__(self, index: int, stage: FusedStage) -> None:
        self.index = index
        self.kernel = stage.kernel
        self.config = stage.config
        self.args = tuple(stage.args)
        self.program = None
        self.session: Optional[ReplaySession] = None
        self.pos = 0  # blocks completed, in launch order


def _volatile_slots(state: _StageState, states: List[_StageState]
                    ) -> frozenset:
    """Argument positions of ``state`` written by an earlier stage.

    Earlier stages always compile before a later stage's first chunk runs
    (the driver keeps producers ahead of consumers), so their write-sets
    are known here on both the cold and the warm path.
    """
    written_ids = set()
    for earlier in states[:state.index]:
        program = earlier.program
        if program is None:  # pragma: no cover - driver ordering invariant
            raise LaunchError("fused stage compiled before its producer")
        for slot in program.written_slots:
            written_ids.add(earlier.args[slot].buffer_id)
    return frozenset(
        i for i, arg in enumerate(state.args)
        if isinstance(arg, DeviceBuffer) and arg.buffer_id in written_ids)


def fused_launch(stages: Sequence[FusedStage], architecture: object = "p100",
                 count_traffic: bool = True,
                 lead_blocks: Optional[int] = None) -> LaunchResult:
    """Run ``stages`` as one fused launch with a shared counter set.

    Parameters
    ----------
    stages:
        Pipeline stages in dataflow order.  All stages must share the
        launch grid and block size (one blocking plan); each stage's reads
        of buffers written by earlier stages are handled through the
        replay compiler's volatile-slot mechanism.
    lead_blocks:
        How many blocks a producer stage must stay ahead of its consumer
        — the fused pipeline's rolling window, derived from the consumer's
        halo.  ``None`` runs each stage to completion before the next
        starts (always safe).

    Any untraceable stage falls back to running every stage sequentially
    through the batched engine (stages must therefore be out-of-place, so
    a partially-run pipeline can be re-executed deterministically); the
    returned :class:`LaunchResult` then merges the per-stage launches.
    """
    stages = [stage if isinstance(stage, FusedStage) else FusedStage(*stage)
              for stage in stages]
    if len(stages) < 2:
        raise LaunchError("fused_launch needs at least two stages")
    arch = get_architecture(architecture)
    base = stages[0].config
    for stage in stages:
        config = stage.config
        if (config.grid_dim != base.grid_dim
                or config.block_threads != base.block_threads):
            raise LaunchError(
                "fused stages must share one blocking plan: got grid "
                f"{config.grid_dim} x {config.block_threads} threads vs "
                f"{base.grid_dim} x {base.block_threads}")
        if config.block_threads % arch.warp_size != 0:
            raise LaunchError(
                f"block size {config.block_threads} is not a multiple of "
                f"warp size {arch.warp_size}")
    try:
        return _fused_replay(stages, arch, count_traffic, lead_blocks)
    except TraceUnsupported:
        results = [stage.kernel.launch(stage.config, stage.args,
                                       architecture=arch,
                                       count_traffic=count_traffic,
                                       batch_size="auto")
                   for stage in stages]
        merged = results[0]
        for result in results[1:]:
            merged = merged.merged_with(result)
        return merged


def _fused_replay(stages: List[FusedStage], arch, count_traffic: bool,
                  lead_blocks: Optional[int]) -> LaunchResult:
    base = stages[0].config
    index_matrix = _block_index_matrix(base.grid_dim)
    n = index_matrix.shape[0]
    chunk = min(auto_batch_size(base), max(1, (n + 1) // 2)) if n > 1 else 1
    counters = KernelCounters()
    states = [_StageState(i, stage) for i, stage in enumerate(stages)]

    def run_one_chunk(state: _StageState) -> None:
        start = state.pos
        end = min(n, start + chunk)
        batch = index_matrix[start:end]
        if state.program is None:
            volatile = _volatile_slots(state, states)
            program, key = get_program(state.kernel, state.config, state.args,
                                       arch, count_traffic, volatile)
            if program is None:
                if key in state.kernel._trace_cache:
                    raise TraceUnsupported(
                        f"kernel {state.kernel.name!r} is untraceable")
                try:
                    trace = record_trace(state.kernel, state.config,
                                         state.args, arch, counters,
                                         count_traffic, batch)
                    program = compile_trace(trace, arch, count_traffic,
                                            volatile)
                except TraceUnsupported:
                    state.kernel._trace_cache[key] = None
                    raise
                state.kernel._trace_cache[key] = program
                state.program = program
                state.pos = end  # the recording chunk executed eagerly
                return
            state.program = program
        if state.session is None:
            state.session = ReplaySession(state.program, state.args, counters,
                                          max_chunk_blocks=chunk)
        state.session.run_chunk(batch)
        state.pos = end

    num_stages = len(states)
    lead = n if lead_blocks is None else max(chunk, int(lead_blocks))
    while states[-1].pos < n:
        target = min(n, states[-1].pos + chunk)
        # pull every producer far enough ahead to cover the halo of all
        # its downstream consumers, then advance the final stage one chunk
        for s in range(num_stages - 1):
            need = min(n, target + (num_stages - 1 - s) * lead)
            while states[s].pos < need:
                run_one_chunk(states[s])
        while states[-1].pos < target:
            run_one_chunk(states[-1])

    return LaunchResult(
        kernel_name="+".join(stage.kernel.name for stage in stages),
        config=base,
        architecture=arch,
        counters=counters,
        blocks_executed=sum(state.pos for state in states),
        sampled=False,
        sample_fraction=1.0,
    )
