"""Recording pass: execute a kernel body once, capture its op stream.

:class:`TracingContext` presents the same interface as
:class:`~repro.gpu.batch.BatchedBlockContext` but returns
:class:`TracerArray` handles from every operation.  Each handle pairs a
*concrete* value — produced by delegating to a real batched context, so the
recording chunk is simulated with exactly the eager engine's semantics and
counter accounting — with the id of the IR node that produced it.  NumPy
expressions the kernel body applies to handles (``+``, ``np.minimum``,
``np.where``, ``.astype`` …) are intercepted through the array protocols
and recorded as ``pure`` nodes carrying the ufunc itself, so replay runs
the identical NumPy call.

Host-side control flow (``for``/``if`` over plain Python values) simply
unrolls into the trace.  Anything data-dependent — branching on a traced
value, indexing NumPy with a traced shape — raises
:class:`~repro.trace.ir.TraceUnsupported`, and the launch falls back to the
batched engine.
"""

from __future__ import annotations


import numpy as np

from .ir import (
    B_AXIS,
    KIND_BLOCK,
    KIND_CONST,
    KIND_THREAD,
    Trace,
    TraceUnsupported,
)


def _astype_fn(x, dtype):
    """Marker function recorded for ``TracerArray.astype``."""
    return np.asarray(x).astype(dtype)


def _record_pure(trace: Trace, fn, operands, kwargs=None) -> "TracerArray":
    """Record one side-effect-free NumPy call and evaluate it concretely."""
    kwargs = dict(kwargs or {})
    ids = []
    values = []
    kind = KIND_CONST
    for operand in operands:
        if isinstance(operand, TracerArray):
            node = trace.nodes[operand.node]
            ids.append(node.id)
            values.append(operand.value)
            kind = max(kind, node.kind)
        else:
            ids.append(trace.const(operand).id)
            values.append(operand)
    result = trace.reduce_concrete(kind, fn(*values, **kwargs))
    key = (id(fn), tuple(ids),
           tuple(sorted((k, repr(v)) for k, v in kwargs.items())))
    cached = trace._cse.get(key)
    if cached is not None:
        return TracerArray(trace, cached, result)
    node = trace.add(
        "pure", fn=fn, inputs=tuple(ids), kwargs=kwargs, kind=kind,
        shape=trace.result_shape(kind, result),
        dtype=np.asarray(result).dtype,
        value=result if kind <= KIND_THREAD else None)
    trace._cse[key] = node.id
    return TracerArray(trace, node.id, result)


class TracerArray:
    """A traced register value: concrete data plus its producing IR node."""

    __slots__ = ("trace", "node", "value")
    #: make NumPy defer binary ops to this class instead of coercing
    __array_priority__ = 1000.0

    def __init__(self, trace: Trace, node_id: int, value):
        self.trace = trace
        self.node = node_id
        self.value = value

    # -------------------------------------------------- array-like surface

    @property
    def dtype(self):
        return np.asarray(self.value).dtype

    @property
    def shape(self):
        return np.shape(self.value)

    @property
    def ndim(self):
        return np.ndim(self.value)

    def astype(self, dtype, copy: bool = True) -> "TracerArray":
        return _record_pure(self.trace, _astype_fn, (self,),
                            {"dtype": np.dtype(dtype)})

    # ----------------------------------------------------- numpy protocols

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if method != "__call__" or kwargs.pop("out", None) is not None:
            raise TraceUnsupported(
                f"unsupported ufunc usage {ufunc.__name__}.{method} on a "
                f"traced value")
        if ufunc.nout != 1:
            raise TraceUnsupported(
                f"multi-output ufunc {ufunc.__name__} is not traceable")
        return _record_pure(self.trace, ufunc, inputs, kwargs)

    def __array_function__(self, func, types, args, kwargs):
        if func is np.where and len(args) == 3 and not kwargs:
            return _record_pure(self.trace, np.where, args)
        if func is np.clip and len(args) == 3 and not kwargs:
            return _record_pure(self.trace, np.clip, args)
        if func is np.shape and not kwargs:
            return self.shape
        if func is np.ndim and not kwargs:
            return self.ndim
        raise TraceUnsupported(
            f"numpy function {getattr(func, '__name__', func)!r} is not "
            f"traceable")

    def __array__(self, dtype=None, copy=None):
        raise TraceUnsupported(
            "a traced value escaped into an untraced numpy coercion; the "
            "replay engine cannot record this kernel body")

    def __bool__(self):
        raise TraceUnsupported(
            "data-dependent control flow: a traced value was used as a "
            "branch condition")

    def __iter__(self):
        raise TraceUnsupported("iterating over a traced value is not "
                               "supported")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TracerArray(node={self.node}, shape={self.shape})"


def _make_binary(ufunc, reflected: bool):
    if reflected:
        def method(self, other):
            return _record_pure(self.trace, ufunc, (other, self))
    else:
        def method(self, other):
            return _record_pure(self.trace, ufunc, (self, other))
    return method


def _make_unary(ufunc):
    def method(self):
        return _record_pure(self.trace, ufunc, (self,))
    return method


_BINARY = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "truediv": np.true_divide, "floordiv": np.floor_divide,
    "mod": np.remainder, "pow": np.power,
    "lshift": np.left_shift, "rshift": np.right_shift,
    "and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor,
}
_COMPARE = {
    "lt": np.less, "le": np.less_equal, "gt": np.greater,
    "ge": np.greater_equal, "eq": np.equal, "ne": np.not_equal,
}
for _name, _ufunc in _BINARY.items():
    setattr(TracerArray, f"__{_name}__", _make_binary(_ufunc, False))
    setattr(TracerArray, f"__r{_name}__", _make_binary(_ufunc, True))
for _name, _ufunc in _COMPARE.items():
    setattr(TracerArray, f"__{_name}__", _make_binary(_ufunc, False))
for _name, _ufunc in (("neg", np.negative), ("pos", np.positive),
                      ("abs", np.absolute), ("invert", np.invert)):
    setattr(TracerArray, f"__{_name}__", _make_unary(_ufunc))


class SharedTracer:
    """Handle for a traced shared-memory allocation."""

    __slots__ = ("inner", "node", "content_kind")

    def __init__(self, inner, node_id: int):
        self.inner = inner
        self.node = node_id
        #: how the *content* varies across blocks (zero-initialised: CONST);
        #: every store widens it with its index/mask/values kinds
        self.content_kind = KIND_CONST


class TracingContext:
    """Drop-in context that records while delegating to a batched context."""

    def __init__(self, eager, trace: Trace):
        self._eager = eager
        self.trace = trace

    # --------------------------------------------------- static attributes

    @property
    def block_threads(self):
        return self._eager.block_threads

    @property
    def warp_size(self):
        return self._eager.warp_size

    @property
    def num_warps(self):
        return self._eager.num_warps

    @property
    def grid_dim(self):
        return self._eager.grid_dim

    @property
    def architecture(self):
        return self._eager.architecture

    @property
    def precision(self):
        return self._eager.precision

    @property
    def numpy_dtype(self):
        return self._eager.numpy_dtype

    # ------------------------------------------------------------ operands

    def _operand(self, value):
        """(node_id, concrete, kind) of a kernel-body operand."""
        if isinstance(value, TracerArray):
            node = self.trace.nodes[value.node]
            return node.id, value.value, node.kind
        node = self.trace.const(value)
        return node.id, value, KIND_CONST

    def _result(self, op: str, concrete, kind: int, *, inputs=(),
                params=None, shape=None) -> TracerArray:
        concrete = self.trace.reduce_concrete(kind, concrete)
        if shape is None:
            shape = self.trace.result_shape(kind, concrete)
        node = self.trace.add(
            op, inputs=tuple(inputs), params=params, kind=kind, shape=shape,
            dtype=np.asarray(concrete).dtype,
            value=concrete if kind <= KIND_THREAD else None)
        return TracerArray(self.trace, node.id, concrete)

    # ----------------------------------------------------------------- ids

    @property
    def thread_idx_x(self) -> TracerArray:
        value = self._eager.thread_idx_x
        node = self.trace.input("tid", KIND_THREAD, value, value.shape)
        return TracerArray(self.trace, node.id, value)

    @property
    def lane_id(self) -> TracerArray:
        value = self._eager.lane_id
        node = self.trace.input("lane", KIND_THREAD, value, value.shape)
        return TracerArray(self.trace, node.id, value)

    @property
    def warp_id(self) -> TracerArray:
        value = self._eager.warp_id
        node = self.trace.input("warp", KIND_THREAD, value, value.shape)
        return TracerArray(self.trace, node.id, value)

    def _block_input(self, name: str, value) -> TracerArray:
        node = self.trace.input(name, KIND_BLOCK, None, (B_AXIS, 1))
        return TracerArray(self.trace, node.id, value)

    @property
    def block_idx_x(self) -> TracerArray:
        return self._block_input("bx", self._eager.block_idx_x)

    @property
    def block_idx_y(self) -> TracerArray:
        return self._block_input("by", self._eager.block_idx_y)

    @property
    def block_idx_z(self) -> TracerArray:
        return self._block_input("bz", self._eager.block_idx_z)

    # ------------------------------------------------------------ registers

    def zeros(self) -> TracerArray:
        value = self.numpy_dtype.type(0)
        node = self.trace.const(value)
        return TracerArray(self.trace, node.id, value)

    def full(self, value: float) -> TracerArray:
        scalar = self.numpy_dtype.type(value)
        node = self.trace.const(scalar)
        return TracerArray(self.trace, node.id, scalar)

    # ----------------------------------------------------------- arithmetic

    def _arith(self, kind_name: str, eager_fn, operands) -> TracerArray:
        ids, values, kind = [], [], KIND_CONST
        for operand in operands:
            node_id, value, op_kind = self._operand(operand)
            ids.append(node_id)
            values.append(value)
            kind = max(kind, op_kind)
        concrete = eager_fn(*values)
        return self._result("arith", concrete, kind, inputs=ids,
                            params={"kind": kind_name})

    def mad(self, a, b, acc) -> TracerArray:
        return self._arith("mad", self._eager.mad, (a, b, acc))

    def add(self, a, b) -> TracerArray:
        return self._arith("add", self._eager.add, (a, b))

    def mul(self, a, b) -> TracerArray:
        return self._arith("mul", self._eager.mul, (a, b))

    # ------------------------------------------------------------- shuffles

    def _shfl(self, direction: str, eager_fn, values, amount) -> TracerArray:
        node_id, concrete, kind = self._operand(values)
        result = eager_fn(concrete, int(amount))
        kind = max(kind, KIND_THREAD)
        return self._result("shfl", result, kind, inputs=(node_id,),
                            params={"dir": direction, "amount": int(amount)})

    def shfl_up(self, values, delta: int = 1) -> TracerArray:
        return self._shfl("up", self._eager.shfl_up, values, delta)

    def shfl_down(self, values, delta: int = 1) -> TracerArray:
        return self._shfl("down", self._eager.shfl_down, values, delta)

    def shfl_idx(self, values, source_lane: int) -> TracerArray:
        return self._shfl("idx", self._eager.shfl_idx, values, source_lane)

    # ---------------------------------------------------------- global mem

    def load_global(self, buffer, flat_indices, mask=None) -> TracerArray:
        slot = self.trace.slot_for(buffer)
        idx_id, idx_val, idx_kind = self._operand(flat_indices)
        inputs = [idx_id]
        mask_val, kind = None, idx_kind
        if mask is not None:
            mask_id, mask_val, mask_kind = self._operand(mask)
            inputs.append(mask_id)
            kind = max(kind, mask_kind)
        value = self._eager.load_global(buffer, idx_val, mask_val)
        return self._result(
            "load_global", value, kind, inputs=inputs,
            params={"slot": slot, "masked": mask is not None})

    def store_global(self, buffer, flat_indices, values, mask=None) -> None:
        slot = self.trace.slot_for(buffer)
        idx_id, idx_val, _ = self._operand(flat_indices)
        val_id, val_val, _ = self._operand(values)
        inputs = [idx_id, val_id]
        mask_val = None
        if mask is not None:
            mask_id, mask_val, _ = self._operand(mask)
            inputs.append(mask_id)
        self._eager.store_global(buffer, idx_val, val_val, mask_val)
        self.trace.add("store_global", inputs=tuple(inputs),
                       params={"slot": slot, "masked": mask is not None})
        self.trace.written_slots.add(slot)

    # ---------------------------------------------------------- shared mem

    def alloc_shared(self, name: str, shape, precision=None) -> SharedTracer:
        inner = self._eager.alloc_shared(name, shape, precision)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        node = self.trace.add(
            "alloc_shared",
            params={"name": name, "shape": tuple(shape), "size": size,
                    "dtype": inner.array.dtype,
                    "itemsize": int(inner.array.dtype.itemsize)},
            kind=KIND_CONST, shape=(B_AXIS, size), dtype=inner.array.dtype)
        return SharedTracer(inner, node.id)

    def _smem_operands(self, shared, flat_indices, mask):
        if not isinstance(shared, SharedTracer):
            raise TraceUnsupported(
                "shared-memory handle did not come from this tracing context")
        idx_id, idx_val, idx_kind = self._operand(flat_indices)
        raw = np.asarray(idx_val)
        uniform = raw.ndim == 0 or raw.shape[-1] == 1
        inputs = [idx_id]
        mask_val, kind = None, idx_kind
        if mask is not None:
            mask_id, mask_val, mask_kind = self._operand(mask)
            inputs.append(mask_id)
            kind = max(kind, mask_kind)
        return inputs, idx_val, mask_val, kind, uniform

    def load_shared(self, shared, flat_indices, mask=None) -> TracerArray:
        inputs, idx_val, mask_val, access_kind, uniform = \
            self._smem_operands(shared, flat_indices, mask)
        value = self._eager.load_shared(shared.inner, idx_val, mask_val)
        kind = max(access_kind, shared.content_kind)
        params = {"shared": shared.node, "uniform": uniform,
                  "masked": mask is not None}
        if kind == KIND_BLOCK and uniform and mask is None:
            # a warp-uniform read of block-varying content is one value per
            # block: represent it as a (B, 1) column (broadcasts exactly)
            column = value[:, :1]
            if not np.array_equal(np.broadcast_to(column, value.shape), value):
                raise TraceUnsupported("uniform shared load produced a "
                                       "non-uniform register")
            return self._result("load_shared", np.ascontiguousarray(column),
                                kind, inputs=inputs, params=params,
                                shape=(B_AXIS, 1))
        return self._result("load_shared", value, kind, inputs=inputs,
                            params=params)

    def store_shared(self, shared, flat_indices, values, mask=None) -> None:
        inputs, idx_val, mask_val, access_kind, uniform = \
            self._smem_operands(shared, flat_indices, mask)
        val_id, val_val, val_kind = self._operand(values)
        inputs.insert(1, val_id)
        self._eager.store_shared(shared.inner, idx_val, val_val, mask_val)
        self.trace.add("store_shared", inputs=tuple(inputs),
                       params={"shared": shared.node, "uniform": uniform,
                               "masked": mask is not None})
        shared.content_kind = max(shared.content_kind, access_kind, val_kind)

    # ------------------------------------------------------------- control

    def syncthreads(self) -> None:
        self._eager.syncthreads()
        self.trace.add("sync")

    def overhead(self, instructions: float = 1.0) -> None:
        self._eager.overhead(instructions)
        self.trace.add("misc", params={"instructions": instructions})

    def finalize(self) -> None:
        self._eager.finalize()
