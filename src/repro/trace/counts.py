"""Static instruction counts derived from the kernel trace IR.

A recorded :class:`~repro.trace.ir.Trace` is a complete straight-line listing
of one block's warp instructions, so a single walk over its nodes yields the
per-block instruction profile *without executing anything*: every ``arith``
node is one warp instruction per warp of the block, every ``load_global``
node one gather per warp, and so on.  Scaling by the launch grid gives the
whole-kernel counts that Section 5's analytic model predicts in closed form.

This module is the cross-check between the two: the counts derived here come
from the traced kernel *implementation*, while the ``model_*`` evaluators in
:mod:`repro.core.performance_model` come from hand-written formulas.  Where
they agree, the formulas are validated against the code; where they differ,
the divergence is bounded and documented in :data:`MODEL_AGREEMENT_BOUNDS`.

Two deliberate idealisations keep the derivation static:

* **Full-warp activity** — a masked node still issues in every warp.  This
  matches how the engines count arithmetic (``_issue_warps`` is not
  mask-discounted) but over-counts memory ops on partially-active warps,
  e.g. the weight-staging load whose mask covers ``M * N`` of the block's
  threads.  The error is bounded by ``(warps - active_warps) / warps`` of
  the affected nodes and shows up in the per-kernel bounds below.
* **Unit-stride coalescing** — each global access is assumed to touch
  ``ceil(warp_size * itemsize / line_bytes)`` cache lines per warp.  SSAM
  kernels are coalesced by construction, so this is exact away from edge
  blocks where masked tails shorten the access window.

DRAM *read* bytes are intentionally not derived: they depend on inter-block
working-set overlap (halo sharing), which is runtime data, not trace
structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from ..gpu.architecture import get_architecture
from ..gpu.counters import KernelCounters
from .ir import Trace

#: counter fields whose trace derivation is meaningful to compare against the
#: hand-written model evaluators (DRAM read bytes are runtime-dependent and
#: excluded; ``misc`` is an engine-side modelling knob, not kernel structure)
COMPARED_FIELDS: Tuple[str, ...] = (
    "fma",
    "add",
    "mul",
    "shfl",
    "sync",
    "gmem_load",
    "gmem_store",
    "smem_load",
    "smem_store",
    "smem_broadcast",
    "gmem_load_transactions",
    "gmem_store_transactions",
)

#: documented per-kernel agreement bounds (max relative error per counter
#: field) between trace-derived counts and the ``model_*`` evaluators.
#: Every counter whose bound is ``0.0`` agrees *exactly* — the hand-written
#: Section 5 formula and the traced kernel implementation count the same
#: warp ops.  The three structural divergences, all caused by the static
#: walker's full-warp-activity idealisation on *masked* nodes:
#:
#: * conv2d ``gmem_load``/``gmem_load_transactions`` (<2%) and
#:   ``smem_store`` (1/3): weight staging masks its load+store to
#:   ``M * N`` of the block's threads; the model counts
#:   ``ceil(M * N / warp_size)`` staging warp-ops per block while the
#:   static count charges every warp.  For the 9x9 filter at B=128 that is
#:   4 warps statically vs 3 modelled.
#: * scan ``gmem_store``/``gmem_store_transactions`` (3/5 at B=128): the
#:   block-sums store is masked to one lane of one warp; the model charges
#:   one warp-op per block, the static count ``warps_per_block``.
#: * scan ``add`` (1/9): the final output add is counted once per warp
#:   pass by the trace; the model's ``(stages + warps_per_block)`` per-warp
#:   aggregate folds it into the carry-application term.
#:
#: Bounds are asserted by ``tests/test_trace_counts.py`` for all five SSAM
#: kernels at paper-scale problem sizes (traces recorded on small domains —
#: the per-block profile is grid-independent).
MODEL_AGREEMENT_BOUNDS: Dict[str, Dict[str, float]] = {
    "convolution2d": {
        "fma": 0.0,
        "shfl": 0.0,
        "sync": 0.0,
        "gmem_load": 0.05,
        "gmem_store": 0.0,
        "smem_broadcast": 0.0,
        "smem_store": 0.35,
        "gmem_load_transactions": 0.05,
        "gmem_store_transactions": 0.0,
    },
    "stencil2d": {
        "fma": 0.0,
        "add": 0.0,
        "shfl": 0.0,
        "sync": 0.0,
        "gmem_load": 0.0,
        "gmem_store": 0.0,
        "gmem_load_transactions": 0.0,
        "gmem_store_transactions": 0.0,
    },
    "stencil3d": {
        "fma": 0.0,
        "add": 0.0,
        "shfl": 0.0,
        "sync": 0.0,
        "gmem_load": 0.0,
        "gmem_store": 0.0,
        "smem_load": 0.0,
        "smem_store": 0.0,
        "gmem_load_transactions": 0.0,
        "gmem_store_transactions": 0.0,
    },
    "convolution1d": {
        "fma": 0.0,
        "shfl": 0.0,
        "gmem_load": 0.0,
        "gmem_store": 0.0,
        "gmem_load_transactions": 0.0,
        "gmem_store_transactions": 0.0,
    },
    "scan": {
        "add": 0.12,
        "shfl": 0.0,
        "sync": 0.0,
        "smem_store": 0.0,
        "smem_broadcast": 0.0,
        "gmem_load": 0.0,
        "gmem_store": 0.65,
        "gmem_load_transactions": 0.0,
        "gmem_store_transactions": 0.65,
    },
}


def _lines_per_warp(warp_size: int, itemsize: int, line_bytes: int) -> int:
    """Cache lines one fully-coalesced warp access touches."""
    return max(1, -(-(warp_size * itemsize) // line_bytes))


def block_counts(trace: Trace, architecture: object = "p100"
                 ) -> KernelCounters:
    """Per-block instruction profile derived statically from ``trace``.

    The walk mirrors the engines' accounting exactly for compute nodes
    (arith/shfl/sync/misc issue once per warp regardless of masks) and
    applies the full-warp / unit-stride idealisations documented in the
    module docstring for memory nodes.
    """
    arch = get_architecture(architecture)
    line_bytes = arch.cache_line_bytes
    warps = trace.num_warps
    threads = trace.block_threads
    counters = KernelCounters()
    shared_itemsize: Dict[int, int] = {}

    for node in trace.nodes:
        op = node.op
        params = node.params
        if op == "arith":
            kind = params["kind"]
            if kind == "mad":
                counters.fma += warps
            elif kind == "add":
                counters.add += warps
            else:
                counters.mul += warps
        elif op == "shfl":
            counters.shfl += warps
        elif op == "sync":
            counters.sync += warps
        elif op == "misc":
            counters.misc += params["instructions"] * warps
        elif op == "alloc_shared":
            shared_itemsize[node.id] = int(params["itemsize"])
        elif op == "load_global":
            info = trace.slot_info[params["slot"]]
            itemsize = int(info["itemsize"])
            counters.gmem_load += warps
            counters.gmem_load_transactions += warps * _lines_per_warp(
                trace.warp_size, itemsize, line_bytes)
            counters.cache_read_bytes += float(threads * itemsize)
        elif op == "store_global":
            info = trace.slot_info[params["slot"]]
            itemsize = int(info["itemsize"])
            counters.gmem_store += warps
            counters.gmem_store_transactions += warps * _lines_per_warp(
                trace.warp_size, itemsize, line_bytes)
            if not info.get("cached"):
                counters.dram_write_bytes += float(threads * itemsize)
        elif op == "load_shared":
            itemsize = shared_itemsize.get(params["shared"], 4)
            if params.get("uniform"):
                counters.smem_broadcast += warps
            else:
                counters.smem_load += warps
            counters.smem_read_bytes += float(threads * itemsize)
        elif op == "store_shared":
            itemsize = shared_itemsize.get(params["shared"], 4)
            counters.smem_store += warps
            counters.smem_write_bytes += float(threads * itemsize)
    counters.blocks_executed = 1
    counters.warps_executed = warps
    return counters


def launch_counts(trace: Trace, total_blocks: int,
                  architecture: object = "p100") -> KernelCounters:
    """Whole-launch static counts: :func:`block_counts` x ``total_blocks``.

    A trace is grid-independent (block indices are symbolic inputs), so the
    per-block profile of a trace recorded at *any* problem size scales to
    any launch of the same blocking plan — the paper-scale cross-checks in
    the tests derive from traces recorded on small domains.
    """
    per_block = block_counts(trace, architecture)
    scaled = per_block.scaled(float(total_blocks))
    scaled.blocks_executed = int(total_blocks)
    scaled.warps_executed = int(total_blocks) * trace.num_warps
    return scaled


def relative_errors(derived: KernelCounters, reference: KernelCounters,
                    fields: Iterable[str] = COMPARED_FIELDS
                    ) -> Dict[str, float]:
    """Per-field relative error ``|derived - reference| / reference``.

    Fields where both sides are zero report ``0.0``; a field only one side
    counts reports ``inf`` so a silent drift cannot pass a bound check.
    """
    errors: Dict[str, float] = {}
    for name in fields:
        d = float(getattr(derived, name))
        r = float(getattr(reference, name))
        if d == r:
            errors[name] = 0.0
        elif r == 0.0:
            errors[name] = float("inf")
        else:
            errors[name] = abs(d - r) / abs(r)
    return errors


def check_against_model(derived: KernelCounters, reference: KernelCounters,
                        bounds: Mapping[str, float],
                        label: str = "") -> Dict[str, float]:
    """Assert every bounded field agrees within its documented bound.

    Returns the observed relative errors (for reporting); raises
    ``AssertionError`` naming the first field out of bounds.
    """
    errors = relative_errors(derived, reference, bounds.keys())
    for name, bound in bounds.items():
        observed = errors[name]
        if observed > bound:
            raise AssertionError(
                f"{label or 'trace'}: field {name!r} off by {observed:.4f} "
                f"(bound {bound}): derived={getattr(derived, name)} "
                f"model={getattr(reference, name)}")
    return errors
