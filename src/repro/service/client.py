"""Thin urllib client for the sweep service (no third-party HTTP stack).

The daemon advertises its bound address in ``daemon.json`` next to the
result store, so a client pointed at the same ``--cache-dir`` finds the
service without configuration::

    client = ServiceClient.discover(cache_dir)
    run = client.submit_sweep("tier1")
    status = client.wait(run["run_id"])
    result = client.results(run["run_id"])      # typed ExperimentResult dict

Every method returns the decoded JSON body; HTTP error statuses raise
:class:`~repro.errors.SimulationError` carrying the server's ``error``
message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, List, Mapping, Optional

from ..errors import ConfigurationError, SimulationError

#: seconds between run-status polls in :meth:`ServiceClient.wait`
POLL_SECONDS = 0.1


class ServiceClient:
    """JSON-over-HTTP access to one running sweep service."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)

    @classmethod
    def discover(cls, cache_dir: str, timeout: float = 30.0) -> "ServiceClient":
        """Connect via the ``daemon.json`` endpoint file in ``cache_dir``."""
        from ..experiments.cache import SimulationCache
        from .daemon import endpoint_path

        path = endpoint_path(SimulationCache(cache_dir))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                endpoint = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"no running service advertised at {path!r} ({exc}); start "
                f"one with: ssam-repro --experiment serve --cache-dir "
                f"{cache_dir!r}")
        return cls(endpoint["url"], timeout=timeout)

    # -- transport -------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error")
            except ValueError:
                detail = exc.reason
            raise SimulationError(
                f"{method} {path} failed ({exc.code}): {detail}")
        except urllib.error.URLError as exc:
            raise SimulationError(
                f"cannot reach service at {self.url!r}: {exc.reason}")

    # -- endpoints -------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/health")

    def scenarios(self) -> List[Dict[str, object]]:
        return self._request("GET", "/scenarios")["scenarios"]

    def matrices(self) -> Dict[str, object]:
        return self._request("GET", "/matrices")["matrices"]

    def runs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/runs")["runs"]

    def submit_sweep(self, matrix: "str | Mapping[str, object] | None" = None,
                     priority: int = 0,
                     name: Optional[str] = None) -> Dict[str, object]:
        body: Dict[str, object] = {"priority": priority}
        if matrix is not None:
            body["matrix"] = matrix
        if name is not None:
            body["name"] = name
        return self._request("POST", "/sweeps", body)

    def submit_tune(self, options: Optional[Mapping[str, object]] = None,
                    priority: int = 0,
                    search: Optional[str] = None) -> Dict[str, object]:
        options = dict(options or {})
        if search is not None:
            options["search"] = search
        return self._request("POST", "/tune",
                             {"options": options, "priority": priority})

    def best_config(self, scenario: str, architecture: str, precision: str,
                    size_class: str = "paper") -> Dict[str, object]:
        """One cell's tuned launch configuration (pure store lookup)."""
        return self._request(
            "GET", f"/best_config/{scenario}/{architecture}/{precision}"
                   f"?size_class={urllib.parse.quote(size_class)}")

    def tuned_configs(self) -> Dict[str, object]:
        """Every row of the service's tuning database."""
        return self._request("GET", "/tuned")

    def analysis(self, scenario: str, architecture: str = "p100",
                 precision: str = "float32",
                 size: "str | None" = None) -> Dict[str, object]:
        """One scenario's static-verification report (store-backed)."""
        query = {"architecture": architecture, "precision": precision}
        if size is not None:
            query["size"] = size
        return self._request(
            "GET", f"/analysis/{scenario}?{urllib.parse.urlencode(query)}")

    def analysis_reports(self) -> Dict[str, object]:
        """Summary of every cached static-verification report."""
        return self._request("GET", "/analysis")

    def refresh(self, matrix: "str | Mapping[str, object] | None" = None,
                priority: int = 0) -> Dict[str, object]:
        body: Dict[str, object] = {"priority": priority}
        if matrix is not None:
            body["matrix"] = matrix
        return self._request("POST", "/refresh", body)

    def status(self, run_id: str) -> Dict[str, object]:
        return self._request("GET", f"/runs/{run_id}")

    def results(self, run_id: str) -> Dict[str, object]:
        """The run's typed result dict (raises while still incomplete)."""
        payload = self._request("GET", f"/runs/{run_id}/results")
        if payload.get("status") == "incomplete":
            raise SimulationError(f"run {run_id!r} is still executing")
        return payload

    def cells(self, run_id: str) -> List[Dict[str, object]]:
        """The run's completed cell payloads (decoded NDJSON stream)."""
        request = urllib.request.Request(self.url + f"/runs/{run_id}/cells")
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            text = resp.read().decode("utf-8")
        return [json.loads(line) for line in text.splitlines() if line]

    def wait(self, run_id: str, timeout: float = 600.0) -> Dict[str, object]:
        """Poll until the run is terminal; returns its final status body."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            if status["status"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise SimulationError(
                    f"run {run_id!r} still {status['status']!r} after "
                    f"{timeout:.0f}s")
            time.sleep(POLL_SECONDS)
