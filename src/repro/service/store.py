"""The shared results database: sqlite/WAL, safe under concurrent writers.

The PR-2 directory cache memoised one JSON file per simulation payload.
That layout is atomic per entry but gives no cross-process coordination:
two processes that miss the same key both execute the job, and there is no
way to ask "what do we already know?" without walking the tree.  The
:class:`ResultStore` replaces it with one sqlite database in WAL mode —
many concurrent readers, serialised short write transactions — holding

* **results** — typed payloads addressed by the same 40-hex job-key digest
  the directory cache used (``stable_digest({"code_version", **key})``),
  with the code-version digest also stored as a queryable column so stale
  generations can be found without recomputing keys;
* **claims** — short-lived execution leases that make "exactly one process
  executes each missing job" enforceable (:meth:`claim` /
  :meth:`ResultStore.upsert`); a claim left behind by a killed process
  expires after ``claim_ttl`` seconds and can be taken over;
* **runs** / **run_cells** — checkpointed service runs (sweep/tune
  submissions): the matrix, priority and per-cell status survive a daemon
  restart, so a killed sweep resumes from its completed cells;
* **tuned_configs** (schema v2, space-keyed since v3) — the autotuner's
  winning launch configuration per (scenario, architecture, precision,
  size-class, code-version, design-space) cell, consulted by the planners'
  default-resolution chain (:mod:`repro.core.launch_defaults`) and served
  by the daemon's ``best_config`` endpoint.  The explored design space is
  part of the key, so a ``--quick`` (reduced-space) tune run writes its
  own row instead of clobbering a full-space recommendation; lookups
  serve the best row of a cell (lowest predicted time, larger space and
  freshest write breaking ties).  Within one key, rows are
  last-writer-wins: a re-run of the tuner refreshes the recommendation;
* **analysis_reports** (schema v4) — cached static-verification reports
  per (scenario, architecture, precision, size, code-version) cell,
  written by the analyze experiment and served by the daemon's
  ``/analysis/<scenario>`` endpoint (last-writer-wins, like tuned rows).

Writes are first-writer-wins: :meth:`upsert` inserts with ``ON CONFLICT DO
NOTHING`` inside one transaction, closing the read-modify-write window the
directory cache's lookup-then-store sequence left open (two racing writers
now produce exactly one canonical row, and each learns whether it won).

The schema carries a version number in the ``meta`` table; opening a store
written by a newer build fails loudly, and older on-disk versions upgrade
through :data:`MIGRATIONS`.  Legacy directory-cache trees are imported
once via :meth:`migrate_directory_entries`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from ..errors import ConfigurationError
from ..serialization import canonical_json, jsonify, stable_digest

#: current on-disk schema version (``meta`` table, key ``schema_version``)
STORE_SCHEMA_VERSION = 4

#: length of the hex job-key digest (matches the legacy directory cache)
DIGEST_LENGTH = 40

#: seconds after which an execution claim from a dead process may be
#: taken over by another worker
DEFAULT_CLAIM_TTL = 300.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    digest       TEXT PRIMARY KEY,
    job_key      TEXT,
    code_version TEXT NOT NULL,
    key_json     TEXT NOT NULL,
    payload_json TEXT NOT NULL,
    writer       TEXT NOT NULL,
    created_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS results_job_key ON results(job_key);
CREATE INDEX IF NOT EXISTS results_code_version ON results(code_version);
CREATE TABLE IF NOT EXISTS claims (
    digest      TEXT PRIMARY KEY,
    owner       TEXT NOT NULL,
    acquired_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    name         TEXT,
    matrix_json  TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    status       TEXT NOT NULL,
    code_version TEXT NOT NULL,
    total        INTEGER NOT NULL,
    submitted_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS run_cells (
    run_id TEXT NOT NULL,
    cell   TEXT NOT NULL,
    digest TEXT NOT NULL,
    status TEXT NOT NULL,
    detail TEXT,
    PRIMARY KEY (run_id, cell)
);
"""

#: schema v2 (space-keyed since v3): the tuning database — column names are
#: a read contract with :mod:`repro.core.launch_defaults`, which queries
#: this table read-only
_TUNED_CONFIGS_SCHEMA = """
CREATE TABLE IF NOT EXISTS tuned_configs (
    scenario         TEXT NOT NULL,
    architecture     TEXT NOT NULL,
    precision        TEXT NOT NULL,
    size_class       TEXT NOT NULL,
    code_version     TEXT NOT NULL,
    space_digest     TEXT NOT NULL DEFAULT '',
    space            TEXT,
    space_size       INTEGER NOT NULL DEFAULT 0,
    plan_kwargs      TEXT NOT NULL,
    model_ms         REAL,
    default_model_ms REAL,
    speedup          REAL,
    search           TEXT,
    confirmed        INTEGER,
    tune_digest      TEXT,
    created_at       REAL NOT NULL,
    PRIMARY KEY (scenario, architecture, precision, size_class, code_version,
                 space_digest)
);
"""

#: schema v4: cached static-verification reports per registry cell —
#: written by the analyze experiment / daemon and served by the
#: ``/analysis/<scenario>`` endpoint without re-running the verifier
_ANALYSIS_SCHEMA = """
CREATE TABLE IF NOT EXISTS analysis_reports (
    scenario      TEXT NOT NULL,
    architecture  TEXT NOT NULL,
    precision     TEXT NOT NULL,
    size          TEXT NOT NULL,
    code_version  TEXT NOT NULL,
    ok            INTEGER NOT NULL,
    findings      INTEGER NOT NULL,
    analysis_json TEXT NOT NULL,
    created_at    REAL NOT NULL,
    PRIMARY KEY (scenario, architecture, precision, size, code_version)
);
"""

_SCHEMA += _TUNED_CONFIGS_SCHEMA
_SCHEMA += _ANALYSIS_SCHEMA

#: the non-key payload columns shared by the v3 table and its v2 ancestor,
#: copied verbatim by the rebuild migration
_TUNED_V2_COLUMNS = ("scenario, architecture, precision, size_class,"
                     " code_version, plan_kwargs, model_ms, default_model_ms,"
                     " speedup, search, confirmed, tune_digest, created_at")


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """v1 -> v2: add the ``tuned_configs`` table (idempotent DDL).

    Creates the table in its *current* (v3) shape; the follow-up v2 -> v3
    step detects the space columns and becomes a no-op.
    """
    conn.executescript(_TUNED_CONFIGS_SCHEMA)


def _migrate_v2_to_v3(conn: sqlite3.Connection) -> None:
    """v2 -> v3: key ``tuned_configs`` by explored design space.

    SQLite cannot alter a primary key in place, so the table is rebuilt
    and v2 rows are carried over under the empty space digest (space
    unknown, ``space_size`` 0) — they stay servable but rank below any row
    that records the space it explored.
    """
    columns = {row[1] for row in
               conn.execute("PRAGMA table_info(tuned_configs)")}
    if "space_digest" in columns:
        return
    conn.execute("ALTER TABLE tuned_configs RENAME TO tuned_configs_v2")
    conn.executescript(_TUNED_CONFIGS_SCHEMA)
    conn.execute(f"INSERT INTO tuned_configs({_TUNED_V2_COLUMNS})"
                 f" SELECT {_TUNED_V2_COLUMNS} FROM tuned_configs_v2")
    conn.execute("DROP TABLE tuned_configs_v2")


def _migrate_v3_to_v4(conn: sqlite3.Connection) -> None:
    """v3 -> v4: add the ``analysis_reports`` table (idempotent DDL)."""
    conn.executescript(_ANALYSIS_SCHEMA)


#: in-place schema upgrades, ``{from_version: migrate(connection)}``; each
#: entry upgrades one version step and the opener applies them in sequence
MIGRATIONS: Dict[int, Callable[[sqlite3.Connection], None]] = {
    1: _migrate_v1_to_v2,
    2: _migrate_v2_to_v3,
    3: _migrate_v3_to_v4,
}


def _encode(value: object) -> str:
    """JSON encoding that preserves insertion order.

    Payloads must round-trip through the store byte-identically to a fresh
    computation (warm artifacts are compared against cold ones), so keys
    are *not* sorted here — digests use :func:`canonical_json` instead.
    """
    return json.dumps(jsonify(value), separators=(",", ":"), allow_nan=True)


def _default_code_version() -> str:
    # imported lazily: experiments.cache imports this module at load time
    from ..experiments import cache as cache_mod

    return cache_mod.code_version()


class ResultStore:
    """Job-key-addressed typed results in one sqlite/WAL database.

    Parameters
    ----------
    path:
        The sqlite database file; parent directories are created.
    claim_ttl:
        Seconds before an execution claim is considered abandoned.
    code_version:
        Zero-argument callable returning the current code digest; folded
        into every key digest (late-bound so tests can monkeypatch the
        cache module's ``code_version``).
    """

    def __init__(self, path: str, claim_ttl: float = DEFAULT_CLAIM_TTL,
                 code_version: Optional[Callable[[], str]] = None) -> None:
        self.path = os.path.abspath(path)
        self.claim_ttl = float(claim_ttl)
        self._code_version = code_version or _default_code_version
        self._local = threading.local()
        self._init_lock = threading.Lock()
        self._initialised = False
        self.owner = f"{os.uname().nodename}:{os.getpid()}"

    # -- connections ---------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    def _conn(self) -> sqlite3.Connection:
        """The calling thread's connection (sqlite handles are not shared)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            conn = self._connect()
            self._local.conn = conn
            with self._init_lock:
                if not self._initialised:
                    self._ensure_schema(conn)
                    self._initialised = True
        return conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        conn.executescript(_SCHEMA)
        row = conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'").fetchone()
        if row is None:
            conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES(?, ?)",
                ("schema_version", str(STORE_SCHEMA_VERSION)))
            conn.commit()
            return
        version = int(row["value"])
        if version > STORE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"result store {self.path!r} has schema version {version}, "
                f"newer than this build's {STORE_SCHEMA_VERSION}; refusing "
                f"to open it")
        while version < STORE_SCHEMA_VERSION:
            migrate = MIGRATIONS.get(version)
            if migrate is None:
                raise ConfigurationError(
                    f"no migration from store schema version {version}")
            migrate(conn)
            version += 1
            conn.execute("UPDATE meta SET value=? WHERE key='schema_version'",
                         (str(version),))
            conn.commit()

    def close(self) -> None:
        """Close the calling thread's connection (other threads unaffected)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def schema_version(self) -> int:
        row = self._conn().execute(
            "SELECT value FROM meta WHERE key='schema_version'").fetchone()
        return int(row["value"])

    # -- keys ----------------------------------------------------------------
    def code_version(self) -> str:
        return self._code_version()

    def digest_for(self, key: Mapping[str, object]) -> str:
        """The 40-hex identity of a job key under the current code digest.

        Byte-compatible with the legacy directory cache's file digest, so
        imported legacy entries stay addressable.
        """
        return stable_digest({"code_version": self.code_version(), **key},
                             length=DIGEST_LENGTH)

    # -- results -------------------------------------------------------------
    def get(self, key: Mapping[str, object]) -> Optional[Dict[str, object]]:
        """The stored payload for ``key`` under the current code version."""
        return self.get_by_digest(self.digest_for(key))

    def get_by_digest(self, digest: str) -> Optional[Dict[str, object]]:
        row = self._conn().execute(
            "SELECT payload_json FROM results WHERE digest=?",
            (digest,)).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row["payload_json"])
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def upsert(self, key: Mapping[str, object],
               payload: Mapping[str, object],
               job_key: Optional[str] = None) -> bool:
        """Atomically publish ``payload`` under ``key``; first writer wins.

        Returns ``True`` when this call inserted the row.  A concurrent
        writer that lost the race leaves the existing row untouched and
        gets ``False`` — the read-modify-write window of the directory
        cache's lookup-then-store sequence cannot reappear, because the
        decision happens inside one sqlite transaction.  The writer's
        execution claim (if any) is released in the same transaction.
        """
        digest = self.digest_for(key)
        conn = self._conn()
        with conn:
            cursor = conn.execute(
                "INSERT INTO results(digest, job_key, code_version, key_json,"
                " payload_json, writer, created_at) VALUES(?,?,?,?,?,?,?)"
                " ON CONFLICT(digest) DO NOTHING",
                (digest, job_key, self.code_version(), _encode(key),
                 _encode(payload), self.owner, time.time()))
            conn.execute("DELETE FROM claims WHERE digest=?", (digest,))
        return cursor.rowcount == 1

    def entry_count(self) -> int:
        row = self._conn().execute("SELECT COUNT(*) AS n FROM results").fetchone()
        return int(row["n"])

    def dump(self) -> List[Dict[str, object]]:
        """Every stored result, digest-ordered, without volatile columns.

        The concurrency tests compare the dump of an 8-writer run against
        a serial run — writer identity and timestamps are excluded exactly
        because they are the only columns allowed to differ.
        """
        rows = self._conn().execute(
            "SELECT digest, job_key, code_version, key_json, payload_json "
            "FROM results ORDER BY digest").fetchall()
        return [{"digest": r["digest"], "job_key": r["job_key"],
                 "code_version": r["code_version"],
                 "key": json.loads(r["key_json"]),
                 "payload": json.loads(r["payload_json"])} for r in rows]

    def job_key_versions(self, job_key: str) -> List[str]:
        """Code versions a job key has stored results under (refresh query)."""
        rows = self._conn().execute(
            "SELECT DISTINCT code_version FROM results WHERE job_key=?"
            " ORDER BY code_version", (job_key,)).fetchall()
        return [r["code_version"] for r in rows]

    def stale_entry_count(self) -> int:
        """Entries stored under a code version other than the current one."""
        row = self._conn().execute(
            "SELECT COUNT(*) AS n FROM results WHERE code_version<>?",
            (self.code_version(),)).fetchone()
        return int(row["n"])

    # -- tuned configurations (the tuning database) ---------------------------
    def put_tuned_config(self, scenario: str, architecture: str,
                         precision: str, size_class: str,
                         plan_kwargs: Mapping[str, int],
                         model_ms: Optional[float] = None,
                         default_model_ms: Optional[float] = None,
                         speedup: Optional[float] = None,
                         search: Optional[str] = None,
                         confirmed: Optional[bool] = None,
                         tune_digest: Optional[str] = None,
                         code_version: Optional[str] = None,
                         space: Optional[Mapping[str, object]] = None) -> None:
        """Upsert one cell's tuned configuration (last writer wins per key).

        ``space`` is the explored design space (the grid's ``describe()``
        mapping) and is part of the row key: a quick/reduced-space run and
        a full-space run keep separate rows, so the former can never
        overwrite — and silently degrade — the latter.  Within one key,
        unlike simulation payloads — pure functions of their key, where
        the first writer is canonical — a tuned row is a *recommendation*
        refreshed by every tuner run, so conflicts update in place.
        """
        if space is None:
            space_json, space_digest, space_size = None, "", 0
        else:
            described = {str(k): list(v) for k, v in dict(space).items()}
            space_json = canonical_json(described)
            space_digest = stable_digest(described)
            space_size = 1
            for values in described.values():
                space_size *= max(1, len(values))
        conn = self._conn()
        with conn:
            conn.execute(
                "INSERT INTO tuned_configs(scenario, architecture, precision,"
                " size_class, code_version, space_digest, space, space_size,"
                " plan_kwargs, model_ms,"
                " default_model_ms, speedup, search, confirmed, tune_digest,"
                " created_at) VALUES(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)"
                " ON CONFLICT(scenario, architecture, precision, size_class,"
                " code_version, space_digest)"
                " DO UPDATE SET plan_kwargs=excluded.plan_kwargs,"
                " space=excluded.space, space_size=excluded.space_size,"
                " model_ms=excluded.model_ms,"
                " default_model_ms=excluded.default_model_ms,"
                " speedup=excluded.speedup, search=excluded.search,"
                " confirmed=excluded.confirmed,"
                " tune_digest=excluded.tune_digest,"
                " created_at=excluded.created_at",
                (scenario, architecture, precision, size_class,
                 code_version or self.code_version(),
                 space_digest, space_json, space_size,
                 canonical_json({str(k): int(v)
                                 for k, v in dict(plan_kwargs).items()}),
                 model_ms, default_model_ms, speedup, search,
                 None if confirmed is None else int(bool(confirmed)),
                 tune_digest, time.time()))

    @staticmethod
    def _tuned_row_to_dict(row: sqlite3.Row) -> Dict[str, object]:
        record = dict(row)
        record["plan_kwargs"] = {str(k): int(v) for k, v in
                                 json.loads(record["plan_kwargs"]).items()}
        if record.get("confirmed") is not None:
            record["confirmed"] = bool(record["confirmed"])
        if record.get("space") is not None:
            record["space"] = json.loads(record["space"])
        return record

    def best_config(self, scenario: str, architecture: str, precision: str,
                    size_class: str = "paper",
                    code_version: Optional[str] = None,
                    ) -> Optional[Dict[str, object]]:
        """The tuned configuration of one cell under one code version.

        ``None`` when the cell was never tuned at this (or the current)
        code version — the caller falls back to the paper defaults, exactly
        like the planners' resolution chain.  A cell tuned over several
        design spaces answers with its best row (lowest predicted time,
        larger space and freshest write breaking ties), so a quick re-run
        never shadows a full-space recommendation.
        """
        row = self._conn().execute(
            "SELECT scenario, architecture, precision, size_class,"
            " code_version, space_digest, space, space_size,"
            " plan_kwargs, model_ms, default_model_ms, speedup,"
            " search, confirmed, tune_digest, created_at FROM tuned_configs"
            " WHERE scenario=? AND architecture=? AND precision=?"
            " AND size_class=? AND code_version=?"
            " ORDER BY (model_ms IS NULL), model_ms, space_size DESC,"
            " created_at DESC, space_digest LIMIT 1",
            (scenario, architecture, precision, size_class,
             code_version or self.code_version())).fetchone()
        if row is None:
            return None
        try:
            return self._tuned_row_to_dict(row)
        except (ValueError, TypeError, AttributeError):
            return None

    def list_tuned_configs(self, current_only: bool = False,
                           ) -> List[Dict[str, object]]:
        """Every tuned row, key-ordered; optionally current code version only."""
        query = ("SELECT scenario, architecture, precision, size_class,"
                 " code_version, space_digest, space, space_size,"
                 " plan_kwargs, model_ms, default_model_ms,"
                 " speedup, search, confirmed, tune_digest, created_at"
                 " FROM tuned_configs")
        params: List[object] = []
        if current_only:
            query += " WHERE code_version=?"
            params.append(self.code_version())
        query += (" ORDER BY scenario, architecture, precision, size_class,"
                  " space_digest")
        rows = self._conn().execute(query, params).fetchall()
        out = []
        for row in rows:
            try:
                out.append(self._tuned_row_to_dict(row))
            except (ValueError, TypeError, AttributeError):
                continue
        return out

    def tuned_config_count(self) -> int:
        row = self._conn().execute(
            "SELECT COUNT(*) AS n FROM tuned_configs").fetchone()
        return int(row["n"])

    # -- static-verification reports ------------------------------------------
    def put_analysis_report(self, analysis: Mapping[str, object],
                            code_version: Optional[str] = None) -> None:
        """Cache one scenario's verification outcome (last writer wins).

        ``analysis`` is a :meth:`ScenarioAnalysis.to_dict` mapping; like a
        tuned row it is a refreshable derivative of the code version, not a
        canonical simulation payload, so conflicts update in place.
        """
        conn = self._conn()
        with conn:
            conn.execute(
                "INSERT INTO analysis_reports(scenario, architecture,"
                " precision, size, code_version, ok, findings,"
                " analysis_json, created_at) VALUES(?,?,?,?,?,?,?,?,?)"
                " ON CONFLICT(scenario, architecture, precision, size,"
                " code_version) DO UPDATE SET ok=excluded.ok,"
                " findings=excluded.findings,"
                " analysis_json=excluded.analysis_json,"
                " created_at=excluded.created_at",
                (analysis["scenario"], analysis["architecture"],
                 analysis["precision"], analysis["size"],
                 code_version or self.code_version(),
                 int(bool(analysis.get("ok"))),
                 sum(len(report.get("findings", []))
                     for report in analysis.get("reports", []))
                 + len(analysis.get("fallbacks", [])),
                 _encode(analysis), time.time()))

    def get_analysis_report(self, scenario: str, architecture: str,
                            precision: str = "float32",
                            size: Optional[str] = None,
                            code_version: Optional[str] = None,
                            ) -> Optional[Dict[str, object]]:
        """One cached verification report, freshest matching row.

        ``None`` when the cell was never analyzed at this (or the current)
        code version — the caller recomputes.  Without ``size`` the most
        recently analyzed size answers.
        """
        query = ("SELECT analysis_json FROM analysis_reports"
                 " WHERE scenario=? AND architecture=? AND precision=?"
                 " AND code_version=?")
        params: List[object] = [scenario, architecture, precision,
                                code_version or self.code_version()]
        if size is not None:
            query += " AND size=?"
            params.append(size)
        row = self._conn().execute(
            query + " ORDER BY created_at DESC, size LIMIT 1",
            params).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row["analysis_json"])
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def list_analysis_reports(self, current_only: bool = False,
                              ) -> List[Dict[str, object]]:
        """Summary rows of every cached report, key-ordered."""
        query = ("SELECT scenario, architecture, precision, size,"
                 " code_version, ok, findings, created_at"
                 " FROM analysis_reports")
        params: List[object] = []
        if current_only:
            query += " WHERE code_version=?"
            params.append(self.code_version())
        query += " ORDER BY scenario, architecture, precision, size"
        rows = self._conn().execute(query, params).fetchall()
        out = []
        for row in rows:
            record = dict(row)
            record["ok"] = bool(record["ok"])
            out.append(record)
        return out

    # -- claims (exactly-once execution) --------------------------------------
    def claim(self, key: Mapping[str, object],
              owner: Optional[str] = None) -> bool:
        """Try to acquire the execution lease for ``key``.

        ``True`` means the caller must execute the job and publish the
        payload with :meth:`upsert` (which releases the lease).  ``False``
        means the result already exists or another live process holds the
        lease — the caller should wait for the result to appear.  Leases
        older than ``claim_ttl`` (their owner died) are taken over.
        """
        digest = self.digest_for(key)
        owner = owner or self.owner
        now = time.time()
        conn = self._conn()
        # the result-existence guard rides inside each write statement:
        # a plain SELECT-then-INSERT would run the SELECT in autocommit
        # (python's sqlite3 only opens the transaction at the first write),
        # leaving a window where a concurrent upsert publishes the result
        # and releases its claim between our check and our insert — this
        # process would then claim, and re-execute, a finished job
        with conn:
            cursor = conn.execute(
                "INSERT INTO claims(digest, owner, acquired_at)"
                " SELECT ?, ?, ? WHERE NOT EXISTS"
                " (SELECT 1 FROM results WHERE digest=?)"
                " ON CONFLICT(digest) DO NOTHING",
                (digest, owner, now, digest))
            if cursor.rowcount == 1:
                return True
            cursor = conn.execute(
                "UPDATE claims SET owner=?, acquired_at=?"
                " WHERE digest=? AND acquired_at<? AND NOT EXISTS"
                " (SELECT 1 FROM results WHERE digest=?)",
                (owner, now, digest, now - self.claim_ttl, digest))
            return cursor.rowcount == 1

    def release_claim(self, key: Mapping[str, object],
                      owner: Optional[str] = None) -> None:
        """Drop an execution lease without publishing (worker failed)."""
        conn = self._conn()
        with conn:
            conn.execute("DELETE FROM claims WHERE digest=? AND owner=?",
                         (self.digest_for(key), owner or self.owner))

    def reap_dead_claims(self) -> int:
        """Release claims whose owning process on this host no longer exists.

        Claim owners are recorded as ``host:pid``; a SIGKILLed worker
        cannot release its leases, and without reaping, waiters would sit
        out the full ``claim_ttl`` before taking over.  Owners on other
        hosts are left to the TTL (their liveness is unknowable here).
        Returns the number of leases released.
        """
        node = os.uname().nodename
        conn = self._conn()
        rows = conn.execute("SELECT digest, owner FROM claims").fetchall()
        reaped = 0
        for row in rows:
            host, _, pid_text = row["owner"].rpartition(":")
            if host != node or not pid_text.isdigit():
                continue
            try:
                os.kill(int(pid_text), 0)
                continue  # alive (or at least present)
            except ProcessLookupError:
                pass
            except OSError:
                continue  # exists but not ours to signal
            with conn:
                cursor = conn.execute(
                    "DELETE FROM claims WHERE digest=? AND owner=?",
                    (row["digest"], row["owner"]))
            reaped += cursor.rowcount
        return reaped

    def claim_count(self) -> int:
        row = self._conn().execute("SELECT COUNT(*) AS n FROM claims").fetchone()
        return int(row["n"])

    # -- runs (checkpointed service submissions) ------------------------------
    def next_run_ordinal(self) -> int:
        row = self._conn().execute("SELECT COUNT(*) AS n FROM runs").fetchone()
        return int(row["n"]) + 1

    def create_run(self, run_id: str, kind: str, matrix: Mapping[str, object],
                   cells: Mapping[str, str], priority: int = 0,
                   name: Optional[str] = None,
                   cell_status: Optional[Mapping[str, str]] = None) -> None:
        """Checkpoint a new run and its per-cell ledger in one transaction."""
        conn = self._conn()
        statuses = cell_status or {}
        with conn:
            conn.execute(
                "INSERT INTO runs(run_id, kind, name, matrix_json, priority,"
                " status, code_version, total, submitted_at)"
                " VALUES(?,?,?,?,?,?,?,?,?)",
                (run_id, kind, name, canonical_json(matrix), int(priority),
                 "queued", self.code_version(), len(cells), time.time()))
            conn.executemany(
                "INSERT INTO run_cells(run_id, cell, digest, status)"
                " VALUES(?,?,?,?)",
                [(run_id, cell, digest, statuses.get(cell, "pending"))
                 for cell, digest in cells.items()])

    def add_run_cells(self, run_id: str, cells: Mapping[str, str],
                      status: str = "pending") -> None:
        """Append cells to an existing run's ledger (tune stages register
        their design points as they are generated).  Idempotent per cell —
        a resumed tune run re-registers the same cells harmlessly — and the
        run's ``total`` tracks the ledger size."""
        conn = self._conn()
        with conn:
            conn.executemany(
                "INSERT INTO run_cells(run_id, cell, digest, status)"
                " VALUES(?,?,?,?) ON CONFLICT(run_id, cell) DO NOTHING",
                [(run_id, cell, digest, status)
                 for cell, digest in cells.items()])
            conn.execute(
                "UPDATE runs SET total=(SELECT COUNT(*) FROM run_cells"
                " WHERE run_id=?) WHERE run_id=?", (run_id, run_id))

    def run_record(self, run_id: str) -> Dict[str, object]:
        row = self._conn().execute(
            "SELECT * FROM runs WHERE run_id=?", (run_id,)).fetchone()
        if row is None:
            raise ConfigurationError(f"unknown run {run_id!r}")
        record = dict(row)
        record["matrix"] = json.loads(record.pop("matrix_json"))
        return record

    def list_runs(self, status: Optional[Iterable[str]] = None
                  ) -> List[Dict[str, object]]:
        rows = self._conn().execute(
            "SELECT run_id, kind, name, priority, status, total,"
            " submitted_at, code_version FROM runs"
            " ORDER BY submitted_at, run_id").fetchall()
        records = [dict(r) for r in rows]
        if status is not None:
            wanted = set(status)
            records = [r for r in records if r["status"] in wanted]
        return records

    def set_run_status(self, run_id: str, status: str) -> None:
        conn = self._conn()
        with conn:
            conn.execute("UPDATE runs SET status=? WHERE run_id=?",
                         (status, run_id))

    def set_cell_status(self, run_id: str, cell: str, status: str,
                        detail: Optional[str] = None) -> None:
        conn = self._conn()
        with conn:
            conn.execute(
                "UPDATE run_cells SET status=?, detail=?"
                " WHERE run_id=? AND cell=?", (status, detail, run_id, cell))

    def run_cells(self, run_id: str,
                  status: Optional[str] = None) -> List[Dict[str, object]]:
        query = ("SELECT cell, digest, status, detail FROM run_cells"
                 " WHERE run_id=?")
        params: List[object] = [run_id]
        if status is not None:
            query += " AND status=?"
            params.append(status)
        rows = self._conn().execute(query + " ORDER BY cell", params).fetchall()
        return [dict(r) for r in rows]

    def run_progress(self, run_id: str) -> Dict[str, int]:
        """Per-status cell counts of one run (the status endpoint's body)."""
        rows = self._conn().execute(
            "SELECT status, COUNT(*) AS n FROM run_cells WHERE run_id=?"
            " GROUP BY status", (run_id,)).fetchall()
        counts = {r["status"]: int(r["n"]) for r in rows}
        counts["total"] = sum(counts.values())
        return counts

    # -- legacy migration ------------------------------------------------------
    def migrate_directory_entries(self, directory: str) -> int:
        """Import a legacy PR-2 directory-cache tree (one JSON per entry).

        Each legacy file is named by the same key digest this store
        computes, so entries keep their identity: a key that hit the
        directory cache hits the store after migration, and two distinct
        keys can never merge into one row (their digests differ).  The
        legacy entry body does not record which code version produced it,
        so the column is left empty — such rows are served normally (the
        digest already pins the code version) but count as stale for
        refresh queries.  Returns the number of rows imported; the scan is
        idempotent (existing digests win).
        """
        imported = 0
        if not os.path.isdir(directory):
            return imported
        conn = self._conn()
        for dirpath, dirnames, filenames in os.walk(directory):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        entry = json.load(handle)
                except (OSError, ValueError):
                    continue
                if not isinstance(entry, dict):
                    continue
                key = entry.get("key")
                payload = entry.get("payload")
                if not isinstance(key, dict) or not isinstance(payload, dict):
                    continue
                digest = os.path.splitext(filename)[0]
                with conn:
                    cursor = conn.execute(
                        "INSERT INTO results(digest, job_key, code_version,"
                        " key_json, payload_json, writer, created_at)"
                        " VALUES(?,?,?,?,?,?,?) ON CONFLICT(digest) DO NOTHING",
                        (digest, None, "", _encode(key),
                         _encode(payload), "legacy-import", time.time()))
                imported += cursor.rowcount
        return imported
