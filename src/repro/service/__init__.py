"""Sweep-as-a-service: shared result store, job daemon, thin client.

* :mod:`repro.service.store` — the concurrency-safe sqlite/WAL results
  database every cache-backed execution goes through;
* :mod:`repro.service.queue` — the priority-ordered worker pool;
* :mod:`repro.service.daemon` — the long-running HTTP/JSON service
  (``ssam-repro --experiment serve``);
* :mod:`repro.service.client` — the urllib client behind
  ``ssam-repro submit``.

The store is imported eagerly (the cache layer builds on it); the daemon
and client stay lazy so plain batch runs never pay for the HTTP stack.
"""

from .store import DEFAULT_CLAIM_TTL, DIGEST_LENGTH, STORE_SCHEMA_VERSION, ResultStore

__all__ = [
    "DEFAULT_CLAIM_TTL",
    "DIGEST_LENGTH",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
]
