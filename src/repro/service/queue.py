"""Priority-ordered execution of service cells on a sharded worker pool.

The daemon decomposes every submission into the same
:class:`~repro.experiments.jobs.SimulationJob` cells the batch CLI runs;
this module owns the queue between the HTTP layer and those cells.  Items
are ordered by ``(priority, submission sequence)`` — lower priority values
run first, ties run in submission order — and each worker drains the queue
through :func:`repro.experiments.parallel.execute_jobs` with the shared
store-backed cache, so queued cells get the same claim/dedup/exactly-once
guarantees as any concurrent CLI sweep.

Worker threads optionally shard execution across a ``ProcessPoolExecutor``
(``processes=True``): the thread keeps the claim/store-back bookkeeping in
the daemon process while the simulation itself runs in a worker process,
which is how the daemon saturates multiple cores under heavy traffic.
"""

from __future__ import annotations

import itertools
import queue
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..experiments.cache import SimulationCache
from ..experiments.jobs import SimulationJob, execute_job
from ..experiments.parallel import execute_jobs

#: cell completion callback: (run_id, cell, status, detail)
CellCallback = Callable[[str, str, str, Optional[str]], None]


@dataclass(order=True)
class _Item:
    priority: int
    sequence: int
    run_id: str = field(compare=False)
    cell: str = field(compare=False)
    job: Optional[SimulationJob] = field(compare=False, default=None)


class WorkerPool:
    """Fixed set of worker threads draining a priority queue of cells.

    Parameters
    ----------
    cache:
        The shared store-backed cache every execution goes through.
    threads:
        Worker thread count (the queue's degree of parallelism).
    processes:
        When true, each cell's simulation runs in a shared
        ``ProcessPoolExecutor`` (one slot per worker thread) instead of
        inline in the thread — full multi-core sharding for CPU-bound
        kernels at the cost of pickling the job across the boundary.
    on_cell:
        Completion callback invoked from the worker thread with
        ``(run_id, cell, status, detail)``; status is ``"done"`` or
        ``"failed"``.
    """

    def __init__(self, cache: SimulationCache, threads: int = 2,
                 processes: bool = False,
                 on_cell: Optional[CellCallback] = None) -> None:
        self.cache = cache
        self.on_cell = on_cell
        self._queue: "queue.PriorityQueue[_Item]" = queue.PriorityQueue()
        self._sequence = itertools.count()
        self._pool = (ProcessPoolExecutor(max_workers=max(1, threads))
                      if processes else None)
        self._stopping = False
        self._inflight = 0
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, name=f"ssam-worker-{i}",
                             daemon=True)
            for i in range(max(1, threads))]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------------
    def submit(self, run_id: str, cell: str, job: SimulationJob,
               priority: int = 0) -> None:
        """Queue one cell; lower ``priority`` values execute first."""
        self._queue.put(_Item(int(priority), next(self._sequence),
                              run_id, cell, job))

    def pending(self) -> int:
        """Cells queued or executing right now (an instantaneous snapshot)."""
        with self._lock:
            return self._queue.qsize() + self._inflight

    # -- execution ------------------------------------------------------------
    def _run_one(self, job: SimulationJob) -> None:
        if self._pool is not None:
            def runner(jobs):
                return [self._pool.submit(execute_job, j).result()
                        for j in jobs]
        else:
            runner = None
        execute_jobs([job], workers=1, cache=self.cache, runner=runner)

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item.job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            with self._lock:
                self._inflight += 1
            status, detail = "done", None
            try:
                self._run_one(item.job)
            except Exception as exc:  # cell failures never kill the worker
                status, detail = "failed", f"{type(exc).__name__}: {exc}"
            finally:
                with self._lock:
                    self._inflight -= 1
                self._queue.task_done()
            if self.on_cell is not None:
                self.on_cell(item.run_id, item.cell, status, detail)

    # -- lifecycle ------------------------------------------------------------
    def drain(self) -> None:
        """Block until every queued cell has been executed."""
        self._queue.join()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers (queued-but-unstarted cells stay in the store's
        run ledger as pending, so a restarted daemon resumes them)."""
        if self._stopping:
            return
        self._stopping = True
        for _ in self._threads:
            self._queue.put(_Item(-(2 ** 30), next(self._sequence), "", ""))
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
