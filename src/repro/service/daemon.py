"""Sweep-as-a-service: the long-running HTTP/JSON daemon.

The batch CLI (``ssam-repro --experiment sweep``) runs one matrix and
exits; this module keeps the scenario registry, the sweep engine and the
launch-config autotuner resident behind a small HTTP/JSON API so many
clients can share one simulation backbone::

    ssam-repro --experiment serve --cache-dir /var/ssam   # start the daemon
    ssam-repro submit --matrix tier1 --wait               # submit + stream

Every submission is checkpointed in the shared result store before any
cell executes: the matrix, priority and a per-cell ledger survive a
``SIGKILL`` of the daemon, and a restarted daemon resumes exactly the
cells that have no stored payload yet (completed cells are never re-run —
the artifact of a killed-and-resumed sweep is byte-identical to an
uninterrupted one).  Cells execute on a priority-ordered worker pool
through the same claim/dedup path as CLI runs, so a submission whose
results already exist is answered entirely from the store.

Endpoints (all JSON)::

    GET  /health                     liveness + store/queue stats
    GET  /scenarios                  the scenario registry, as data
    GET  /matrices                   named sweep matrix presets
    POST /sweeps                     {"matrix": ..., "priority": ..., "name": ...}
    POST /tune                       {"quick": ..., "priority": ...}
    POST /refresh                    like /sweeps, but reports which cells a
                                     code-digest change invalidated
    GET  /runs                       all checkpointed runs
    GET  /runs/<id>                  status + per-state cell counts
    GET  /runs/<id>/results          the typed ExperimentResult (202 while
                                     cells are still executing)
    GET  /runs/<id>/cells            NDJSON stream of completed cell payloads
    GET  /tuned                      every row of the tuning database
    GET  /best_config/<scenario>/<arch>/<precision>[?size_class=paper]
                                     the tuned launch configuration of one
                                     cell (sqlite lookup, no simulation);
                                     falls back to the paper defaults with
                                     "source": "paper" when nothing is tuned
    GET  /analysis                   summary of every cached static-
                                     verification report
    GET  /analysis/<scenario>[?architecture=p100&precision=float32&size=]
                                     the scenario's static-verification
                                     report: served from the store under
                                     the current code version, else
                                     computed in-process and persisted
"""

from __future__ import annotations

import json
import os
import re
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..experiments.cache import SimulationCache
from ..experiments.jobs import SimulationJob
from ..experiments.results import ExperimentResult
from ..serialization import stable_digest
from .queue import WorkerPool

#: statuses a run can be in; terminal ones never change again
RUN_ACTIVE = ("queued", "running")
RUN_TERMINAL = ("done", "failed")

#: cell ledger states: "cached" was served from the store at submit time,
#: "pending" is queued or executing, "done"/"failed" are terminal
CELL_TERMINAL = ("cached", "done", "failed")

#: filename of the endpoint advertisement inside the cache directory
ENDPOINT_FILENAME = "daemon.json"


def _sweep_module():
    """Lazy: importing the sweep engine loads every kernel and baseline."""
    from ..scenarios import sweep

    return sweep


class SweepService:
    """The service core: submissions, checkpointed runs, resume.

    Owns no sockets — the HTTP layer below is a thin translation onto this
    class, and tests drive it directly.
    """

    def __init__(self, cache: SimulationCache, threads: int = 2,
                 processes: bool = False) -> None:
        self.cache = cache
        self.store = cache.result_store()
        self.pool = WorkerPool(cache, threads=threads, processes=processes,
                               on_cell=self._cell_finished)
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)

    # -- registry views -------------------------------------------------------
    def scenario_index(self) -> List[Dict[str, object]]:
        from ..scenarios import builtin as _builtin  # noqa: F401 (register)
        from ..scenarios.registry import all_scenarios

        return [{
            "name": s.name, "family": s.family, "role": s.role,
            "dims": s.dims, "description": s.description,
            "sizes": sorted(s.sizes), "architectures": list(s.architectures),
            "precisions": list(s.precisions), "engines": list(s.engines),
            "tunables": list(s.tunables),
        } for s in all_scenarios()]

    def matrix_presets(self) -> Dict[str, object]:
        return dict(_sweep_module().MATRICES)

    # -- submissions ----------------------------------------------------------
    def _sweep_jobs(self, matrix: Mapping[str, object]) -> List[SimulationJob]:
        return _sweep_module().jobs(matrix)

    def _new_run_id(self, kind: str, matrix: Mapping[str, object]) -> str:
        ordinal = self.store.next_run_ordinal()
        digest = stable_digest(matrix, length=8)
        run_id = f"{kind}-{ordinal:04d}-{digest}"
        existing = {r["run_id"] for r in self.store.list_runs()}
        while run_id in existing:  # ordinal races with deleted/parallel runs
            ordinal += 1
            run_id = f"{kind}-{ordinal:04d}-{digest}"
        return run_id

    def submit_sweep(self, matrix: "str | Mapping[str, object] | None",
                     priority: int = 0, name: Optional[str] = None,
                     refresh: bool = False) -> Dict[str, object]:
        """Checkpoint a sweep run, dedup against the store, queue the rest.

        With ``refresh=True`` the response additionally classifies every
        cell: ``fresh`` cells have a payload under the current code digest,
        ``invalidated`` cells only have one from an older code state (they
        re-run), ``missing`` cells were never computed.
        """
        sweep = _sweep_module()
        resolved = sweep.load_matrix(matrix)
        jobs = self._sweep_jobs(resolved)
        current = self.store.code_version()
        cells: Dict[str, str] = {}
        statuses: Dict[str, str] = {}
        queued: List[SimulationJob] = []
        classes = {"fresh": 0, "invalidated": 0, "missing": 0}
        for job in jobs:
            cells[job.key] = self.store.digest_for(job.cache_key())
            if self.cache.peek(job.cache_key()) is not None:
                statuses[job.key] = "cached"
                classes["fresh"] += 1
            else:
                statuses[job.key] = "pending"
                queued.append(job)
                versions = self.store.job_key_versions(job.key)
                if any(v != current for v in versions):
                    classes["invalidated"] += 1
                else:
                    classes["missing"] += 1
        run_id = self._new_run_id("sweep", resolved)
        self.store.create_run(run_id, "sweep", resolved, cells,
                              priority=priority, name=name,
                              cell_status=statuses)
        if queued:
            self.store.set_run_status(run_id, "running")
            for job in queued:
                self.pool.submit(run_id, job.key, job, priority=priority)
        else:
            self.store.set_run_status(run_id, "done")
        response: Dict[str, object] = {
            "run_id": run_id, "kind": "sweep",
            "matrix": resolved.get("name", "custom"),
            "status": "done" if not queued else "running",
            "total": len(jobs), "cached": len(jobs) - len(queued),
            "queued": len(queued), "priority": int(priority),
        }
        if refresh:
            response["refresh"] = classes
        return response

    def submit_tune(self, options: Optional[Mapping[str, object]] = None,
                    priority: int = 0) -> Dict[str, object]:
        """Queue a launch-config tuning study as a checkpointed run.

        The tuner's two stages run in a background thread; every design
        point they evaluate is routed through the service worker pool at
        the run's priority, registered in the run's cell ledger, and
        deduped against the store like any sweep cell.
        """
        options = dict(options or {})
        run_id = self._new_run_id("tune", options)
        self.store.create_run(run_id, "tune", options, {}, priority=priority,
                              name=options.get("name"))
        self.store.set_run_status(run_id, "running")
        thread = threading.Thread(
            target=self._run_tune, args=(run_id, options, int(priority)),
            name=f"ssam-tune-{run_id}", daemon=True)
        thread.start()
        return {"run_id": run_id, "kind": "tune", "status": "running",
                "priority": int(priority), "options": options}

    def _run_tune(self, run_id: str, options: Mapping[str, object],
                  priority: int) -> None:
        from ..tuning import run_tuning

        def executor(jobs, workers=1, cache=None):
            return self._pooled_execute(run_id, jobs, priority)

        try:
            result = run_tuning(
                quick=bool(options.get("quick", False)),
                scenarios=options.get("scenarios"),
                architectures=options.get("architectures"),
                precisions=options.get("precisions"),
                confirm=bool(options.get("confirm", True)),
                confirm_engine=options.get("confirm_engine", "batched"),
                search=options.get("search", "exhaustive"),
                cache=self.cache, executor=executor)
            self.store.upsert(self._artifact_key(run_id), result.to_dict(),
                              job_key=f"service-artifact:{run_id}")
            self.store.set_run_status(run_id, "done")
        except Exception as exc:
            self.store.set_run_status(run_id, "failed")
            self.store.set_cell_status(run_id, "tune", "failed",
                                       f"{type(exc).__name__}: {exc}")
        with self._done:
            self._done.notify_all()

    def _artifact_key(self, run_id: str) -> Dict[str, object]:
        return {"service": "artifact", "run": run_id}

    def _pooled_execute(self, run_id: str, jobs, priority: int
                        ) -> Dict[str, Dict[str, object]]:
        """Route one executor batch through the worker pool and wait.

        This is the ``executor`` hook :func:`repro.tuning.run_tuning`
        accepts: cells register in the run's ledger (checkpointed), queue
        at the run's priority, and the calling thread blocks until each has
        a stored payload or a failure.
        """
        jobs = list(jobs)
        cells = {job.key: self.store.digest_for(job.cache_key())
                 for job in jobs}
        self.store.add_run_cells(run_id, cells)
        payloads: Dict[str, Dict[str, object]] = {}
        queued = []
        for job in jobs:
            payload = self.cache.peek(job.cache_key())
            if payload is not None:
                payloads[job.key] = payload
                self.store.set_cell_status(run_id, job.key, "cached")
            else:
                self.pool.submit(run_id, job.key, job, priority=priority)
                queued.append(job)
        for job in queued:
            payload = self._wait_for_cell(run_id, job)
            payloads[job.key] = payload
        return payloads

    def _wait_for_cell(self, run_id: str, job: SimulationJob,
                       timeout: float = 600.0) -> Dict[str, object]:
        with self._done:
            def ready() -> bool:
                cell = self.store.run_cells(run_id)
                states = {c["cell"]: c for c in cell}
                return states.get(job.key, {}).get("status") in CELL_TERMINAL

            if not self._done.wait_for(ready, timeout=timeout):
                raise SimulationError(
                    f"timed out waiting for cell {job.key!r} of {run_id!r}")
        payload = self.cache.peek(job.cache_key())
        if payload is None:
            states = {c["cell"]: c for c in self.store.run_cells(run_id)}
            detail = states.get(job.key, {}).get("detail")
            raise SimulationError(
                f"cell {job.key!r} of {run_id!r} failed: {detail}")
        return payload

    # -- completion bookkeeping ----------------------------------------------
    def _cell_finished(self, run_id: str, cell: str, status: str,
                       detail: Optional[str]) -> None:
        self.store.set_cell_status(run_id, cell, status, detail)
        record = self.store.run_record(run_id)
        if record["kind"] == "sweep":
            progress = self.store.run_progress(run_id)
            remaining = progress.get("pending", 0) + progress.get("running", 0)
            if remaining == 0:
                final = "failed" if progress.get("failed", 0) else "done"
                self.store.set_run_status(run_id, final)
        with self._done:
            self._done.notify_all()

    # -- queries ---------------------------------------------------------------
    def run_status(self, run_id: str) -> Dict[str, object]:
        record = self.store.run_record(run_id)
        progress = self.store.run_progress(run_id)
        failed = [c for c in self.store.run_cells(run_id, status="failed")]
        out = {
            "run_id": run_id, "kind": record["kind"],
            "name": record["name"], "status": record["status"],
            "priority": record["priority"], "total": record["total"],
            "cells": progress,
            "code_version": record["code_version"],
        }
        if failed:
            out["failures"] = [{"cell": c["cell"], "detail": c["detail"]}
                               for c in failed]
        return out

    def run_results(self, run_id: str) -> Optional[ExperimentResult]:
        """The typed result of a finished run (``None`` while incomplete)."""
        record = self.store.run_record(run_id)
        if record["status"] not in RUN_TERMINAL:
            return None
        if record["status"] == "failed":
            raise SimulationError(f"run {run_id!r} failed; no result")
        if record["kind"] == "tune":
            payload = self.store.get(self._artifact_key(run_id))
            if payload is None:
                return None
            return ExperimentResult.from_dict(payload)
        sweep = _sweep_module()
        matrix = record["matrix"]
        payloads, missing = sweep.collect_payloads(matrix, self.cache)
        if missing:
            return None
        return sweep.assemble(payloads, matrix)

    def iter_cell_payloads(self, run_id: str):
        """Completed cell payloads of a sweep run, in matrix order."""
        record = self.store.run_record(run_id)
        if record["kind"] != "sweep":
            raise ConfigurationError(
                f"run {run_id!r} is a {record['kind']!r} run; cell payloads "
                f"exist for sweep runs only")
        payloads, _ = _sweep_module().collect_payloads(record["matrix"],
                                                       self.cache)
        for cell, payload in payloads.items():
            yield {"cell": cell, "payload": payload}

    def wait_for_run(self, run_id: str, timeout: float = 600.0) -> str:
        """Block until a run reaches a terminal status; returns the status."""
        with self._done:
            def ready() -> bool:
                return (self.store.run_record(run_id)["status"]
                        in RUN_TERMINAL)

            if not self._done.wait_for(ready, timeout=timeout):
                raise SimulationError(f"timed out waiting for run {run_id!r}")
        return self.store.run_record(run_id)["status"]

    # -- resume ----------------------------------------------------------------
    def resume_pending(self) -> List[str]:
        """Re-queue the unfinished cells of every non-terminal run.

        Called at daemon startup.  Cells whose payload meanwhile exists in
        the store (completed before the crash, or computed by someone else)
        are marked done without re-execution — this is what makes a
        killed-and-restarted sweep produce the exact artifact of an
        uninterrupted run: the already-completed cells are never simulated
        twice.
        """
        self.store.reap_dead_claims()
        resumed: List[str] = []
        for record in self.store.list_runs(status=RUN_ACTIVE):
            run_id = record["run_id"]
            full = self.store.run_record(run_id)
            if full["kind"] == "tune":
                self.submit_tune_resume(run_id, full)
                resumed.append(run_id)
                continue
            jobs = {job.key: job for job in self._sweep_jobs(full["matrix"])}
            requeued = 0
            for cell in self.store.run_cells(run_id):
                if cell["status"] in CELL_TERMINAL:
                    continue
                job = jobs.get(cell["cell"])
                if job is None:  # matrix definition changed underneath us
                    self.store.set_cell_status(run_id, cell["cell"], "failed",
                                               "cell no longer in matrix")
                    continue
                if self.cache.peek(job.cache_key()) is not None:
                    self.store.set_cell_status(run_id, cell["cell"], "done")
                    continue
                self.pool.submit(run_id, cell["cell"], job,
                                 priority=full["priority"])
                requeued += 1
            if requeued == 0:
                progress = self.store.run_progress(run_id)
                final = "failed" if progress.get("failed", 0) else "done"
                self.store.set_run_status(run_id, final)
            else:
                self.store.set_run_status(run_id, "running")
            resumed.append(run_id)
        return resumed

    def submit_tune_resume(self, run_id: str,
                           record: Mapping[str, object]) -> None:
        """Restart an interrupted tune run (cached stages replay instantly)."""
        options = record["matrix"]
        thread = threading.Thread(
            target=self._run_tune,
            args=(run_id, options, int(record["priority"])),
            name=f"ssam-tune-{run_id}", daemon=True)
        thread.start()

    # -- tuning database -------------------------------------------------------
    def best_config(self, scenario: str, architecture: str, precision: str,
                    size_class: str = "paper") -> Dict[str, object]:
        """One cell's tuned launch configuration — a pure sqlite lookup.

        Answers in microseconds from the ``tuned_configs`` table; no
        simulation, no planning.  When the cell has no tuned row under the
        current code version the response carries the paper defaults with
        ``"source": "paper"`` — the same fallback the planners' resolution
        chain applies.
        """
        from ..core.launch_defaults import PAPER_LAUNCH_DEFAULTS

        found = self.store.best_config(scenario, architecture, precision,
                                       size_class)
        response: Dict[str, object] = {
            "scenario": scenario, "architecture": architecture,
            "precision": precision, "size_class": size_class,
            "code_version": self.store.code_version(),
            "source": "tuned" if found else "paper",
            "plan_kwargs": (dict(found["plan_kwargs"]) if found
                            else dict(PAPER_LAUNCH_DEFAULTS)),
        }
        if found:
            response["tuned"] = {
                key: found.get(key)
                for key in ("model_ms", "default_model_ms", "speedup",
                            "search", "confirmed", "tune_digest",
                            "space", "space_size", "created_at")}
        return response

    def tuned_index(self) -> Dict[str, object]:
        """Every row of the tuning database (all code versions)."""
        rows = self.store.list_tuned_configs()
        return {"tuned_configs": rows, "count": len(rows),
                "code_version": self.store.code_version()}

    # -- static verification ----------------------------------------------------
    def analysis(self, scenario: str, architecture: str = "p100",
                 precision: str = "float32",
                 size: Optional[str] = None) -> Dict[str, object]:
        """One scenario's static-verification report, store-backed.

        A report cached under the current code version answers directly
        (``"source": "store"``); otherwise the verifier runs in-process —
        tiny-size trace capture plus pure front-end analysis — and the
        fresh report is persisted for the next caller
        (``"source": "computed"``).
        """
        cached = self.store.get_analysis_report(scenario, architecture,
                                                precision, size=size)
        if cached is not None:
            return {"source": "store",
                    "code_version": self.store.code_version(),
                    "analysis": cached}
        from ..analysis.scenario import analyze_scenario

        _sweep_module()  # populate the scenario registry
        analysis = analyze_scenario(scenario, architecture=architecture,
                                    precision=precision, size=size)
        payload = analysis.to_dict()
        self.store.put_analysis_report(payload)
        return {"source": "computed",
                "code_version": self.store.code_version(),
                "analysis": payload}

    def analysis_index(self) -> Dict[str, object]:
        """Summary of every cached verification report."""
        rows = self.store.list_analysis_reports()
        return {"analysis_reports": rows, "count": len(rows),
                "code_version": self.store.code_version()}

    # -- lifecycle --------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "store": {"path": self.store.path,
                      "entries": self.store.entry_count(),
                      "claims": self.store.claim_count(),
                      "stale_entries": self.store.stale_entry_count()},
            "cache": self.cache.stats(),
            "queue": {"pending": self.pool.pending()},
            "runs": {status: len(self.store.list_runs(status=[status]))
                     for status in RUN_ACTIVE + RUN_TERMINAL},
        }

    def shutdown(self) -> None:
        self.pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

_ROUTES = {
    "health": re.compile(r"^/health/?$"),
    "scenarios": re.compile(r"^/scenarios/?$"),
    "matrices": re.compile(r"^/matrices/?$"),
    "runs": re.compile(r"^/runs/?$"),
    "run": re.compile(r"^/runs/(?P<run_id>[\w.:-]+)/?$"),
    "results": re.compile(r"^/runs/(?P<run_id>[\w.:-]+)/results/?$"),
    "cells": re.compile(r"^/runs/(?P<run_id>[\w.:-]+)/cells/?$"),
    "sweeps": re.compile(r"^/sweeps/?$"),
    "tune": re.compile(r"^/tune/?$"),
    "refresh": re.compile(r"^/refresh/?$"),
    "tuned": re.compile(r"^/tuned/?$"),
    "best_config": re.compile(
        r"^/best_config/(?P<scenario>[\w.:-]+)/(?P<architecture>[\w.:-]+)"
        r"/(?P<precision>[\w.:-]+)/?$"),
    "analysis_index": re.compile(r"^/analysis/?$"),
    "analysis": re.compile(r"^/analysis/(?P<scenario>[\w.:-]+)/?$"),
}


class ServiceHandler(BaseHTTPRequestHandler):
    """Thin JSON translation onto the owning server's :class:`SweepService`."""

    server_version = "ssam-repro-service"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------------
    def _send_json(self, payload: object, status: int = 200) -> None:
        body = json.dumps(payload, indent=2).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        try:
            parsed = json.loads(self.rfile.read(length).decode("utf-8"))
        except ValueError as exc:
            raise ConfigurationError(f"request body is not JSON: {exc}")
        if not isinstance(parsed, dict):
            raise ConfigurationError("request body must be a JSON object")
        return parsed

    def _match(self, path: str) -> Tuple[Optional[str], Dict[str, str]]:
        path = path.split("?", 1)[0]
        for name, pattern in _ROUTES.items():
            found = pattern.match(path)
            if found:
                return name, found.groupdict()
        return None, {}

    def _guarded(self, fn) -> None:
        try:
            fn()
        except ConfigurationError as exc:
            self._send_json({"error": str(exc)}, status=400)
        except SimulationError as exc:
            self._send_json({"error": str(exc)}, status=500)

    # -- GET -------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        route, params = self._match(self.path)
        if route == "health":
            self._guarded(lambda: self._send_json({
                "status": "ok",
                "code_version": self.service.store.code_version(),
                **self.service.stats()}))
        elif route == "scenarios":
            self._guarded(lambda: self._send_json(
                {"scenarios": self.service.scenario_index()}))
        elif route == "matrices":
            self._guarded(lambda: self._send_json(
                {"matrices": self.service.matrix_presets()}))
        elif route == "runs":
            self._guarded(lambda: self._send_json(
                {"runs": self.service.store.list_runs()}))
        elif route == "run":
            self._guarded(lambda: self._send_json(
                self.service.run_status(params["run_id"])))
        elif route == "results":
            self._guarded(lambda: self._results(params["run_id"]))
        elif route == "cells":
            self._guarded(lambda: self._cells(params["run_id"]))
        elif route == "tuned":
            self._guarded(lambda: self._send_json(self.service.tuned_index()))
        elif route == "best_config":
            self._guarded(lambda: self._best_config(params))
        elif route == "analysis_index":
            self._guarded(
                lambda: self._send_json(self.service.analysis_index()))
        elif route == "analysis":
            self._guarded(lambda: self._analysis(params))
        else:
            self._send_json({"error": f"no such endpoint {self.path!r}"},
                            status=404)

    def _best_config(self, params: Dict[str, str]) -> None:
        query = urllib.parse.parse_qs(
            urllib.parse.urlparse(self.path).query)
        size_class = (query.get("size_class") or ["paper"])[0]
        self._send_json(self.service.best_config(
            params["scenario"], params["architecture"], params["precision"],
            size_class=size_class))

    def _analysis(self, params: Dict[str, str]) -> None:
        query = urllib.parse.parse_qs(
            urllib.parse.urlparse(self.path).query)
        self._send_json(self.service.analysis(
            params["scenario"],
            architecture=(query.get("architecture") or ["p100"])[0],
            precision=(query.get("precision") or ["float32"])[0],
            size=(query.get("size") or [None])[0]))

    def _results(self, run_id: str) -> None:
        result = self.service.run_results(run_id)
        if result is None:
            self._send_json({"run_id": run_id, "status": "incomplete",
                             **self.service.run_status(run_id)}, status=202)
        else:
            self._send_json(result.to_dict())

    def _cells(self, run_id: str) -> None:
        lines = [json.dumps(entry, separators=(",", ":"))
                 for entry in self.service.iter_cell_payloads(run_id)]
        body = ("\n".join(lines) + "\n").encode() if lines else b""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- POST ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        route, _ = self._match(self.path)
        if route == "sweeps":
            self._guarded(lambda: self._submit(refresh=False))
        elif route == "refresh":
            self._guarded(lambda: self._submit(refresh=True))
        elif route == "tune":
            self._guarded(self._tune)
        else:
            self._send_json({"error": f"no such endpoint {self.path!r}"},
                            status=404)

    def _submit(self, refresh: bool) -> None:
        body = self._read_body()
        response = self.service.submit_sweep(
            body.get("matrix"), priority=int(body.get("priority", 0)),
            name=body.get("name"), refresh=refresh)
        self._send_json(response, status=202)

    def _tune(self) -> None:
        body = self._read_body()
        response = self.service.submit_tune(
            body.get("options") or {k: v for k, v in body.items()
                                    if k != "priority"},
            priority=int(body.get("priority", 0)))
        self._send_json(response, status=202)


class ServiceServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SweepService,
                 verbose: bool = False) -> None:
        super().__init__(address, ServiceHandler)
        self.service = service
        self.verbose = verbose


def serve(cache: SimulationCache, host: str = "127.0.0.1", port: int = 0,
          threads: int = 2, processes: bool = False,
          resume: bool = True, verbose: bool = False
          ) -> Tuple[ServiceServer, SweepService]:
    """Bind the service (without entering the serve loop) and resume runs.

    Returns the server (``server.server_address`` carries the actual port
    when ``port=0``) and the service core; the caller drives
    ``serve_forever`` — the CLI blocks on it, tests run it in a thread.
    """
    service = SweepService(cache, threads=threads, processes=processes)
    server = ServiceServer((host, port), service, verbose=verbose)
    if resume:
        service.resume_pending()
    return server, service


def endpoint_path(cache: SimulationCache) -> str:
    return os.path.join(cache.directory, ENDPOINT_FILENAME)


def write_endpoint_file(cache: SimulationCache,
                        server: ServiceServer) -> str:
    """Advertise the bound address next to the store for discovery."""
    from ..serialization import atomic_write_json

    host, port = server.server_address[:2]
    path = endpoint_path(cache)
    atomic_write_json(path, {
        "host": host, "port": port, "pid": os.getpid(),
        "url": f"http://{host}:{port}"}, indent=2)
    return path


def run_daemon(cache: SimulationCache, host: str = "127.0.0.1",
               port: int = 8037, threads: int = 2, processes: bool = False,
               verbose: bool = False) -> int:
    """Blocking entry point behind ``ssam-repro --experiment serve``."""
    server, service = serve(cache, host=host, port=port, threads=threads,
                            processes=processes, verbose=verbose)
    endpoint = write_endpoint_file(cache, server)
    bound = server.server_address
    print(f"ssam-repro service listening on http://{bound[0]}:{bound[1]} "
          f"(store: {service.store.path})", flush=True)
    print(f"endpoint file: {endpoint}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        service.shutdown()
        try:
            os.unlink(endpoint)
        except OSError:
            pass
    return 0
