"""Performance metrics used by the evaluation (GCells/s, GFLOP/s, speedups)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..errors import ConfigurationError


def gcells_per_second(cells: int, iterations: int, seconds: float) -> float:
    """Giga cell-updates per second — the Figure 5/6 metric."""
    if seconds <= 0:
        raise ConfigurationError("seconds must be positive")
    return cells * iterations / seconds / 1e9


def gflops(cells: int, iterations: int, flops_per_cell: float, seconds: float) -> float:
    """GFLOP/s given the FLOP-per-point factor of Table 3."""
    if seconds <= 0:
        raise ConfigurationError("seconds must be positive")
    return cells * iterations * flops_per_cell / seconds / 1e9


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """How many times faster the improved implementation is."""
    if improved_seconds <= 0:
        raise ConfigurationError("improved time must be positive")
    return baseline_seconds / improved_seconds


def relative_error(predicted: float, measured: float) -> float:
    """Signed relative prediction error ``(predicted - measured) / measured``.

    Used by the cross-engine validation experiment to quantify how far the
    Section 5 performance model sits from the counted simulation.
    """
    if measured == 0:
        raise ConfigurationError("measured value must be non-zero")
    return (predicted - measured) / measured


def error_bounds(ratios: Sequence[float]) -> Dict[str, float]:
    """Min/max/geomean bounds of a set of prediction ratios.

    The summary reported per kernel by the model-validation table: ratios
    are ``predicted / measured``, so 1.0 is a perfect prediction and the
    min/max pair bounds every observed case.
    """
    cleaned = [float(v) for v in ratios]
    if not cleaned:
        raise ConfigurationError("error bounds need at least one ratio")
    return {
        "min": min(cleaned),
        "max": max(cleaned),
        "geomean": geometric_mean(cleaned),
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's "on average 2.5x" style aggregation)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        raise ConfigurationError("geometric mean needs at least one positive value")
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))


def winner(times_by_name: Mapping[str, float]) -> str:
    """Name of the fastest implementation (smallest time)."""
    if not times_by_name:
        raise ConfigurationError("no implementations to compare")
    return min(times_by_name, key=lambda name: times_by_name[name])


def crossover_points(x_values: Sequence[float], series_a: Sequence[float],
                     series_b: Sequence[float]) -> List[float]:
    """x positions where series A and B swap order (linear interpolation)."""
    if len(x_values) != len(series_a) or len(x_values) != len(series_b):
        raise ConfigurationError("series must have the same length")
    crossings: List[float] = []
    for i in range(1, len(x_values)):
        d0 = series_a[i - 1] - series_b[i - 1]
        d1 = series_a[i] - series_b[i]
        if d0 == 0:
            crossings.append(float(x_values[i - 1]))
        elif d0 * d1 < 0:
            t = abs(d0) / (abs(d0) + abs(d1))
            crossings.append(float(x_values[i - 1]) + t * (x_values[i] - x_values[i - 1]))
    return crossings
