"""Concrete re-evaluation of a trace's data-free slice over chosen blocks.

Where :mod:`repro.analysis.ranges` abstracts index expressions into
intervals, this module *executes* them — mirroring the eager batched
context's arithmetic semantics exactly — for an explicit set of block
indices.  The race detector and bounds checker use the resulting per-thread
index matrices for exact pairwise overlap checks whenever every index and
mask feeding an access is data-free (the common case for the SSAM kernels);
the performance lint replays the same matrices through the simulator's own
coalescing/bank-conflict accounting.

The environment maps node id -> ndarray broadcastable against the
``(num_blocks, block_threads)`` register shape: scalars for ``CONST``
values, ``(T,)`` rows for block-uniform values, ``(B, 1)`` columns for the
block-index inputs and ``(B, T)`` matrices for mixed expressions — the same
shape discipline the replay compiler relies on.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..gpu import warp as warp_ops
from ..trace.ir import Trace
from ..trace.tracer import _astype_fn
from .ranges import compute_data_free

_AXIS = {"bx": 0, "by": 1, "bz": 2}


def _shfl(values: np.ndarray, direction: str, amount: int,
          num_blocks: int, block_threads: int, warp_size: int) -> np.ndarray:
    """Apply one shuffle with the exact :mod:`repro.gpu.warp` semantics."""
    full = np.broadcast_to(np.asarray(values),
                           (num_blocks, block_threads)).copy()
    if direction == "up":
        out = warp_ops.shfl_up(full, amount, warp_size)
    elif direction == "down":
        out = warp_ops.shfl_down(full, amount, warp_size)
    else:
        out = warp_ops.shfl_idx(full, amount, warp_size)
    return out


def evaluate_data_free(trace: Trace, block_indices: np.ndarray
                       ) -> Dict[int, np.ndarray]:
    """Concrete values of every data-free node for the given blocks.

    ``block_indices`` is a ``(B, 3)`` int64 matrix of ``(bx, by, bz)``
    triples — typically :func:`repro.trace.replay._block_index_matrix` over
    the full grid, so the checks cover blocks the recorded chunk never
    executed.  Nodes that are not data-free (loads, and anything derived
    from them) are absent from the returned environment.
    """
    block_indices = np.asarray(block_indices, dtype=np.int64)
    num_blocks = block_indices.shape[0]
    threads = trace.block_threads
    dtype = trace.numpy_dtype
    data_free = compute_data_free(trace)
    env: Dict[int, np.ndarray] = {}
    for node in trace.nodes:
        if not data_free[node.id]:
            continue
        if node.op == "const":
            env[node.id] = np.asarray(node.value)
        elif node.op == "input":
            name = node.params["name"]
            if name in _AXIS:
                env[node.id] = block_indices[:, _AXIS[name]:_AXIS[name] + 1]
            else:
                env[node.id] = np.asarray(node.value)
        elif node.op == "pure":
            operands = [env[i] for i in node.inputs]
            if node.fn is _astype_fn:
                env[node.id] = _astype_fn(operands[0], **node.kwargs)
            else:
                env[node.id] = node.fn(*operands, **node.kwargs)
        elif node.op == "arith":
            kind = node.params["kind"]
            a = np.asarray(env[node.inputs[0]], dtype=dtype)
            b = np.asarray(env[node.inputs[1]], dtype=dtype)
            if kind == "mad":
                env[node.id] = a * b + env[node.inputs[2]]
            elif kind == "add":
                env[node.id] = a + b
            else:
                env[node.id] = a * b
        elif node.op == "shfl":
            env[node.id] = _shfl(env[node.inputs[0]], node.params["dir"],
                                 node.params["amount"], num_blocks, threads,
                                 trace.warp_size)
    return env


def index_matrix(env: Dict[int, np.ndarray], node_id: int,
                 num_blocks: int, block_threads: int) -> Optional[np.ndarray]:
    """``(B, T)`` int64 index matrix of a data-free index node, else None."""
    value = env.get(node_id)
    if value is None:
        return None
    arr = np.asarray(value, dtype=np.int64)
    return np.broadcast_to(arr, (num_blocks, block_threads))


def mask_matrix(env: Dict[int, np.ndarray], node_id: Optional[int],
                num_blocks: int, block_threads: int) -> Optional[np.ndarray]:
    """``(B, T)`` bool mask matrix; all-True when the access is unmasked.

    Returns ``None`` when the mask node exists but is data-dependent.
    """
    if node_id is None:
        return np.ones((num_blocks, block_threads), dtype=bool)
    value = env.get(node_id)
    if value is None:
        return None
    arr = np.asarray(value, dtype=bool)
    return np.broadcast_to(arr, (num_blocks, block_threads))
