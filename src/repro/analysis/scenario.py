"""Registry-level static verification: analyze whole scenarios.

:func:`analyze_scenario` runs one registered scenario once through the
compiled trace-replay engine under a :func:`repro.trace.replay.capture_traces`
context, then statically verifies every recorded kernel trace with
:func:`repro.analysis.verify.verify_trace` — races, bounds, performance
lints and the static-vs-dynamic counter cross-check against the eager
chunk's counters.  Kernels the tracer cannot express become explicit
``coverage`` findings rather than silent gaps.

:func:`run_analyze` sweeps every replay-capable scenario (one architecture
under ``--quick``, the full architecture set otherwise) and assembles a
standard :class:`~repro.experiments.results.ExperimentResult`, so
``ssam-repro --experiment analyze`` gets JSON artifacts and a rendered
report exactly like the paper experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import ConfigurationError
from .report import COVERAGE, Finding, TraceReport, WARNING

#: architectures the full (non-quick) analyze experiment covers
ANALYZE_ARCHITECTURES = ("p100", "v100", "a100", "h100")


@dataclass(frozen=True)
class ScenarioAnalysis:
    """Static-verification outcome of one scenario on one architecture."""

    scenario: str
    architecture: str
    precision: str
    size: str
    case_id: str
    reports: List[TraceReport] = field(default_factory=list)
    fallbacks: List[Dict[str, str]] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        """Every finding across all verified traces, plus fallback gaps."""
        out: List[Finding] = []
        for report in self.reports:
            out.extend(report.findings)
        for event in self.fallbacks:
            out.append(Finding(
                category=COVERAGE, severity=WARNING,
                message=(f"kernel {event['kernel']!r} fell back to the "
                         f"batched engine and was not statically verified: "
                         f"{event['reason']}"),
                detail=dict(event)))
        return out

    @property
    def ok(self) -> bool:
        """True when every trace verified clean and nothing fell back."""
        return not self.findings

    def by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.category] = counts.get(finding.category, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "architecture": self.architecture,
            "precision": self.precision,
            "size": self.size,
            "case_id": self.case_id,
            "ok": self.ok,
            "reports": [report.to_dict() for report in self.reports],
            "fallbacks": [dict(event) for event in self.fallbacks],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioAnalysis":
        return cls(
            scenario=data["scenario"],
            architecture=data.get("architecture", ""),
            precision=data.get("precision", "float32"),
            size=data.get("size", ""),
            case_id=data.get("case_id", ""),
            reports=[TraceReport.from_dict(r)
                     for r in data.get("reports", [])],
            fallbacks=[dict(event) for event in data.get("fallbacks", [])],
        )

    def render(self) -> str:
        lines = [f"=== {self.case_id} ==="]
        for report in self.reports:
            lines.append(report.render())
        for event in self.fallbacks:
            lines.append(f"fallback: {event['kernel']}: {event['reason']}")
        verdict = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def _pick_size(entry, architecture: str, precision: str) -> str:
    """Smallest size the replay engine covers on the given cell."""
    names = list(entry.sizes)
    # prefer "tiny": verification cost scales with the grid, and findings
    # are size-independent properties of the kernel's index arithmetic
    if "tiny" in names:
        names.remove("tiny")
        names.insert(0, "tiny")
    for size in names:
        if entry.supports(architecture, precision, "replay", size=size):
            return size
    raise ConfigurationError(
        f"scenario {entry.name!r} has no replay-capable size on "
        f"{architecture}/{precision}; static analysis needs the trace IR")


def supports_analysis(entry, architecture: str = "p100",
                      precision: str = "float32") -> bool:
    """True when the scenario can be traced (and therefore verified)."""
    return any(entry.supports(architecture, precision, "replay", size=size)
               for size in entry.sizes)


def analyze_scenario(name: str, architecture: str = "p100",
                     precision: str = "float32",
                     size: Optional[str] = None) -> ScenarioAnalysis:
    """Statically verify every kernel one scenario launches.

    Runs the scenario through the replay engine inside a trace capture,
    then verifies each unique recorded trace.  The eager chunk's counter
    delta rides along, so every report includes the static-vs-dynamic
    cross-check.
    """
    from ..scenarios.registry import ScenarioCase, get_scenario
    from ..trace.replay import capture_traces

    entry = get_scenario(name)
    if size is None:
        size = _pick_size(entry, architecture, precision)
    case = ScenarioCase(scenario=name, architecture=architecture,
                        precision=precision, engine="replay", size=size)
    with capture_traces() as capture:
        entry.run_case(case)
    reports = []
    for record in capture.unique_records():
        reports.append(verify_capture_record(record))
    return ScenarioAnalysis(
        scenario=name, architecture=architecture, precision=precision,
        size=size, case_id=case.case_id, reports=reports,
        fallbacks=[dict(event) for event in capture.fallbacks])


def verify_capture_record(record) -> TraceReport:
    """Verify one :class:`~repro.trace.replay.TraceCaptureRecord`."""
    from .verify import verify_trace

    return verify_trace(
        record.trace, record.config.grid_dim, record.architecture,
        chunk_blocks=record.chunk_blocks,
        dynamic_counters=record.chunk_counters,
        count_traffic=record.count_traffic,
        kernel_name=record.kernel_name)


# --------------------------------------------------------- the experiment

def run_analyze(quick: bool = False, workers: int = 1,
                cache=None) -> "ExperimentResult":
    """``ssam-repro --experiment analyze``: verify the whole registry.

    Analysis is pure front-end work on tiny problem sizes (the replay run
    only records one chunk eagerly), so it always executes in-process;
    ``workers`` and ``cache`` are accepted for pipeline symmetry.
    """
    from ..experiments.results import ExperimentResult, Measurement
    from ..scenarios.registry import all_scenarios

    del workers, cache  # in-process by design; see docstring
    measurements: List[Measurement] = []
    skipped: List[str] = []
    for entry in all_scenarios():
        if not supports_analysis(entry):
            skipped.append(entry.name)
            continue
        architectures = ("p100",) if quick else tuple(
            arch for arch in ANALYZE_ARCHITECTURES
            if arch in entry.architectures)
        for architecture in architectures:
            start = time.perf_counter()
            analysis = analyze_scenario(entry.name, architecture=architecture)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            findings = analysis.findings
            measurements.append(Measurement(
                kernel=entry.name,
                architecture=architecture,
                workload=analysis.size,
                value=float(len(findings)),
                unit="findings",
                milliseconds=elapsed_ms,
                extra={
                    "scenario": entry.name,
                    "architecture": architecture,
                    "size": analysis.size,
                    "case_id": analysis.case_id,
                    "ok": analysis.ok,
                    "traces": len(analysis.reports),
                    "phases": max((r.phases for r in analysis.reports),
                                  default=0),
                    "nodes": sum(r.nodes for r in analysis.reports),
                    "accesses": sum(r.accesses for r in analysis.reports),
                    "findings": len(findings),
                    "by_category": analysis.by_category(),
                    "fallbacks": len(analysis.fallbacks),
                    "analysis": analysis.to_dict(),
                },
            ))
    return ExperimentResult(
        experiment="analyze",
        title="Static kernel verification (trace-IR race/bounds/perf analysis)",
        quick=quick,
        measurements=measurements,
        metadata={"skipped_scenarios": skipped,
                  "architectures": (["p100"] if quick
                                    else list(ANALYZE_ARCHITECTURES))},
    )


def render(result: ExperimentResult) -> str:
    """Deterministic text report of an analyze result (no wall-clock)."""
    header = (f"{'scenario':<20} {'arch':<6} {'size':<6} {'traces':>6} "
              f"{'phases':>6} {'nodes':>6} {'findings':>8}  verdict")
    lines = [result.title, "=" * len(header), header, "-" * len(header)]
    clean = 0
    total_findings = 0
    for measurement in result.measurements:
        row = measurement.extra
        verdict = "clean" if row["ok"] else _verdict(row)
        if row["ok"]:
            clean += 1
        total_findings += int(row["findings"])
        lines.append(
            f"{row['scenario']:<20} {row['architecture']:<6} "
            f"{row['size']:<6} {row['traces']:>6} {row['phases']:>6} "
            f"{row['nodes']:>6} {row['findings']:>8}  {verdict}")
    lines.append("-" * len(header))
    skipped = result.metadata.get("skipped_scenarios") or []
    if skipped:
        lines.append(f"not traceable (no replay engine): "
                     f"{', '.join(skipped)}")
    lines.append(f"{clean}/{len(result.measurements)} cells clean, "
                 f"{total_findings} finding(s) total")
    return "\n".join(lines)


def _verdict(row: Mapping[str, object]) -> str:
    counts = row.get("by_category") or {}
    parts = [f"{counts[key]} {key}" for key in sorted(counts)]
    return ", ".join(parts) if parts else "findings"
