"""Plain-text table rendering for experiment reports and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_digits: int = 2) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)
    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(str(col)), *(len(r[i]) for r in table)) for i, col in enumerate(columns)]
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
                     for r in table)
    return f"{header}\n{separator}\n{body}"


def format_series(title: str, x_label: str, x_values: Sequence[object],
                  series: Mapping[str, Sequence[float]], unit: str = "",
                  float_digits: int = 2) -> str:
    """Render one figure panel (several named series over a shared x axis)."""
    rows: List[Dict[str, object]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) and values[i] is not None else ""
        rows.append(row)
    suffix = f"  [{unit}]" if unit else ""
    return f"== {title}{suffix} ==\n" + format_table(rows, float_digits=float_digits)
