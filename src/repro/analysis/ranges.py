"""Interval abstract interpretation over trace-IR index expressions.

The verifier reasons about the *data-free* slice of a recorded
:class:`~repro.trace.ir.Trace`: every node whose value is a pure function of
``thread_idx``/``lane``/``warp``/``block_idx`` and host constants.  For those
nodes :class:`RangeAnalysis` computes a sound closed interval ``[lo, hi]``
over the **whole grid** (block indices range over ``[0, grid_dim[axis) - 1]``
symbolically, not just the recorded chunk), which is what the race detector
and bounds checker consume.  Loads from global/shared memory are
data-*dependent*; their intervals collapse to the dtype range, so any bound
proved through them is still sound, just imprecise.

Soundness convention: an interval must always contain every value the node
can take on any launch of the recorded grid.  Unknown operations therefore
widen to TOP (clamped to the node dtype's representable range) rather than
guessing.  An *empty* interval (``lo > hi``) means "no value" — it arises
only from contradictory mask refinements and makes guarded checks vacuously
safe.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..trace.ir import KIND_THREAD, Trace
from ..trace.tracer import _astype_fn

_INF = math.inf


class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        self.lo = float(lo)
        self.hi = float(hi)

    # ------------------------------------------------------------ predicates

    @property
    def empty(self) -> bool:
        return self.lo > self.hi

    @property
    def bounded(self) -> bool:
        return not self.empty and math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def degenerate(self) -> bool:
        return self.lo == self.hi and not self.empty

    def contains(self, value: float) -> bool:
        return not self.empty and self.lo <= value <= self.hi

    def __contains__(self, value: float) -> bool:
        return self.contains(value)

    # ---------------------------------------------------------- set algebra

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def overlaps(self, other: "Interval") -> bool:
        return (not self.empty and not other.empty
                and self.lo <= other.hi and other.lo <= self.hi)

    # -------------------------------------------------------------- display

    def __eq__(self, other) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self.empty and other.empty:
            return True
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash(("empty",) if self.empty else (self.lo, self.hi))

    def __repr__(self) -> str:
        if self.empty:
            return "Interval(empty)"
        return f"Interval({self.lo:g}, {self.hi:g})"

    def to_tuple(self) -> Tuple[Optional[float], Optional[float]]:
        def enc(x):
            return None if not math.isfinite(x) else x
        return (enc(self.lo), enc(self.hi))


TOP = Interval(-_INF, _INF)
EMPTY = Interval(_INF, -_INF)
BOOL = Interval(0.0, 1.0)
TRUE = Interval(1.0, 1.0)
FALSE = Interval(0.0, 0.0)


def _smul(x: float, y: float) -> float:
    """Multiplication where 0 * inf = 0 (an exact-zero factor wins)."""
    if x == 0.0 or y == 0.0:
        return 0.0
    return x * y


def _corners(a: Interval, b: Interval, op) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    values = [op(x, y) for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    return Interval(min(values), max(values))


def _add(a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    return Interval(a.lo + b.lo, a.hi + b.hi)


def _sub(a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    return Interval(a.lo - b.hi, a.hi - b.lo)


def _mul(a: Interval, b: Interval) -> Interval:
    return _corners(a, b, _smul)


def _neg(a: Interval) -> Interval:
    if a.empty:
        return EMPTY
    return Interval(-a.hi, -a.lo)


def _truediv(a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    if b.lo <= 0.0 <= b.hi:
        return TOP
    def div(x, y):
        if math.isinf(x) and math.isinf(y):
            return 0.0  # unreachable sign combos collapse; stay sound via hull
        if math.isinf(y):
            return 0.0
        return x / y
    return _corners(a, b, div)


def _floordiv(a: Interval, b: Interval) -> Interval:
    quotient = _truediv(a, b)
    if quotient.empty:
        return EMPTY
    lo = quotient.lo if math.isinf(quotient.lo) else math.floor(quotient.lo)
    hi = quotient.hi if math.isinf(quotient.hi) else math.floor(quotient.hi)
    return Interval(lo, hi)


def _remainder(a: Interval, b: Interval) -> Interval:
    """``np.remainder`` — result sign follows the divisor."""
    if a.empty or b.empty:
        return EMPTY
    if b.lo > 0.0:
        if math.isinf(b.hi):
            return Interval(0.0, _INF)
        # already reduced: 0 <= a < lo(b) for every divisor value
        if a.lo >= 0.0 and a.hi < b.lo:
            return a
        return Interval(0.0, b.hi)
    if b.hi < 0.0:
        if math.isinf(b.lo):
            return Interval(-_INF, 0.0)
        if a.hi <= 0.0 and a.lo > b.hi:
            return a
        return Interval(b.lo, 0.0)
    return TOP


def _power(a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    if b.degenerate and float(b.lo).is_integer() and b.lo >= 0.0:
        n = int(b.lo)
        if not a.bounded:
            if n == 0:
                return Interval(1.0, 1.0)
            return TOP
        values = [a.lo ** n, a.hi ** n]
        if n % 2 == 0 and a.lo < 0.0 < a.hi:
            values.append(0.0)
        return Interval(min(values), max(values))
    if a.lo > 0.0 and a.bounded and b.bounded:
        try:
            values = [x ** y for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
        except OverflowError:
            return Interval(0.0, _INF)
        return Interval(min(values), max(values))
    return TOP


def _shift(a: Interval, b: Interval, left: bool) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    if not b.bounded or b.lo < 0.0 or not a.bounded:
        return TOP
    def op(x, s):
        factor = 2.0 ** int(s)
        return x * factor if left else math.floor(x / factor)
    return _corners(a, b, op)


def _bitwise_and(a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    if a.lo >= 0.0 and b.lo >= 0.0:
        return Interval(0.0, min(a.hi, b.hi))
    return TOP


def _bitwise_or_xor(a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    if a.lo >= 0.0 and b.lo >= 0.0 and a.bounded and b.bounded:
        bits = max(int(a.hi), int(b.hi)).bit_length()
        return Interval(0.0, float((1 << bits) - 1))
    return TOP


def _minimum(a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    return Interval(min(a.lo, b.lo), min(a.hi, b.hi))


def _maximum(a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    return Interval(max(a.lo, b.lo), max(a.hi, b.hi))


def _abs(a: Interval) -> Interval:
    if a.empty:
        return EMPTY
    if a.lo >= 0.0:
        return a
    if a.hi <= 0.0:
        return Interval(-a.hi, -a.lo)
    return Interval(0.0, max(-a.lo, a.hi))


def _monotone(fn):
    def transfer(a: Interval) -> Interval:
        if a.empty:
            return EMPTY
        lo = a.lo if math.isinf(a.lo) else float(fn(a.lo))
        hi = a.hi if math.isinf(a.hi) else float(fn(a.hi))
        return Interval(lo, hi)
    return transfer


def _sqrt(a: Interval) -> Interval:
    if a.empty:
        return EMPTY
    if a.lo < 0.0:
        return TOP  # NaN territory; refuse to reason
    hi = a.hi if math.isinf(a.hi) else math.sqrt(a.hi)
    return Interval(math.sqrt(a.lo), hi)


def _compare(kind: str, a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY
    if kind == "lt":
        if a.hi < b.lo:
            return TRUE
        if a.lo >= b.hi:
            return FALSE
    elif kind == "le":
        if a.hi <= b.lo:
            return TRUE
        if a.lo > b.hi:
            return FALSE
    elif kind == "gt":
        return _compare("lt", b, a)
    elif kind == "ge":
        return _compare("le", b, a)
    elif kind == "eq":
        if a.degenerate and b.degenerate and a.lo == b.lo:
            return TRUE
        if not a.overlaps(b):
            return FALSE
    elif kind == "ne":
        if a.degenerate and b.degenerate and a.lo == b.lo:
            return FALSE
        if not a.overlaps(b):
            return TRUE
    return BOOL


def _logical_not(a: Interval) -> Interval:
    if a.empty:
        return EMPTY
    if a == FALSE:
        return TRUE
    if not a.contains(0.0):
        return FALSE
    return BOOL


def _where(c: Interval, x: Interval, y: Interval) -> Interval:
    if c.empty:
        return EMPTY
    if c == FALSE:
        return y
    if not c.contains(0.0):
        return x
    return x.hull(y)


def _clip(x: Interval, lo: Interval, hi: Interval) -> Interval:
    return _minimum(_maximum(x, lo), hi)


#: ufunc/function object -> interval transfer (positional Interval args)
_TRANSFERS = {
    np.add: _add,
    np.subtract: _sub,
    np.multiply: _mul,
    np.true_divide: _truediv,
    np.floor_divide: _floordiv,
    np.remainder: _remainder,
    np.power: _power,
    np.left_shift: lambda a, b: _shift(a, b, True),
    np.right_shift: lambda a, b: _shift(a, b, False),
    np.bitwise_and: _bitwise_and,
    np.bitwise_or: _bitwise_or_xor,
    np.bitwise_xor: _bitwise_or_xor,
    np.minimum: _minimum,
    np.maximum: _maximum,
    np.fmin: _minimum,
    np.fmax: _maximum,
    np.negative: _neg,
    np.positive: lambda a: a,
    np.absolute: _abs,
    np.fabs: _abs,
    np.floor: _monotone(math.floor),
    np.ceil: _monotone(math.ceil),
    np.trunc: _monotone(math.trunc),
    np.rint: _monotone(round),
    np.sqrt: _sqrt,
    np.exp: _monotone(math.exp),
    np.less: lambda a, b: _compare("lt", a, b),
    np.less_equal: lambda a, b: _compare("le", a, b),
    np.greater: lambda a, b: _compare("gt", a, b),
    np.greater_equal: lambda a, b: _compare("ge", a, b),
    np.equal: lambda a, b: _compare("eq", a, b),
    np.not_equal: lambda a, b: _compare("ne", a, b),
    np.logical_and: lambda a, b: (
        EMPTY if (a.empty or b.empty)
        else FALSE if (a == FALSE or b == FALSE)
        else TRUE if (not a.contains(0.0) and not b.contains(0.0))
        else BOOL),
    np.logical_or: lambda a, b: (
        EMPTY if (a.empty or b.empty)
        else TRUE if (not a.contains(0.0) or not b.contains(0.0))
        else FALSE if (a == FALSE and b == FALSE)
        else BOOL),
    np.logical_not: _logical_not,
    np.logical_xor: lambda a, b: BOOL if not (a.empty or b.empty) else EMPTY,
    np.where: _where,
    np.clip: _clip,
}

#: comparison ufuncs usable as mask-refinement conjuncts
_COMPARE_FNS = {np.less: "lt", np.less_equal: "le", np.greater: "gt",
                np.greater_equal: "ge", np.equal: "eq"}

#: value-producing trace ops whose result depends only on launch geometry
#: and host constants when all inputs do
_PURE_OPS = ("pure", "arith", "shfl")


def _dtype_interval(dtype) -> Interval:
    if dtype is None:
        return TOP
    dt = np.dtype(dtype)
    if dt == np.bool_:
        return BOOL
    if dt.kind in "iu":
        info = np.iinfo(dt)
        return Interval(float(info.min), float(info.max))
    return TOP


def _invert_transfer(a: Interval, dtype) -> Interval:
    if a.empty:
        return EMPTY
    if dtype is not None and np.dtype(dtype) == np.bool_:
        return _logical_not(a)
    return Interval(-a.hi - 1.0, -a.lo - 1.0)


def _value_interval(value) -> Interval:
    arr = np.asarray(value)
    if arr.size == 0:
        return EMPTY
    if arr.dtype == np.bool_:
        arr = arr.astype(np.int64)
    return Interval(float(arr.min()), float(arr.max()))


def compute_data_free(trace: Trace) -> List[bool]:
    """``data_free[i]`` — node *i*'s value is independent of memory content."""
    flags: List[bool] = []
    for node in trace.nodes:
        if node.op in ("const", "input"):
            flags.append(True)
        elif node.op in _PURE_OPS:
            flags.append(all(flags[i] for i in node.inputs))
        else:
            flags.append(False)
    return flags


class RangeAnalysis:
    """Sound whole-grid intervals for every value-producing trace node."""

    _AXIS = {"bx": 0, "by": 1, "bz": 2}

    def __init__(self, trace: Trace, grid_dim: Tuple[int, int, int]):
        self.trace = trace
        self.grid_dim = tuple(int(g) for g in grid_dim)
        self.data_free = compute_data_free(trace)
        self._memo: Optional[Dict[int, Optional[Interval]]] = None

    # ------------------------------------------------------------ transfer

    def _transfer(self, node, memo: Dict[int, Optional[Interval]]
                  ) -> Optional[Interval]:
        iv: Optional[Interval]
        if node.op == "const":
            iv = _value_interval(node.value)
        elif node.op == "input":
            name = node.params["name"]
            if name in self._AXIS:
                extent = self.grid_dim[self._AXIS[name]]
                iv = Interval(0.0, float(max(extent - 1, 0)))
            elif node.kind <= KIND_THREAD and node.value is not None:
                iv = _value_interval(node.value)
            else:  # pragma: no cover - no other inputs are recorded
                iv = TOP
        elif node.op == "pure":
            operands = [memo.get(i) or TOP for i in node.inputs]
            if node.fn is np.invert:
                iv = _invert_transfer(operands[0], node.dtype)
            elif node.fn is _astype_fn:
                target = np.dtype(node.kwargs.get("dtype", node.dtype))
                iv = self._astype(operands[0], target)
            else:
                transfer = _TRANSFERS.get(node.fn)
                iv = transfer(*operands) if transfer is not None else TOP
        elif node.op == "arith":
            operands = [memo.get(i) or TOP for i in node.inputs]
            kind = node.params["kind"]
            if kind == "mad":
                iv = _add(_mul(operands[0], operands[1]), operands[2])
            elif kind == "add":
                iv = _add(operands[0], operands[1])
            else:
                iv = _mul(operands[0], operands[1])
        elif node.op == "shfl":
            # every shuffle result is some lane's input value, so the input
            # interval is a sound (and tight enough) abstraction
            iv = memo.get(node.inputs[0]) or TOP
        elif node.op in ("load_global", "load_shared"):
            iv = TOP
        else:
            return None  # stores / sync / misc / alloc produce no value
        return iv.intersect(_dtype_interval(node.dtype))

    @staticmethod
    def _astype(a: Interval, target: np.dtype) -> Interval:
        if a.empty:
            return EMPTY
        if target == np.bool_:
            if a == FALSE:
                return FALSE
            if not a.contains(0.0):
                return TRUE
            return BOOL
        if target.kind in "iu":
            # numpy casts truncate toward zero, which is monotone
            lo = a.lo if math.isinf(a.lo) else float(math.trunc(a.lo))
            hi = a.hi if math.isinf(a.hi) else float(math.trunc(a.hi))
            return Interval(lo, hi).intersect(_dtype_interval(target))
        return a

    # -------------------------------------------------------------- queries

    def _evaluate(self, overrides: Optional[Dict[int, Interval]] = None
                  ) -> Dict[int, Optional[Interval]]:
        memo: Dict[int, Optional[Interval]] = {}
        for node in self.trace.nodes:  # straight-line: inputs precede uses
            iv = self._transfer(node, memo)
            if iv is not None and overrides and node.id in overrides:
                iv = iv.intersect(overrides[node.id])
            memo[node.id] = iv
        return memo

    def interval(self, node_id: int) -> Interval:
        """Whole-grid interval of one value-producing node (memoised)."""
        if self._memo is None:
            self._memo = self._evaluate()
        iv = self._memo.get(node_id)
        return iv if iv is not None else TOP

    def interval_with(self, node_id: int,
                      overrides: Dict[int, Interval]) -> Interval:
        """Interval of ``node_id`` with extra constraints intersected in.

        Overridden nodes propagate their refinement downstream — used to
        re-evaluate an index under the constraints implied by its guard mask.
        """
        if not overrides:
            return self.interval(node_id)
        memo = self._evaluate(overrides)
        iv = memo.get(node_id)
        return iv if iv is not None else TOP

    # ------------------------------------------------------ mask refinement

    def mask_constraints(self, mask_id: int) -> Dict[int, Interval]:
        """Constraints on operand nodes implied by ``mask`` being True.

        Walks the conjunction structure (``&`` / ``np.logical_and`` over
        booleans) and converts each comparison leaf into interval bounds on
        its non-constant side.  Sound: only *necessary* conditions of the
        mask are emitted, so intersecting them never drops a live thread.
        """
        trace = self.trace
        conjuncts: List[int] = []
        stack = [mask_id]
        while stack:
            nid = stack.pop()
            node = trace.nodes[nid]
            if (node.op == "pure"
                    and node.fn in (np.logical_and, np.bitwise_and)
                    and node.dtype is not None
                    and np.dtype(node.dtype) == np.bool_):
                stack.extend(node.inputs)
            else:
                conjuncts.append(nid)
        constraints: Dict[int, Interval] = {}

        def constrain(nid: int, bound: Interval) -> None:
            if not self.data_free[nid]:
                return
            current = constraints.get(nid, self.interval(nid))
            constraints[nid] = current.intersect(bound)

        for nid in conjuncts:
            node = trace.nodes[nid]
            if node.op != "pure" or node.fn not in _COMPARE_FNS:
                continue
            kind = _COMPARE_FNS[node.fn]
            a, b = node.inputs
            ia, ib = self.interval(a), self.interval(b)
            a_int = self._is_integral(a)
            b_int = self._is_integral(b)
            if kind == "eq":
                constrain(a, ib)
                constrain(b, ia)
                continue
            if kind in ("gt", "ge"):  # a > b  <=>  b < a
                a, b, ia, ib = b, a, ib, ia
                a_int, b_int = b_int, a_int
                kind = "lt" if kind == "gt" else "le"
            strict_adj_a = 1.0 if (kind == "lt" and a_int) else 0.0
            strict_adj_b = 1.0 if (kind == "lt" and b_int) else 0.0
            # a < b (or <=): a is bounded above by hi(b), b below by lo(a)
            if not ib.empty:
                constrain(a, Interval(-_INF, ib.hi - strict_adj_a))
            if not ia.empty:
                constrain(b, Interval(ia.lo + strict_adj_b, _INF))
        return constraints

    def _is_integral(self, node_id: int) -> bool:
        dtype = self.trace.nodes[node_id].dtype
        return dtype is not None and np.dtype(dtype).kind in "iub"

    def guarded_interval(self, index_id: int,
                         mask_id: Optional[int]) -> Interval:
        """Interval of an index node under its (optional) guard mask."""
        if mask_id is None:
            return self.interval(index_id)
        return self.interval_with(index_id, self.mask_constraints(mask_id))
