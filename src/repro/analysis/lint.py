"""Static performance lint: predicted counters + dynamic cross-check.

``predict_counters`` replays a trace's data-free index/mask matrices
through the *same* accounting helpers the batched engine uses
(:func:`~repro.gpu.memory.rowwise_unique_counts`,
:func:`~repro.gpu.memory.coalesced_transactions_matrix`,
:func:`~repro.gpu.shared_memory.bank_conflict_profile`,
:func:`~repro.gpu.simt.grouped_warp_counts`), so on a fully data-free
kernel the static prediction is **bit-identical** to the dynamic counters
of the recorded chunk — any disagreement is a verifier or engine bug and
is reported as a ``divergence`` finding.  Counter fields fed by
data-dependent indices or masks are listed as unpredicted and excluded.

On top of the prediction the lint flags statically visible inefficiencies:
shared-memory accesses whose worst warp exceeds the natural conflict
degree of the element width, and global accesses whose worst warp touches
more than twice the ideal sector count.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..gpu.memory import (
    _SENTINEL,
    rowwise_unique_counts,
)
from ..gpu.shared_memory import bank_conflict_profile
from ..gpu.simt import grouped_warp_counts
from ..trace.ir import Trace
from .accesses import Access, GLOBAL, extract_accesses
from .concrete import index_matrix, mask_matrix
from .report import DIVERGENCE, ERROR, PERF, WARNING, Finding

#: counter fields a global load contributes to
_GLOBAL_LOAD_FIELDS = ("gmem_load", "gmem_load_transactions",
                       "cache_read_bytes", "dram_read_bytes",
                       "divergent_branches")
#: counter fields a global store contributes to
_GLOBAL_STORE_FIELDS = ("gmem_store", "gmem_store_transactions",
                        "dram_write_bytes", "divergent_branches")
#: counter fields a shared load contributes to
_SHARED_LOAD_FIELDS = ("smem_load", "smem_broadcast", "smem_bank_conflicts",
                       "smem_read_bytes")
#: counter fields a shared store contributes to
_SHARED_STORE_FIELDS = ("smem_store", "smem_bank_conflicts",
                        "smem_write_bytes")


class CounterPrediction:
    """Statically predicted counters for one recorded chunk."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        #: fields whose total includes a data-dependent access
        self.unpredicted: set = set()
        self.findings: List[Finding] = []

    def bump(self, field: str, amount) -> None:
        self.counters[field] = self.counters.get(field, 0.0) + float(amount)

    def give_up(self, fields) -> None:
        self.unpredicted.update(fields)


def _warp_matrix(values: np.ndarray, warp_size: int) -> np.ndarray:
    return np.ascontiguousarray(values).reshape(-1, warp_size)


def _active_warps(prediction: CounterPrediction,
                  mask: Optional[np.ndarray], num_blocks: int,
                  num_warps: int, warp_size: int) -> int:
    if mask is None:
        return num_blocks * num_warps
    active, divergent = grouped_warp_counts(mask, warp_size)
    prediction.bump("divergent_branches", divergent)
    return active


def _global_access(prediction: CounterPrediction, trace: Trace,
                   access: Access, idx: Optional[np.ndarray],
                   mask: Optional[np.ndarray], architecture,
                   count_traffic: bool,
                   traffic: Dict[int, List[np.ndarray]]) -> None:
    fields = (_GLOBAL_STORE_FIELDS if access.is_store
              else _GLOBAL_LOAD_FIELDS)
    if idx is None or (access.mask is not None and mask is None):
        prediction.give_up(fields)
        return
    info = trace.slot_info[access.slot]
    itemsize = int(info["itemsize"])
    warp_size = trace.warp_size
    line_bytes = architecture.cache_line_bytes
    warps = _active_warps(prediction, mask, idx.shape[0], trace.num_warps,
                          warp_size)
    lines = (idx * itemsize) // line_bytes
    warp_mask = None if mask is None else _warp_matrix(mask, warp_size)
    sector_counts = rowwise_unique_counts(_warp_matrix(lines, warp_size),
                                          warp_mask)
    active = idx.size if mask is None else int(mask.sum())
    if access.is_store:
        prediction.bump("gmem_store", warps)
        prediction.bump("gmem_store_transactions", int(sector_counts.sum()))
        if not info["cached"]:
            prediction.bump("dram_write_bytes", float(active * itemsize))
    else:
        prediction.bump("gmem_load", warps)
        prediction.bump("gmem_load_transactions", int(sector_counts.sum()))
        prediction.bump("cache_read_bytes", float(active * itemsize))
        if count_traffic and not info["cached"] and active:
            chunk = (np.where(mask, lines, _SENTINEL) if mask is not None
                     else np.ascontiguousarray(lines))
            traffic.setdefault(access.slot, []).append(chunk)
    # coalescing lint: worst warp vs the ideal fully-coalesced sector count
    ideal = max(1, math.ceil(warp_size * itemsize / line_bytes))
    worst = int(sector_counts.max()) if sector_counts.size else 0
    if worst > 2 * ideal:
        name = str(info["name"])
        op = "store" if access.is_store else "load"
        prediction.findings.append(Finding(
            category=PERF, severity=WARNING,
            message=(f"uncoalesced global {op} on {name!r}: worst warp "
                     f"touches {worst} cache-line sectors "
                     f"(fully coalesced: {ideal})"),
            node=access.node, phase=access.phase,
            detail={"buffer": name, "worst_sectors": worst,
                    "ideal_sectors": ideal}))


def _shared_profile(trace: Trace, access: Access, idx: np.ndarray,
                    mask: Optional[np.ndarray], itemsize: int,
                    architecture) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    warp_size = trace.warp_size
    num_rows = idx.shape[0] * trace.num_warps
    if access.uniform:
        if mask is None:
            active_counts = np.full(num_rows, warp_size, dtype=np.int64)
        else:
            active_counts = _warp_matrix(mask, warp_size).sum(axis=1)
        broadcasts = active_counts > 0
        degrees = broadcasts.astype(np.int64)
        return degrees, broadcasts, active_counts
    warp_mask = None if mask is None else _warp_matrix(mask, warp_size)
    return bank_conflict_profile(
        _warp_matrix(idx, warp_size), itemsize,
        architecture.shared_memory_banks,
        architecture.shared_memory_bank_bytes, warp_mask)


def _shared_access(prediction: CounterPrediction, trace: Trace,
                   access: Access, idx: Optional[np.ndarray],
                   mask: Optional[np.ndarray], architecture) -> None:
    fields = (_SHARED_STORE_FIELDS if access.is_store
              else _SHARED_LOAD_FIELDS)
    if idx is None or (access.mask is not None and mask is None):
        prediction.give_up(fields)
        return
    params = trace.nodes[access.alloc].params
    itemsize = int(params["itemsize"])
    degrees, broadcasts, active_counts = _shared_profile(
        trace, access, idx, mask, itemsize, architecture)
    active_total = int(active_counts.sum())
    if access.is_store:
        store_degrees = degrees[active_counts > 0]
        prediction.bump("smem_store", int(store_degrees.sum()))
        prediction.bump("smem_bank_conflicts", int((store_degrees - 1).sum()))
        prediction.bump("smem_write_bytes", float(active_total * itemsize))
        lint_degrees = store_degrees
    else:
        occupied = active_counts > 0
        conflict_degrees = degrees[occupied & ~broadcasts]
        prediction.bump("smem_broadcast", int((broadcasts & occupied).sum()))
        prediction.bump("smem_load", int(conflict_degrees.sum()))
        prediction.bump("smem_bank_conflicts",
                        int((conflict_degrees - 1).sum()))
        prediction.bump("smem_read_bytes", float(active_total * itemsize))
        lint_degrees = conflict_degrees
    # bank-conflict lint: the natural degree of a wide element is
    # itemsize // bank_bytes (fp64 splits into two words); anything beyond
    # serialises the warp
    natural = max(1, itemsize // architecture.shared_memory_bank_bytes)
    worst = int(lint_degrees.max()) if lint_degrees.size else 0
    if worst > natural:
        name = str(params["name"])
        op = "store" if access.is_store else "load"
        prediction.findings.append(Finding(
            category=PERF, severity=WARNING,
            message=(f"shared-memory bank conflicts on {name!r}: {op} "
                     f"serialises up to {worst}-way per warp (conflict-free "
                     f"degree for {itemsize}-byte elements: {natural})"),
            node=access.node, phase=access.phase,
            detail={"buffer": name, "worst_degree": worst,
                    "natural_degree": natural}))


def predict_counters(trace: Trace, env: Dict[int, np.ndarray],
                     num_blocks: int, architecture,
                     count_traffic: bool = True) -> CounterPrediction:
    """Predicted counters of executing ``num_blocks`` chunk blocks.

    ``env`` must be the concrete data-free environment of exactly the
    chunk's block indices (the recorded chunk when cross-checking against
    captured dynamic counters).
    """
    prediction = CounterPrediction()
    threads = trace.block_threads
    issue_warps = num_blocks * trace.num_warps
    prediction.bump("blocks_executed", num_blocks)
    prediction.bump("warps_executed", issue_warps)
    traffic: Dict[int, List[np.ndarray]] = {}
    accesses, _phases = extract_accesses(trace)
    by_node = {access.node: access for access in accesses}
    for node in trace.nodes:
        if node.op == "arith":
            kind = node.params["kind"]
            field = {"mad": "fma", "add": "add", "mul": "mul"}[kind]
            prediction.bump(field, issue_warps)
        elif node.op == "misc":
            prediction.bump("misc",
                            float(node.params["instructions"]) * issue_warps)
        elif node.op == "sync":
            prediction.bump("sync", issue_warps)
        elif node.op == "shfl":
            prediction.bump("shfl", issue_warps)
        elif node.op in ("load_global", "store_global", "load_shared",
                         "store_shared"):
            access = by_node[node.id]
            idx = index_matrix(env, access.index, num_blocks, threads)
            mask = mask_matrix(env, access.mask, num_blocks, threads)
            if access.space == GLOBAL:
                _global_access(prediction, trace, access, idx, mask,
                               architecture, count_traffic, traffic)
            else:
                _shared_access(prediction, trace, access, idx, mask,
                               architecture)
    if count_traffic and "dram_read_bytes" not in prediction.unpredicted:
        line_bytes = architecture.cache_line_bytes
        total = 0
        for chunks in traffic.values():
            concat = (chunks[0] if len(chunks) == 1
                      else np.concatenate(chunks, axis=1))
            total += int(rowwise_unique_counts(concat, None).sum())
        prediction.bump("dram_read_bytes", float(total * line_bytes))
    return prediction


def cross_check(prediction: CounterPrediction,
                dynamic: Dict[str, float]) -> List[Finding]:
    """Exact static-vs-dynamic comparison; mismatches are findings."""
    findings: List[Finding] = []
    for field in sorted(set(prediction.counters) | set(dynamic)):
        if field in prediction.unpredicted:
            continue
        static_value = prediction.counters.get(field, 0.0)
        dynamic_value = float(dynamic.get(field, 0.0))
        if static_value != dynamic_value:
            findings.append(Finding(
                category=DIVERGENCE, severity=ERROR,
                message=(f"static≠dynamic counter divergence on "
                         f"{field!r}: predicted {static_value:g}, "
                         f"simulator measured {dynamic_value:g}"),
                detail={"field": field, "static": static_value,
                        "dynamic": dynamic_value}))
    return findings
