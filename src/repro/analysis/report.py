"""Typed findings and per-trace verification reports.

A :class:`Finding` is one verifier conclusion — a shared-memory race, an
out-of-bounds access, a performance smell, a static-vs-dynamic counter
divergence or a coverage gap.  A :class:`TraceReport` aggregates every
finding for one recorded kernel trace together with the static counter
prediction and its cross-check against the dynamic simulator counters.
Both round-trip losslessly to JSON (the store table, the CLI artifacts and
the daemon endpoint all serialise through ``to_dict``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: finding categories
RACE = "race"
BOUNDS = "bounds"
PERF = "perf"
DIVERGENCE = "divergence"
COVERAGE = "coverage"

CATEGORIES = (RACE, BOUNDS, PERF, DIVERGENCE, COVERAGE)

#: severities
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One verifier conclusion, anchored to a trace node and phase."""

    category: str             #: one of :data:`CATEGORIES`
    severity: str             #: ``"error"`` or ``"warning"``
    message: str              #: human-readable one-liner
    node: Optional[int] = None    #: trace node id the finding anchors to
    phase: Optional[int] = None   #: barrier phase of the finding
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "category": self.category,
            "severity": self.severity,
            "message": self.message,
            "node": self.node,
            "phase": self.phase,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            category=str(data["category"]),
            severity=str(data["severity"]),
            message=str(data["message"]),
            node=data.get("node"),
            phase=data.get("phase"),
            detail=dict(data.get("detail") or {}),
        )


@dataclass
class TraceReport:
    """Verification result of one recorded kernel trace."""

    kernel: str
    architecture: str
    grid_dim: Tuple[int, int, int]
    block_threads: int
    phases: int
    nodes: int
    accesses: int
    findings: List[Finding] = field(default_factory=list)
    #: statically predicted counter fields for the recorded chunk
    predicted_counters: Dict[str, float] = field(default_factory=dict)
    #: dynamic counters of the recorded chunk (when captured)
    dynamic_counters: Optional[Dict[str, float]] = None
    #: counter fields the static lint could not predict (data-dependent
    #: index or mask feeds them) — excluded from the cross-check
    unpredicted_fields: List[str] = field(default_factory=list)
    #: whether the concrete checks covered every block of the grid
    full_concrete_coverage: bool = True

    @property
    def ok(self) -> bool:
        """Zero findings of any severity."""
        return not self.findings

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def by_category(self) -> Dict[str, int]:
        counts = {category: 0 for category in CATEGORIES}
        for finding in self.findings:
            counts[finding.category] = counts.get(finding.category, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "architecture": self.architecture,
            "grid_dim": list(self.grid_dim),
            "block_threads": self.block_threads,
            "phases": self.phases,
            "nodes": self.nodes,
            "accesses": self.accesses,
            "findings": [f.to_dict() for f in self.findings],
            "predicted_counters": dict(self.predicted_counters),
            "dynamic_counters": (None if self.dynamic_counters is None
                                 else dict(self.dynamic_counters)),
            "unpredicted_fields": list(self.unpredicted_fields),
            "full_concrete_coverage": self.full_concrete_coverage,
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceReport":
        return cls(
            kernel=str(data["kernel"]),
            architecture=str(data["architecture"]),
            grid_dim=tuple(data["grid_dim"]),
            block_threads=int(data["block_threads"]),
            phases=int(data["phases"]),
            nodes=int(data["nodes"]),
            accesses=int(data["accesses"]),
            findings=[Finding.from_dict(f) for f in data.get("findings", [])],
            predicted_counters=dict(data.get("predicted_counters") or {}),
            dynamic_counters=(None if data.get("dynamic_counters") is None
                              else dict(data["dynamic_counters"])),
            unpredicted_fields=list(data.get("unpredicted_fields") or []),
            full_concrete_coverage=bool(
                data.get("full_concrete_coverage", True)),
        )

    def render(self) -> str:
        """Human-readable report for one trace."""
        gx, gy, gz = self.grid_dim
        lines = [
            f"{self.kernel} on {self.architecture} "
            f"grid=({gx},{gy},{gz}) threads={self.block_threads}: "
            f"{self.nodes} nodes, {self.accesses} accesses, "
            f"{self.phases} barrier phases",
        ]
        if not self.findings:
            lines.append("  clean: no race/bounds/perf/divergence findings")
        for finding in self.findings:
            where = []
            if finding.phase is not None:
                where.append(f"phase {finding.phase}")
            if finding.node is not None:
                where.append(f"node {finding.node}")
            location = f" [{', '.join(where)}]" if where else ""
            lines.append(f"  {finding.severity.upper()} {finding.category}"
                         f"{location}: {finding.message}")
        if self.dynamic_counters is not None:
            checked = sum(1 for k in self.predicted_counters
                          if k not in self.unpredicted_fields)
            lines.append(f"  cross-check: {checked} counter fields compared "
                         f"against the dynamic engine"
                         + (f" ({len(self.unpredicted_fields)} data-dependent"
                            f" fields skipped)"
                            if self.unpredicted_fields else ""))
        return "\n".join(lines)
