"""Barrier-phase partitioning and memory-access extraction from a trace.

The race detector, bounds checker and performance lint all consume the same
view of a recorded kernel body: the ordered list of global/shared memory
accesses, each tagged with its *phase* — the number of ``syncthreads``
barriers executed before it.  Accesses in different phases of the same
shared allocation are ordered by a barrier and can never race; everything
the verifier proves is phase-local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..trace.ir import Trace

#: address spaces
GLOBAL = "global"
SHARED = "shared"


@dataclass(frozen=True)
class Access:
    """One memory access node in phase/program order."""

    node: int                 #: trace node id of the access
    phase: int                #: barrier-delimited phase (syncs before it)
    space: str                #: GLOBAL or SHARED
    is_store: bool
    index: int                #: node id of the flat index expression
    mask: Optional[int]       #: node id of the guard mask, if masked
    value: Optional[int]      #: node id of the stored value (stores only)
    slot: Optional[int] = None    #: argument slot (global accesses)
    alloc: Optional[int] = None   #: alloc_shared node id (shared accesses)
    uniform: bool = False         #: warp-uniform shared access

    @property
    def extent_key(self) -> Tuple[str, int]:
        """Grouping key: which address range this access touches."""
        if self.space == GLOBAL:
            return (GLOBAL, self.slot)
        return (SHARED, self.alloc)


def extract_accesses(trace: Trace) -> Tuple[List[Access], int]:
    """``(accesses, num_phases)`` of a recorded trace, in program order."""
    accesses: List[Access] = []
    phase = 0
    for node in trace.nodes:
        if node.op == "sync":
            phase += 1
            continue
        masked = bool(node.params.get("masked"))
        if node.op == "load_global":
            accesses.append(Access(
                node=node.id, phase=phase, space=GLOBAL, is_store=False,
                index=node.inputs[0],
                mask=node.inputs[1] if masked else None,
                value=None, slot=node.params["slot"]))
        elif node.op == "store_global":
            accesses.append(Access(
                node=node.id, phase=phase, space=GLOBAL, is_store=True,
                index=node.inputs[0],
                mask=node.inputs[2] if masked else None,
                value=node.inputs[1], slot=node.params["slot"]))
        elif node.op == "load_shared":
            accesses.append(Access(
                node=node.id, phase=phase, space=SHARED, is_store=False,
                index=node.inputs[0],
                mask=node.inputs[1] if masked else None,
                value=None, alloc=node.params["shared"],
                uniform=bool(node.params.get("uniform"))))
        elif node.op == "store_shared":
            accesses.append(Access(
                node=node.id, phase=phase, space=SHARED, is_store=True,
                index=node.inputs[0],
                mask=node.inputs[2] if masked else None,
                value=node.inputs[1], alloc=node.params["shared"],
                uniform=bool(node.params.get("uniform"))))
    return accesses, phase + 1


def access_extent(trace: Trace, access: Access) -> Tuple[str, int]:
    """``(buffer_name, size_in_elements)`` of the accessed region."""
    if access.space == GLOBAL:
        info = trace.slot_info[access.slot]
        return str(info["name"]), int(info["size"])
    params = trace.nodes[access.alloc].params
    return str(params["name"]), int(params["size"])
