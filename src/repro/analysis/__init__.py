"""Metrics, report formatting, and the static kernel verifier.

Besides the original metric helpers and table formatters, this package
hosts the trace-IR static analysis: an interval engine over kernel index
expressions (:mod:`~repro.analysis.ranges`), a barrier-phase shared-memory
race detector (:mod:`~repro.analysis.races`), an access bounds checker
(:mod:`~repro.analysis.bounds`) and a performance lint that predicts the
simulator's coalescing/bank-conflict counters statically and cross-checks
them against the dynamic run (:mod:`~repro.analysis.lint`).  The one-call
entry points are :func:`verify_trace` for a single recorded trace and
:func:`analyze_scenario` for a whole registered scenario.
"""

from .metrics import (
    crossover_points,
    gcells_per_second,
    geometric_mean,
    gflops,
    speedup,
    winner,
)
from .ranges import Interval, RangeAnalysis
from .report import Finding, TraceReport
from .scenario import ScenarioAnalysis, analyze_scenario, run_analyze
from .tables import format_series, format_table
from .verify import verify_trace

__all__ = [
    "crossover_points",
    "gcells_per_second",
    "geometric_mean",
    "gflops",
    "speedup",
    "winner",
    "format_series",
    "format_table",
    "Interval",
    "RangeAnalysis",
    "Finding",
    "TraceReport",
    "ScenarioAnalysis",
    "analyze_scenario",
    "run_analyze",
    "verify_trace",
]
