"""Metrics, comparisons and report formatting."""

from .metrics import (
    crossover_points,
    gcells_per_second,
    geometric_mean,
    gflops,
    speedup,
    winner,
)
from .tables import format_series, format_table

__all__ = [
    "crossover_points",
    "gcells_per_second",
    "geometric_mean",
    "gflops",
    "speedup",
    "winner",
    "format_series",
    "format_table",
]
