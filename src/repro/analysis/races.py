"""Static shared-memory race detection over barrier-delimited phases.

Two shared-memory accesses race when they are in the same barrier phase,
touch the same address in some block, at least one is a store, and the
touching threads can be distinct.  Index expressions of the SSAM kernels
are data-free (pure functions of thread/block ids), so the detector checks
overlap *exactly* by evaluating per-thread index matrices over the grid
(:mod:`repro.analysis.concrete`); data-dependent indices degrade to a sound
interval-overlap warning.

Benign-by-construction overlaps are exempted:

* two contacts on the same address by the *same* thread (a thread may
  freely read back what it wrote);
* concurrent writes of provably **equal values** to the same address (the
  idempotent-broadcast pattern) — still reported when the values cannot be
  proven equal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..trace.ir import Trace
from .accesses import SHARED, Access, access_extent
from .concrete import index_matrix, mask_matrix
from .ranges import RangeAnalysis
from .report import ERROR, RACE, WARNING, Finding


def _flatten_active(keys: np.ndarray, tids: np.ndarray,
                    mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return keys[mask], tids[mask]


def _self_write_race(trace: Trace, access: Access, size: int,
                     idx: np.ndarray, mask: np.ndarray,
                     values: Optional[np.ndarray], name: str
                     ) -> Optional[Finding]:
    """Duplicate active targets within one store statement (W/W)."""
    B, T = idx.shape
    rows = np.broadcast_to(np.arange(B, dtype=np.int64)[:, None], (B, T))
    tids = np.broadcast_to(np.arange(T, dtype=np.int64), (B, T))
    keys, ktids = _flatten_active(rows * size + idx, tids, mask)
    if keys.size < 2:
        return None
    order = np.argsort(keys, kind="stable")
    keys, ktids = keys[order], ktids[order]
    dup = keys[1:] == keys[:-1]
    if values is not None:
        vals = np.broadcast_to(values, (B, T))[mask][order]
        dup = dup & (vals[1:] != vals[:-1])
    if not dup.any():
        return None
    at = int(np.argmax(dup))
    key = int(keys[at])
    block, address = divmod(key, size)
    threads = sorted({int(ktids[at]), int(ktids[at + 1])})
    qualifier = ("different values" if values is not None
                 else "values not statically comparable")
    return Finding(
        category=RACE, severity=ERROR,
        message=(f"write/write race on {name!r}: store writes address "
                 f"{address} from threads {threads} of block {block} in the "
                 f"same statement ({qualifier})"),
        node=access.node, phase=access.phase,
        detail={"kind": "write-write", "buffer": name, "block": block,
                "address": address, "threads": threads,
                "nodes": [access.node]})


def _unique_contacts(keys: np.ndarray, tids: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per distinct key: (keys, contact counts, a representative thread)."""
    order = np.argsort(keys, kind="stable")
    keys, tids = keys[order], tids[order]
    uniq, first, counts = np.unique(keys, return_index=True,
                                    return_counts=True)
    return uniq, counts, tids[first]


def _pair_race(trace: Trace, a: Access, b: Access, size: int,
               idx_a: np.ndarray, mask_a: np.ndarray,
               idx_b: np.ndarray, mask_b: np.ndarray,
               values_a: Optional[np.ndarray],
               values_b: Optional[np.ndarray], name: str
               ) -> Optional[Finding]:
    """Cross-statement same-phase conflict on a shared allocation."""
    B, T = idx_a.shape
    rows = np.broadcast_to(np.arange(B, dtype=np.int64)[:, None], (B, T))
    tids = np.broadcast_to(np.arange(T, dtype=np.int64), (B, T))
    keys_a, tids_a = _flatten_active(rows * size + idx_a, tids, mask_a)
    keys_b, tids_b = _flatten_active(rows * size + idx_b, tids, mask_b)
    if keys_a.size == 0 or keys_b.size == 0:
        return None
    ua, ca, ta = _unique_contacts(keys_a, tids_a)
    ub, cb, tb = _unique_contacts(keys_b, tids_b)
    common, ia, ib = np.intersect1d(ua, ub, assume_unique=True,
                                    return_indices=True)
    if common.size == 0:
        return None
    # a common address is benign only when its sole contact on each side is
    # the identical thread
    racy = (ca[ia] > 1) | (cb[ib] > 1) | (ta[ia] != tb[ib])
    if not racy.any():
        return None
    both_stores = a.is_store and b.is_store
    if both_stores and values_a is not None and values_b is not None:
        va = np.broadcast_to(values_a, (B, T))
        vb = np.broadcast_to(values_b, (B, T))
        still_racy = []
        for key in common[racy]:
            block, address = divmod(int(key), size)
            sa = va[block][mask_a[block] & (idx_a[block] == address)]
            sb = vb[block][mask_b[block] & (idx_b[block] == address)]
            written = np.concatenate([sa, sb])
            if written.size and not np.all(written == written[0]):
                still_racy.append(int(key))
        if not still_racy:
            return None
        key = still_racy[0]
    else:
        key = int(common[racy][0])
    block, address = divmod(key, size)
    threads_a = np.unique(tids[mask_a & (idx_a == np.int64(address))
                               & (rows == block)])
    threads_b = np.unique(tids[mask_b & (idx_b == np.int64(address))
                               & (rows == block)])
    kind = ("write-write" if both_stores
            else "read-write" if b.is_store else "write-read")
    first_op = "store" if a.is_store else "load"
    second_op = "store" if b.is_store else "load"
    return Finding(
        category=RACE, severity=ERROR,
        message=(f"{kind} race on {name!r}: {first_op} (node {a.node}) and "
                 f"{second_op} (node {b.node}) touch address {address} of "
                 f"block {block} from distinct threads "
                 f"{sorted(set(threads_a.tolist()) | set(threads_b.tolist()))[:6]} "
                 f"with no barrier between them"),
        node=b.node, phase=a.phase,
        detail={"kind": kind, "buffer": name, "block": block,
                "address": address, "nodes": [a.node, b.node],
                "threads_first": threads_a.tolist()[:8],
                "threads_second": threads_b.tolist()[:8]})


def _interval_warning(trace: Trace, ranges: RangeAnalysis, a: Access,
                      b: Access, name: str) -> Optional[Finding]:
    """Sound fallback when either side is data-dependent."""
    ia = ranges.guarded_interval(a.index, a.mask)
    ib = ranges.guarded_interval(b.index, b.mask)
    if not ia.overlaps(ib):
        return None
    return Finding(
        category=RACE, severity=WARNING,
        message=(f"potential race on {name!r}: accesses at nodes {a.node} "
                 f"and {b.node} have data-dependent indices with "
                 f"overlapping ranges [{ia.lo:g}, {ia.hi:g}] and "
                 f"[{ib.lo:g}, {ib.hi:g}] in the same barrier phase"),
        node=b.node, phase=a.phase,
        detail={"kind": "data-dependent", "buffer": name,
                "nodes": [a.node, b.node],
                "range_first": ia.to_tuple(), "range_second": ib.to_tuple()})


def check_races(trace: Trace, ranges: RangeAnalysis,
                env: Dict[int, np.ndarray], accesses: List[Access],
                num_blocks: int) -> List[Finding]:
    """All shared-memory race findings of one trace.

    ``env`` is the concrete data-free environment over ``num_blocks`` grid
    blocks (see :func:`repro.analysis.concrete.evaluate_data_free`).
    """
    threads = trace.block_threads
    findings: List[Finding] = []
    shared = [a for a in accesses if a.space == SHARED]
    by_group: Dict[Tuple[int, int], List[Access]] = {}
    for access in shared:
        by_group.setdefault((access.alloc, access.phase), []).append(access)

    def matrices(access: Access):
        idx = index_matrix(env, access.index, num_blocks, threads)
        mask = mask_matrix(env, access.mask, num_blocks, threads)
        value = (env.get(access.value)
                 if access.value is not None else None)
        return idx, mask, value

    for (alloc, _phase), group in sorted(by_group.items()):
        name, size = access_extent(trace, group[0])
        for i, a in enumerate(group):
            idx_a, mask_a, values_a = matrices(a)
            if a.is_store:
                if idx_a is not None and mask_a is not None:
                    finding = _self_write_race(trace, a, size, idx_a, mask_a,
                                               values_a, name)
                    if finding is not None:
                        findings.append(finding)
            for b in group[i + 1:]:
                if not (a.is_store or b.is_store):
                    continue
                idx_b, mask_b, values_b = matrices(b)
                if (idx_a is not None and mask_a is not None
                        and idx_b is not None and mask_b is not None):
                    finding = _pair_race(trace, a, b, size, idx_a, mask_a,
                                         idx_b, mask_b, values_a, values_b,
                                         name)
                else:
                    finding = _interval_warning(trace, ranges, a, b, name)
                if finding is not None:
                    findings.append(finding)
    return findings
