"""Static bounds checking of every global/shared memory access.

For each access the checker first tries to *prove* the index within the
allocation extent by interval reasoning (mask constraints refine the
range); failing a proof it evaluates the index concretely over the grid and
checks exactly.  The eager engines raise on any out-of-range lane — even a
masked-off one — so a violation that only occurs on inactive lanes is
reported as a warning (it crashes the simulator but carries no live data),
while an active-lane violation is an error with the offending block/thread
and the violating range.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..trace.ir import Trace
from .accesses import Access
from .concrete import index_matrix, mask_matrix
from .ranges import Interval, RangeAnalysis
from .report import BOUNDS, ERROR, WARNING, Finding


def _describe(access: Access) -> str:
    kind = "store" if access.is_store else "load"
    return f"{access.space} {kind}"


def _concrete_check(trace: Trace, access: Access, name: str, size: int,
                    idx: np.ndarray, mask: Optional[np.ndarray],
                    full_coverage: bool) -> Optional[Finding]:
    oob = (idx < 0) | (idx >= size)
    if not oob.any():
        if full_coverage:
            return None
        return Finding(
            category=BOUNDS, severity=WARNING,
            message=(f"{_describe(access)} on {name!r} could not be proven "
                     f"in bounds: concrete check passed on a sample of "
                     f"blocks only and the index range is not statically "
                     f"bounded by the extent {size}"),
            node=access.node, phase=access.phase,
            detail={"buffer": name, "size": size, "sampled": True})
    lo, hi = int(idx.min()), int(idx.max())
    blocks, threads = np.nonzero(oob)
    block, thread = int(blocks[0]), int(threads[0])
    value = int(idx[block, thread])
    active_oob = oob if mask is None else (oob & mask)
    if mask is not None and not active_oob.any():
        return Finding(
            category=BOUNDS, severity=WARNING,
            message=(f"{_describe(access)} on {name!r} computes index "
                     f"{value} outside [0, {size}) on masked-off lanes "
                     f"(block {block}, thread {thread}); the eager engines "
                     f"reject out-of-range addresses even when inactive"),
            node=access.node, phase=access.phase,
            detail={"buffer": name, "size": size, "block": block,
                    "thread": thread, "index": value,
                    "index_range": [lo, hi], "masked_only": True})
    if mask is not None:
        blocks, threads = np.nonzero(active_oob)
        block, thread = int(blocks[0]), int(threads[0])
        value = int(idx[block, thread])
    return Finding(
        category=BOUNDS, severity=ERROR,
        message=(f"out-of-bounds {_describe(access)} on {name!r}: index "
                 f"{value} at block {block}, thread {thread} is outside "
                 f"[0, {size}) (observed index range [{lo}, {hi}])"),
        node=access.node, phase=access.phase,
        detail={"buffer": name, "size": size, "block": block,
                "thread": thread, "index": value, "index_range": [lo, hi],
                "masked_only": False})


def _interval_check(access: Access, name: str, size: int,
                    guarded: Interval, plain: Interval) -> Optional[Finding]:
    extent = Interval(0.0, float(size - 1))
    if guarded.empty or not guarded.overlaps(extent):
        if guarded.empty:
            return None  # unsatisfiable mask: no live access
        return Finding(
            category=BOUNDS, severity=ERROR,
            message=(f"out-of-bounds {_describe(access)} on {name!r}: the "
                     f"index range [{guarded.lo:g}, {guarded.hi:g}] is "
                     f"entirely outside [0, {size})"),
            node=access.node, phase=access.phase,
            detail={"buffer": name, "size": size,
                    "index_range": guarded.to_tuple()})
    return Finding(
        category=BOUNDS, severity=WARNING,
        message=(f"{_describe(access)} on {name!r} could not be proven in "
                 f"bounds: data-dependent index with range "
                 f"[{plain.lo:g}, {plain.hi:g}] against extent {size}"),
        node=access.node, phase=access.phase,
        detail={"buffer": name, "size": size,
                "index_range": plain.to_tuple()})


def check_bounds(trace: Trace, ranges: RangeAnalysis,
                 env: Dict[int, np.ndarray], accesses: List[Access],
                 num_blocks: int, full_coverage: bool) -> List[Finding]:
    """Bounds findings for every access of one trace."""
    from .accesses import access_extent

    threads = trace.block_threads
    findings: List[Finding] = []
    for access in accesses:
        name, size = access_extent(trace, access)
        guarded = ranges.guarded_interval(access.index, access.mask)
        plain = ranges.interval(access.index)
        # interval proof covers the whole grid in one shot
        if (not plain.empty and plain.lo >= 0.0
                and plain.hi <= float(size - 1)):
            continue
        idx = index_matrix(env, access.index, num_blocks, threads)
        if idx is not None:
            mask = mask_matrix(env, access.mask, num_blocks, threads)
            finding = _concrete_check(trace, access, name, size, idx, mask,
                                      full_coverage)
        elif (not guarded.empty and guarded.lo >= 0.0
                and guarded.hi <= float(size - 1)):
            continue  # every *active* lane is proven in bounds
        else:
            finding = _interval_check(access, name, size, guarded, plain)
        if finding is not None:
            findings.append(finding)
    return findings
