"""``verify_trace`` — one-call static verification of a recorded trace.

Orchestrates the index-range engine, the shared-memory race detector, the
bounds checker and the performance lint over one
:class:`~repro.trace.ir.Trace`, producing a
:class:`~repro.analysis.report.TraceReport`.  Concrete checks evaluate the
data-free environment over the **full grid** when it is small enough
(every block is checked, including blocks the recorded chunk never
executed); larger grids are sampled from both ends of the launch order and
the report carries a coverage finding so a partial check can never be
mistaken for a proof.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..gpu.architecture import get_architecture
from ..trace.ir import Trace
from .accesses import extract_accesses
from .bounds import check_bounds
from .concrete import evaluate_data_free
from .lint import cross_check, predict_counters
from .races import check_races
from .ranges import RangeAnalysis
from .report import COVERAGE, Finding, TraceReport, WARNING

#: largest grid (in blocks) checked concretely in full
MAX_CONCRETE_BLOCKS = 4096


def _grid_blocks(grid_dim: Tuple[int, int, int],
                 max_blocks: int) -> Tuple[np.ndarray, bool]:
    """Block-index matrix for concrete checks + full-coverage flag."""
    from ..trace.replay import _block_index_matrix

    matrix = _block_index_matrix(grid_dim)
    total = matrix.shape[0]
    if total <= max_blocks:
        return matrix, True
    # sample both ends: boundary blocks (where halo/off-by-one bugs live)
    # come from the tail, steady-state blocks from the head
    head = matrix[:max_blocks // 2]
    tail = matrix[total - (max_blocks - head.shape[0]):]
    return np.ascontiguousarray(np.concatenate([head, tail])), False


def verify_trace(trace: Trace, grid_dim: Tuple[int, int, int],
                 architecture: object = "p100", *,
                 chunk_blocks: Optional[np.ndarray] = None,
                 dynamic_counters: Optional[Dict[str, float]] = None,
                 count_traffic: bool = True,
                 kernel_name: str = "",
                 max_concrete_blocks: int = MAX_CONCRETE_BLOCKS
                 ) -> TraceReport:
    """Statically verify one recorded kernel trace.

    Parameters
    ----------
    trace:
        The recorded dataflow IR (from
        :func:`repro.trace.replay.record_trace` or a capture context).
    grid_dim:
        Launch grid; the verifier checks **all** blocks of this grid, not
        just the recorded chunk.
    chunk_blocks:
        Block-index matrix of the recorded chunk.  When given, the static
        counter prediction is evaluated over exactly these blocks so it is
        directly comparable to the chunk's dynamic counters.
    dynamic_counters:
        Counter deltas the eager engine accumulated while recording the
        chunk; any static≠dynamic disagreement becomes a ``divergence``
        finding.
    """
    arch = get_architecture(architecture)
    ranges = RangeAnalysis(trace, grid_dim)
    accesses, phases = extract_accesses(trace)
    grid_matrix, full_coverage = _grid_blocks(grid_dim, max_concrete_blocks)
    env = evaluate_data_free(trace, grid_matrix)
    num_blocks = grid_matrix.shape[0]

    findings = []
    findings.extend(check_races(trace, ranges, env, accesses, num_blocks))
    findings.extend(check_bounds(trace, ranges, env, accesses, num_blocks,
                                 full_coverage))
    if not full_coverage:
        total = int(np.prod(grid_dim, dtype=np.int64))
        findings.append(Finding(
            category=COVERAGE, severity=WARNING,
            message=(f"concrete checks sampled {num_blocks} of {total} "
                     f"blocks (head and tail of the launch order); "
                     f"interval results still cover the full grid"),
            detail={"checked_blocks": num_blocks, "total_blocks": total}))

    predicted: Dict[str, float] = {}
    unpredicted = []
    if chunk_blocks is not None:
        chunk_blocks = np.asarray(chunk_blocks, dtype=np.int64)
        chunk_env = evaluate_data_free(trace, chunk_blocks)
        prediction = predict_counters(trace, chunk_env,
                                      int(chunk_blocks.shape[0]), arch,
                                      count_traffic=count_traffic)
        predicted = dict(prediction.counters)
        unpredicted = sorted(prediction.unpredicted)
        findings.extend(prediction.findings)
        if dynamic_counters is not None:
            findings.extend(cross_check(prediction, dynamic_counters))

    return TraceReport(
        kernel=kernel_name or "kernel",
        architecture=arch.name,
        grid_dim=tuple(int(g) for g in grid_dim),
        block_threads=trace.block_threads,
        phases=phases,
        nodes=len(trace.nodes),
        accesses=len(accesses),
        findings=findings,
        predicted_counters=predicted,
        dynamic_counters=(None if dynamic_counters is None
                          else dict(dynamic_counters)),
        unpredicted_fields=unpredicted,
        full_concrete_coverage=full_coverage,
    )
