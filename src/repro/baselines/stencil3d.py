"""3-D stencil baselines ("original" and shared-memory tiling) for Figure 5.

The naive kernel assigns one output point per thread with no staging
(functional + analytic); the shared-memory variant models the classic
2.5-D tiling in which each block stages a z-slab tile and streams through z
(analytic — its traffic/scratchpad profile is what matters for the figure).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.block import BlockContext
from ..gpu.counters import KernelCounters
from ..gpu.kernel import Kernel, LaunchConfig, LaunchResult
from ..gpu.memory import DeviceBuffer, GlobalMemory
from ..kernels.common import KernelRunResult, check_grid3d, clamp
from ..stencils.spec import StencilSpec


def _analytic_result(name, counters, config, architecture, parameters) -> KernelRunResult:
    launch = LaunchResult(kernel_name=name, config=config, architecture=architecture,
                          counters=counters, blocks_executed=0, sampled=True,
                          sample_fraction=0.0)
    return KernelRunResult(name=name, output=None, launch=launch, parameters=parameters)


def _naive3d_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
                   points: Tuple[Tuple[int, int, int, float], ...],
                   width: int, height: int, depth: int) -> None:
    gx = ctx.block_idx_x * ctx.block_threads + ctx.thread_idx_x
    gy = ctx.block_idx_y
    gz = ctx.block_idx_z
    mask = gx < width
    plane = width * height
    total = ctx.zeros()
    for dx, dy, dz, coefficient in points:
        row = clamp(gy + dy, 0, height - 1)
        slab = clamp(gz + dz, 0, depth - 1)
        col = clamp(gx + dx, 0, width - 1)
        value = ctx.load_global(src, slab * plane + row * width + col, mask=mask)
        ctx.overhead(1.0)
        total = ctx.mad(value, ctx.full(coefficient), total)
    ctx.store_global(dst, gz * plane + gy * width + clamp(gx, 0, width - 1), total, mask=mask)


NAIVE_STENCIL3D_KERNEL = Kernel(_naive3d_block, name="original_stencil3d")


def original_stencil3d(grid: Optional[np.ndarray], spec: StencilSpec, iterations: int = 1,
                       architecture: object = "p100", precision: object = "float32",
                       block_threads: int = 128, functional: bool = True,
                       width: Optional[int] = None, height: Optional[int] = None,
                       depth: Optional[int] = None,
                       max_blocks: Optional[int] = None,
                       batch_size: object = "auto") -> KernelRunResult:
    """Naive one-output-per-thread 3-D stencil baseline."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if spec.dims != 3:
        raise ConfigurationError("original_stencil3d expects a 3-D stencil")
    if functional:
        grid = check_grid3d(grid)
        depth, height, width = grid.shape
    if width is None or height is None or depth is None:
        raise ConfigurationError("width/height/depth are required when functional=False")
    launch_grid = (math.ceil(width / block_threads), height, depth)
    config = LaunchConfig(grid_dim=launch_grid, block_threads=block_threads,
                         registers_per_thread=32 + spec.num_points // 4,
                         shared_bytes_per_block=0, precision=prec, memory_parallelism=3.0)
    parameters = {"stencil": spec.name, "iterations": iterations,
                  "architecture": arch.name, "precision": prec.name}
    points = tuple((p.dx, p.dy, p.dz, float(p.coefficient)) for p in spec.points)
    if functional:
        memory = GlobalMemory()
        buffers = [memory.to_device(grid.astype(prec.numpy_dtype, copy=True), name="a"),
                   memory.allocate(grid.shape, prec, name="b")]
        merged = None
        for step in range(iterations):
            src, dst = buffers[step % 2], buffers[(step + 1) % 2]
            launch = NAIVE_STENCIL3D_KERNEL.launch(
                config, args=(src, dst, points, width, height, depth), architecture=arch,
                max_blocks=max_blocks, batch_size=batch_size)
            merged = launch if merged is None else merged.merged_with(launch)
        output = None if max_blocks is not None else buffers[iterations % 2].to_host()
        return KernelRunResult(name="original", output=output, launch=merged,
                               parameters=parameters)
    blocks = launch_grid[0] * launch_grid[1] * launch_grid[2]
    warps_per_block = block_threads // arch.warp_size
    total_warps = blocks * warps_per_block
    taps = spec.num_points
    sectors = math.ceil(32 * prec.itemsize / 128)
    counters = KernelCounters(
        fma=taps * total_warps * iterations,
        misc=taps * total_warps * iterations,
        gmem_load=taps * total_warps * iterations,
        gmem_load_transactions=taps * total_warps * (sectors + 1) * iterations,
        gmem_store=total_warps * iterations,
        gmem_store_transactions=total_warps * sectors * iterations,
        dram_read_bytes=float(blocks * spec.footprint_depth * spec.footprint_height
                              * (block_threads + spec.footprint_width - 1)
                              * prec.itemsize * iterations),
        dram_write_bytes=float(width * height * depth * prec.itemsize * iterations),
        blocks_executed=blocks * iterations,
        warps_executed=total_warps * iterations,
    )
    parameters["analytic"] = True
    return _analytic_result("original", counters, config, arch, parameters)


def shared_stencil3d(spec: StencilSpec, width: int, height: int, depth: int,
                     iterations: int = 1, architecture: object = "p100",
                     precision: object = "float32", tile_rows: int = 8) -> KernelRunResult:
    """2.5-D shared-memory tiling cost model (each block streams through z).

    The block keeps ``footprint_depth`` slices of a ``32 x tile_rows`` tile
    (+halo) staged in the scratchpad; every tap is an smem read.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if spec.dims != 3:
        raise ConfigurationError("shared_stencil3d expects a 3-D stencil")
    x_min, x_max = spec.x_range
    y_min, y_max = spec.y_range
    halo_x, halo_y = x_max - x_min, y_max - y_min
    block_threads = 32 * tile_rows
    staged_per_slice = (tile_rows + halo_y) * (32 + halo_x)
    slices_staged = spec.footprint_depth
    smem_bytes = staged_per_slice * slices_staged * prec.itemsize
    launch_grid = (math.ceil(width / 32), math.ceil(height / tile_rows), 1)
    blocks = launch_grid[0] * launch_grid[1]
    warps_per_block = block_threads // arch.warp_size
    total_warps = blocks * warps_per_block * depth  # one pass of the z stream per slice
    taps = spec.num_points
    staging_iters = math.ceil(staged_per_slice / block_threads)
    sectors = math.ceil(32 * prec.itemsize / 128)
    config = LaunchConfig(grid_dim=launch_grid, block_threads=block_threads,
                         registers_per_thread=40,
                         shared_bytes_per_block=min(smem_bytes, arch.shared_memory_per_block),
                         precision=prec, memory_parallelism=3.0)
    # ppcg's default (non-streaming) schedule re-stages the full
    # footprint_depth-slice tile for every output plane, so the z halo is
    # re-read rather than kept resident
    counters = KernelCounters(
        fma=taps * total_warps * iterations,
        smem_load=taps * total_warps * iterations,
        smem_store=staging_iters * slices_staged * blocks * warps_per_block * depth * iterations,
        gmem_load=staging_iters * slices_staged * blocks * warps_per_block * depth * iterations,
        gmem_load_transactions=staging_iters * slices_staged * blocks * warps_per_block * depth
        * (sectors + 1) * iterations,
        gmem_store=total_warps * iterations,
        gmem_store_transactions=total_warps * sectors * iterations,
        sync=2.0 * blocks * warps_per_block * depth * iterations,
        dram_read_bytes=float(blocks * staged_per_slice * slices_staged * depth
                              * prec.itemsize * iterations),
        dram_write_bytes=float(width * height * depth * prec.itemsize * iterations),
        blocks_executed=blocks * iterations,
        warps_executed=total_warps * iterations,
    )
    parameters = {"stencil": spec.name, "iterations": iterations, "tile_rows": tile_rows,
                  "architecture": arch.name, "precision": prec.name, "analytic": True}
    return _analytic_result("ppcg", counters, config, arch, parameters)
