"""Temporal-blocking comparison set for Figure 6.

* :func:`stencilgen_like_stencil` — shared-memory temporal blocking in the
  style of StencilGen: a block stages a tile plus a halo that grows with the
  temporal depth T, performs T stencil steps entirely in the scratchpad, and
  only then writes back, cutting DRAM traffic by ~T at the price of T times
  the scratchpad work and redundant halo compute.
* :func:`ssam_temporal_stencil` — the SSAM equivalent: T steps kept in the
  register cache (Section 6.4 notes SSAM admits temporal blocking without
  changing the model); the register budget bounds T.
* :data:`PUBLISHED_REFERENCES` — the throughput numbers the paper quotes for
  Diffusion (Zohouri et al.) and Bricks (Zhao et al.), used as horizontal
  reference lines because those systems are not publicly available.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.counters import KernelCounters
from ..gpu.kernel import LaunchConfig, LaunchResult
from ..gpu.register_file import registers_for_cache
from ..kernels.common import KernelRunResult
from ..stencils.spec import StencilSpec


def _analytic_result(name, counters, config, architecture, parameters) -> KernelRunResult:
    launch = LaunchResult(kernel_name=name, config=config, architecture=architecture,
                          counters=counters, blocks_executed=0, sampled=True,
                          sample_fraction=0.0)
    return KernelRunResult(name=name, output=None, launch=launch, parameters=parameters)


#: GCells/s reported in Section 6.4 for systems that are not publicly available
PUBLISHED_REFERENCES: Dict[str, Dict[str, float]] = {
    "diffusion": {  # Zohouri et al. 3d7pt
        "p100-float32": 92.7, "v100-float32": 162.4,
        "p100-float64": 30.6, "v100-float64": 46.9,
    },
    "bricks": {  # Zhao et al., P100 only
        "p100-float32": 41.4, "p100-float64": 24.25,
    },
}


def published_reference(system: str, architecture: object,
                        precision: object = "float32") -> Optional[float]:
    """Look up a published GCells/s reference value (None if not reported)."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    key = f"{'p100' if arch.generation == 'pascal' else 'v100'}-{prec.name}"
    return PUBLISHED_REFERENCES.get(system, {}).get(key)


def _domain_cells(spec: StencilSpec, width: int, height: int, depth: int) -> int:
    return width * height * (depth if spec.dims == 3 else 1)


def stencilgen_like_stencil(spec: StencilSpec, width: int, height: int, depth: int = 1,
                            time_steps: int = 200, temporal_depth: int = 4,
                            architecture: object = "p100",
                            precision: object = "float32",
                            tile_rows: int = 8) -> KernelRunResult:
    """StencilGen-style shared-memory temporal blocking cost model."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if temporal_depth < 1:
        raise ConfigurationError("temporal depth must be >= 1")
    k = spec.order
    taps = spec.num_points
    halo = 2 * k * temporal_depth
    tile_cols = 32
    block_threads = 32 * tile_rows
    staged = (tile_rows + halo) * (tile_cols + halo) * (spec.footprint_depth if spec.dims == 3 else 1)
    smem_bytes = min(2 * staged * prec.itemsize, arch.shared_memory_per_block)
    planes = depth if spec.dims == 3 else 1
    launch_grid = (math.ceil(width / tile_cols), math.ceil(height / tile_rows),
                   max(1, math.ceil(planes / 1)))
    blocks = launch_grid[0] * launch_grid[1] * (launch_grid[2] if spec.dims == 3 else 1)
    warps_per_block = block_threads // arch.warp_size
    total_warps = blocks * warps_per_block
    cells = _domain_cells(spec, width, height, depth)
    rounds = math.ceil(time_steps / temporal_depth)
    # redundant compute on the shrinking halo region
    redundancy = ((tile_rows + halo) * (tile_cols + halo)) / float(tile_rows * tile_cols)
    sectors = math.ceil(32 * prec.itemsize / 128)
    counters = KernelCounters(
        fma=taps * temporal_depth * redundancy * total_warps * rounds,
        smem_load=taps * temporal_depth * redundancy * total_warps * rounds,
        smem_store=temporal_depth * redundancy * total_warps * rounds,
        gmem_load=math.ceil(staged / block_threads) * warps_per_block * blocks * rounds,
        gmem_load_transactions=math.ceil(staged / block_threads) * warps_per_block * blocks
        * (sectors + 1) * rounds,
        gmem_store=total_warps * rounds,
        gmem_store_transactions=total_warps * sectors * rounds,
        sync=2.0 * temporal_depth * warps_per_block * blocks * rounds,
        dram_read_bytes=float(blocks * staged * prec.itemsize * rounds),
        dram_write_bytes=float(cells * prec.itemsize * rounds),
        blocks_executed=blocks * rounds,
        warps_executed=total_warps * rounds,
    )
    config = LaunchConfig(grid_dim=launch_grid, block_threads=block_threads,
                         registers_per_thread=56, shared_bytes_per_block=smem_bytes,
                         precision=prec, memory_parallelism=3.0)
    parameters = {"stencil": spec.name, "time_steps": time_steps,
                  "temporal_depth": temporal_depth, "architecture": arch.name,
                  "precision": prec.name, "analytic": True}
    return _analytic_result("stencilgen", counters, config, arch, parameters)


def max_register_temporal_depth(spec: StencilSpec, architecture: object,
                                precision: object = "float32",
                                outputs_per_thread: int = 4) -> int:
    """Largest useful temporal depth for register-level temporal blocking.

    Bounded both by the register budget (the cache grows by ``2k`` rows per
    fused step) and by the warp width: every fused step also widens the
    in-warp halo by ``2k`` lanes, and past roughly half the warp the
    redundant lanes cost more than the saved DRAM traffic.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    k = spec.order
    best = 1
    depth = 1
    while depth < 8:
        cache = spec.footprint_height + outputs_per_thread - 1 + 2 * k * depth
        registers = registers_for_cache(cache, outputs_per_thread * (depth + 1), prec)
        lane_halo = (spec.footprint_width - 1) + 2 * k * depth
        if registers > arch.max_registers_per_thread or lane_halo > arch.warp_size // 2:
            break
        best = depth + 1
        depth += 1
    return best


def ssam_temporal_stencil(spec: StencilSpec, width: int, height: int, depth: int = 1,
                          time_steps: int = 200, temporal_depth: Optional[int] = None,
                          architecture: object = "p100", precision: object = "float32",
                          outputs_per_thread: int = 4,
                          block_threads: int = 128) -> KernelRunResult:
    """SSAM with register-level temporal blocking (the Figure 6 configuration)."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if temporal_depth is None:
        temporal_depth = max_register_temporal_depth(spec, arch, prec, outputs_per_thread)
    k = spec.order
    taps = spec.num_points
    m_extent = spec.footprint_width + 2 * k * (temporal_depth - 1)
    m_extent = min(m_extent, arch.warp_size - 1)
    valid_x = arch.warp_size - m_extent + 1
    cache_rows = spec.footprint_height + outputs_per_thread - 1 + 2 * k * (temporal_depth - 1)
    warps_per_block = block_threads // arch.warp_size
    planes = depth if spec.dims == 3 else 1
    grid = (math.ceil(width / (warps_per_block * valid_x)),
            math.ceil(height / outputs_per_thread),
            max(1, planes if spec.dims == 3 else 1))
    if spec.dims == 3:
        grid = (math.ceil(width / valid_x), math.ceil(height / outputs_per_thread),
                math.ceil(planes / warps_per_block))
    blocks = grid[0] * grid[1] * grid[2]
    total_warps = blocks * warps_per_block
    cells = _domain_cells(spec, width, height, depth)
    rounds = math.ceil(time_steps / temporal_depth)
    lane_redundancy = arch.warp_size / float(valid_x)
    columns = len(spec.columns())
    sectors = math.ceil(32 * prec.itemsize / 128)
    registers = registers_for_cache(cache_rows, outputs_per_thread * temporal_depth, prec)
    registers = min(registers, arch.max_registers_per_thread)
    counters = KernelCounters(
        fma=taps * temporal_depth * outputs_per_thread * lane_redundancy
        * total_warps * rounds / (1.0 if spec.dims == 2 else 1.0),
        shfl=(columns - 1 + 2 * k * (temporal_depth - 1)) * outputs_per_thread
        * total_warps * rounds,
        smem_load=(temporal_depth - 1) * outputs_per_thread * total_warps * rounds
        if spec.dims == 3 else 0.0,
        gmem_load=cache_rows * total_warps * rounds,
        gmem_load_transactions=cache_rows * total_warps * sectors * rounds,
        gmem_store=outputs_per_thread * total_warps * rounds,
        gmem_store_transactions=outputs_per_thread * total_warps * sectors * rounds,
        dram_read_bytes=float(blocks * cache_rows
                              * (warps_per_block * valid_x + m_extent - 1)
                              * prec.itemsize * rounds),
        dram_write_bytes=float(cells * prec.itemsize * rounds),
        blocks_executed=blocks * rounds,
        warps_executed=total_warps * rounds,
    )
    config = LaunchConfig(grid_dim=grid, block_threads=block_threads,
                         registers_per_thread=registers, shared_bytes_per_block=0,
                         precision=prec, memory_parallelism=float(cache_rows))
    parameters = {"stencil": spec.name, "time_steps": time_steps,
                  "temporal_depth": temporal_depth, "architecture": arch.name,
                  "precision": prec.name, "analytic": True}
    return _analytic_result("ssam", counters, config, arch, parameters)
