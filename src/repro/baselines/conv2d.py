"""Convolution baselines: the libraries SSAM is compared against in Figure 4.

Each baseline re-implements, on the simulated GPU substrate, the *memory
path* of the corresponding library so that its bottleneck is the same one
the real library hits:

* :func:`npp_like_convolve2d` — one thread per output, no on-chip staging,
  every tap read through the global/L1 path (NPP's general filter kernels).
* :func:`arrayfire_like_convolve2d` — block tile + halo staged in shared
  memory, one output per thread, taps read from the scratchpad
  (``kernel::convolve2`` in ArrayFire).  Filter sizes above 16x16 are
  rejected exactly like the real library.
* :func:`halide_like_convolve2d` — the same scratchpad scheme with a small
  auto-scheduled tile and extra per-tap addressing overhead, standing in for
  Halide's generated pipeline.
* :func:`cudnn_like_convolve2d` — implicit-GEMM formulation (cuDNN); for a
  single-channel single-filter workload the GEMM runs at a small fraction of
  peak, which is why cuDNN loses on this benchmark.
* :func:`cufft_like_convolve2d` — FFT-based convolution (cuFFT): a large,
  filter-size-independent cost.

Every function returns a :class:`~repro.kernels.common.KernelRunResult`;
functional outputs are produced for the kernels that execute on the
substrate, and an ``analytic_launch``-style path (``functional=False``)
skips execution for paper-scale estimates.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..convolution.spec import ConvolutionSpec
from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.block import BlockContext
from ..gpu.counters import KernelCounters
from ..gpu.kernel import Kernel, LaunchConfig, LaunchResult
from ..gpu.memory import DeviceBuffer
from .cpu_reference import convolve2d_fft_reference
from ..kernels.common import (
    KernelRunResult,
    check_image,
    clamp,
    make_device_pair,
    require_edge_boundary,
)

#: ArrayFire's undocumented filter-size ceiling (Section 6.2 (i))
ARRAYFIRE_MAX_FILTER = 16


def _analytic_result(name: str, counters: KernelCounters, config: LaunchConfig,
                     architecture, parameters: Dict[str, object]) -> KernelRunResult:
    launch = LaunchResult(
        kernel_name=name,
        config=config,
        architecture=architecture,
        counters=counters,
        blocks_executed=0,
        sampled=True,
        sample_fraction=0.0,
    )
    return KernelRunResult(name=name, output=None, launch=launch, parameters=parameters)


# ---------------------------------------------------------------------------
# NPP-like: naive per-output kernel, no staging
# ---------------------------------------------------------------------------

def _npp_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
               weights: Tuple[float, ...], width: int, height: int,
               filter_width: int, filter_height: int, anchor_x: int, anchor_y: int) -> None:
    gx = ctx.block_idx_x * ctx.block_threads + ctx.thread_idx_x
    gy = ctx.block_idx_y
    mask = gx < width
    safe_x_out = clamp(gx, 0, width - 1)
    total = ctx.zeros()
    for n in range(filter_height):
        row = clamp(gy + n - anchor_y, 0, height - 1)
        for m in range(filter_width):
            col = clamp(gx + m - anchor_x, 0, width - 1)
            value = ctx.load_global(src, row * width + col, mask=mask)
            ctx.overhead(2.0)  # per-tap address arithmetic and border predicate
            total = ctx.mad(value, ctx.full(weights[n * filter_width + m]), total)
    ctx.store_global(dst, gy * width + safe_x_out, total, mask=mask)


NPP_KERNEL = Kernel(_npp_block, name="npp_like_conv2d")


def npp_like_convolve2d(image: Optional[np.ndarray], spec: ConvolutionSpec,
                        architecture: object = "p100", precision: object = "float32",
                        block_threads: int = 128, functional: bool = True,
                        width: Optional[int] = None, height: Optional[int] = None,
                        max_blocks: Optional[int] = None,
                        batch_size: object = "auto") -> KernelRunResult:
    """NPP-like 2-D convolution (no scratchpad, one output per thread)."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if functional:
        image = check_image(image)
        require_edge_boundary(spec.boundary, "the NPP-like kernel")
        height, width = image.shape
    if width is None or height is None:
        raise ConfigurationError("width/height are required when functional=False")
    m_extent, n_extent = spec.filter_width, spec.filter_height
    grid = (math.ceil(width / block_threads), height, 1)
    config = LaunchConfig(grid_dim=grid, block_threads=block_threads,
                         registers_per_thread=32, shared_bytes_per_block=0,
                         precision=prec, memory_parallelism=2.0)
    parameters = {"M": m_extent, "N": n_extent, "B": block_threads,
                  "architecture": arch.name, "precision": prec.name}
    if functional:
        _, src, dst = make_device_pair(image, prec)
        anchor_x, anchor_y = spec.anchor
        launch = NPP_KERNEL.launch(
            config,
            args=(src, dst, tuple(spec.weights.reshape(-1).tolist()), width, height,
                  m_extent, n_extent, anchor_x, anchor_y),
            architecture=arch, max_blocks=max_blocks, batch_size=batch_size)
        output = None if max_blocks is not None else dst.to_host()
        return KernelRunResult(name="npp_like", output=output, launch=launch,
                               parameters=parameters)
    blocks = grid[0] * grid[1]
    warps_per_block = block_threads // arch.warp_size
    total_warps = blocks * warps_per_block
    taps = m_extent * n_extent
    sectors = math.ceil(32 * prec.itemsize / 128)
    counters = KernelCounters(
        fma=taps * total_warps,
        misc=2.0 * taps * total_warps,
        gmem_load=taps * total_warps,
        gmem_load_transactions=taps * total_warps * (sectors + 1),
        gmem_store=total_warps,
        gmem_store_transactions=total_warps * sectors,
        dram_read_bytes=float(blocks * n_extent * (block_threads + m_extent - 1)
                              * prec.itemsize),
        dram_write_bytes=float(width * height * prec.itemsize),
        blocks_executed=blocks,
        warps_executed=total_warps,
    )
    parameters["analytic"] = True
    return _analytic_result("npp_like", counters, config, arch, parameters)


# ---------------------------------------------------------------------------
# ArrayFire-like: shared-memory tile + halo, one output per thread
# ---------------------------------------------------------------------------

def _shared_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
                  weights: Tuple[float, ...], width: int, height: int,
                  filter_width: int, filter_height: int, anchor_x: int, anchor_y: int,
                  tile_rows: int, overhead_per_tap: float) -> None:
    tile_cols = ctx.warp_size
    threads_per_tile_row = ctx.block_threads // tile_rows
    assert threads_per_tile_row == tile_cols, "shared baseline expects 32-wide tiles"
    tx = ctx.thread_idx_x % tile_cols
    ty = ctx.thread_idx_x // tile_cols
    smem_cols = tile_cols + filter_width - 1
    smem_rows = tile_rows + filter_height - 1
    tile = ctx.alloc_shared("tile", (smem_rows, smem_cols))

    base_x = ctx.block_idx_x * tile_cols - anchor_x
    base_y = ctx.block_idx_y * tile_rows - anchor_y

    # cooperative staging of the tile + halo
    total = smem_rows * smem_cols
    tid = ctx.thread_idx_x
    for offset in range(0, total, ctx.block_threads):
        idx = offset + tid
        mask = idx < total
        safe = np.minimum(idx, total - 1)
        sy = safe // smem_cols
        sx = safe % smem_cols
        gy = clamp(base_y + sy, 0, height - 1)
        gx = clamp(base_x + sx, 0, width - 1)
        values = ctx.load_global(src, gy * width + gx, mask=mask)
        ctx.store_shared(tile, safe, values, mask=mask)
    ctx.syncthreads()

    out_x = ctx.block_idx_x * tile_cols + tx
    out_y = ctx.block_idx_y * tile_rows + ty
    mask = (out_x < width) & (out_y < height)
    total_value = ctx.zeros()
    for n in range(filter_height):
        for m in range(filter_width):
            smem_index = (ty + n) * smem_cols + (tx + m)
            value = ctx.load_shared(tile, smem_index)
            if overhead_per_tap:
                ctx.overhead(overhead_per_tap)
            total_value = ctx.mad(value, ctx.full(weights[n * filter_width + m]), total_value)
    ctx.syncthreads()
    safe_idx = clamp(out_y, 0, height - 1) * width + clamp(out_x, 0, width - 1)
    ctx.store_global(dst, safe_idx, total_value, mask=mask)


SHARED_KERNEL = Kernel(_shared_block, name="shared_conv2d")


def _shared_like_convolve2d(label: str, image, spec, architecture, precision,
                            tile_rows, overhead_per_tap, functional, width, height,
                            max_blocks, enforce_limit: bool,
                            batch_size: object = "auto"):
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if enforce_limit and max(spec.filter_width, spec.filter_height) > ARRAYFIRE_MAX_FILTER:
        raise ConfigurationError(
            f"{label} supports filters up to {ARRAYFIRE_MAX_FILTER}x{ARRAYFIRE_MAX_FILTER} "
            f"(got {spec.filter_width}x{spec.filter_height})"
        )
    if functional:
        image = check_image(image)
        require_edge_boundary(spec.boundary, f"the {label} kernel")
        height, width = image.shape
    if width is None or height is None:
        raise ConfigurationError("width/height are required when functional=False")
    m_extent, n_extent = spec.filter_width, spec.filter_height
    block_threads = 32 * tile_rows
    smem_rows = tile_rows + n_extent - 1
    smem_cols = 32 + m_extent - 1
    smem_bytes = smem_rows * smem_cols * prec.itemsize
    grid = (math.ceil(width / 32), math.ceil(height / tile_rows), 1)
    config = LaunchConfig(grid_dim=grid, block_threads=block_threads,
                         registers_per_thread=40, shared_bytes_per_block=smem_bytes,
                         precision=prec, memory_parallelism=3.0)
    parameters = {"M": m_extent, "N": n_extent, "tile_rows": tile_rows,
                  "architecture": arch.name, "precision": prec.name}
    if functional:
        _, src, dst = make_device_pair(image, prec)
        anchor_x, anchor_y = spec.anchor
        launch = SHARED_KERNEL.launch(
            config,
            args=(src, dst, tuple(spec.weights.reshape(-1).tolist()), width, height,
                  m_extent, n_extent, anchor_x, anchor_y, tile_rows, overhead_per_tap),
            architecture=arch, max_blocks=max_blocks, batch_size=batch_size)
        output = None if max_blocks is not None else dst.to_host()
        return KernelRunResult(name=label, output=output, launch=launch,
                               parameters=parameters)
    blocks = grid[0] * grid[1]
    warps_per_block = block_threads // arch.warp_size
    total_warps = blocks * warps_per_block
    taps = m_extent * n_extent
    staged = smem_rows * smem_cols
    staging_iters = math.ceil(staged / block_threads)
    sectors = math.ceil(32 * prec.itemsize / 128)
    counters = KernelCounters(
        fma=taps * total_warps,
        misc=overhead_per_tap * taps * total_warps,
        smem_load=taps * total_warps,
        smem_store=staging_iters * warps_per_block * blocks,
        gmem_load=staging_iters * warps_per_block * blocks,
        gmem_load_transactions=staging_iters * warps_per_block * blocks * (sectors + 1),
        gmem_store=total_warps,
        gmem_store_transactions=total_warps * sectors,
        sync=2.0 * warps_per_block * blocks,
        dram_read_bytes=float(blocks * staged * prec.itemsize),
        dram_write_bytes=float(width * height * prec.itemsize),
        blocks_executed=blocks,
        warps_executed=total_warps,
    )
    parameters["analytic"] = True
    return _analytic_result(label, counters, config, arch, parameters)


def arrayfire_like_convolve2d(image: Optional[np.ndarray], spec: ConvolutionSpec,
                              architecture: object = "p100", precision: object = "float32",
                              tile_rows: int = 8, functional: bool = True,
                              width: Optional[int] = None, height: Optional[int] = None,
                              max_blocks: Optional[int] = None,
                              batch_size: object = "auto") -> KernelRunResult:
    """ArrayFire-like shared-memory tiled convolution (16x16 filter ceiling)."""
    return _shared_like_convolve2d("arrayfire_like", image, spec, architecture, precision,
                                   tile_rows, 0.0, functional, width, height, max_blocks,
                                   enforce_limit=True, batch_size=batch_size)


def halide_like_convolve2d(image: Optional[np.ndarray], spec: ConvolutionSpec,
                           architecture: object = "p100", precision: object = "float32",
                           tile_rows: int = 4, functional: bool = True,
                           width: Optional[int] = None, height: Optional[int] = None,
                           max_blocks: Optional[int] = None,
                           batch_size: object = "auto") -> KernelRunResult:
    """Halide-auto-schedule-like tiled convolution (smaller tile, generic indexing)."""
    return _shared_like_convolve2d("halide_like", image, spec, architecture, precision,
                                   tile_rows, 2.0, functional, width, height, max_blocks,
                                   enforce_limit=False, batch_size=batch_size)


# ---------------------------------------------------------------------------
# cuDNN-like: implicit GEMM
# ---------------------------------------------------------------------------

#: fraction of peak FMA throughput an implicit GEMM reaches for a
#: single-channel, single-filter convolution (tiny GEMM K dimension)
CUDNN_SINGLE_CHANNEL_EFFICIENCY = 0.18


def cudnn_like_convolve2d(image: Optional[np.ndarray], spec: ConvolutionSpec,
                          architecture: object = "p100", precision: object = "float32",
                          functional: bool = True, width: Optional[int] = None,
                          height: Optional[int] = None) -> KernelRunResult:
    """cuDNN-like implicit-GEMM convolution for a single channel and filter.

    Functional output is computed on the host with the im2col x GEMM
    formulation (numerically identical to the direct form); the cost model
    charges the GEMM FLOPs at the low efficiency such a skinny GEMM achieves
    plus the im2col-style gather traffic.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    output = None
    if functional:
        image = check_image(image)
        height, width = image.shape
        output = spec.reference(image, precision=prec)
    if width is None or height is None:
        raise ConfigurationError("width/height are required when functional=False")
    taps = spec.taps
    outputs = width * height
    warp_fma = outputs * taps / 32.0 / CUDNN_SINGLE_CHANNEL_EFFICIENCY
    counters = KernelCounters(
        fma=warp_fma,
        gmem_load=outputs * taps / 32.0,
        gmem_load_transactions=outputs * taps / 32.0,
        gmem_store=outputs / 32.0,
        gmem_store_transactions=outputs / 32.0,
        dram_read_bytes=float(2.0 * outputs * prec.itemsize),
        dram_write_bytes=float(outputs * prec.itemsize),
        blocks_executed=math.ceil(outputs / 256),
        warps_executed=math.ceil(outputs / 32),
    )
    config = LaunchConfig(grid_dim=(math.ceil(outputs / 256), 1, 1), block_threads=256,
                         registers_per_thread=64, shared_bytes_per_block=32 * 1024,
                         precision=prec, memory_parallelism=4.0)
    parameters = {"M": spec.filter_width, "N": spec.filter_height,
                  "architecture": arch.name, "precision": prec.name,
                  "gemm_efficiency": CUDNN_SINGLE_CHANNEL_EFFICIENCY}
    result = _analytic_result("cudnn_like", counters, config, arch, parameters)
    result.output = output
    return result


# ---------------------------------------------------------------------------
# cuFFT-like: FFT convolution, cost independent of the filter size
# ---------------------------------------------------------------------------

#: published pipeline constants measured in the paper for an 8192^2 image (ms)
CUFFT_PAPER_MILLISECONDS = {"pascal": 353.0, "volta": 349.0}


def cufft_like_convolve2d(image: Optional[np.ndarray], spec: ConvolutionSpec,
                          architecture: object = "p100", precision: object = "float32",
                          functional: bool = True, width: Optional[int] = None,
                          height: Optional[int] = None) -> KernelRunResult:
    """cuFFT-like convolution: forward FFTs, pointwise multiply, inverse FFT.

    The cost model combines the FFT FLOP count and pass traffic with the
    pipeline constant the paper reports (353 ms / 349 ms for 8192^2 on
    P100/V100), scaled by problem size — the property Figure 4 relies on is
    only that this cost is flat in the filter size.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    output = None
    if functional:
        image = check_image(image)
        height, width = image.shape
        output = convolve2d_fft_reference(image, spec)
    if width is None or height is None:
        raise ConfigurationError("width/height are required when functional=False")
    outputs = width * height
    log_term = max(1.0, math.log2(max(outputs, 2)))
    # three 2-D transforms (two forward, one inverse) + pointwise multiply
    flops = 3 * 2.5 * outputs * log_term * 2 + 6 * outputs
    warp_fma = flops / 2.0 / 32.0
    passes = 12.0  # row/col passes of the three transforms, read + write
    complex_bytes = 2 * prec.itemsize
    counters = KernelCounters(
        fma=warp_fma,
        gmem_load=passes / 2 * outputs / 32.0,
        gmem_store=passes / 2 * outputs / 32.0,
        dram_read_bytes=passes / 2 * outputs * complex_bytes,
        dram_write_bytes=passes / 2 * outputs * complex_bytes,
        blocks_executed=math.ceil(outputs / 256),
        warps_executed=math.ceil(outputs / 32),
    )
    config = LaunchConfig(grid_dim=(math.ceil(outputs / 256), 1, 1), block_threads=256,
                         registers_per_thread=40, shared_bytes_per_block=0,
                         precision=prec, memory_parallelism=8.0)
    result = _analytic_result("cufft_like", counters, config, arch,
                              {"architecture": arch.name, "precision": prec.name})
    # fold in the measured pipeline constant, scaled to the problem size
    paper_ms = CUFFT_PAPER_MILLISECONDS.get(arch.generation)
    if paper_ms is not None:
        import dataclasses

        scale = outputs / float(8192 * 8192)
        floor_seconds = paper_ms * 1e-3 * scale
        modelled = result.launch.timing
        if modelled.total_seconds < floor_seconds:
            result.launch._timing = dataclasses.replace(
                modelled, total_seconds=floor_seconds, bottleneck="fft_pipeline")
    result.output = output
    return result
