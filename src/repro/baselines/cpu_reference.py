"""Host (CPU) reference implementations.

These are the ground truth every GPU-substrate kernel — SSAM and baseline
alike — is validated against.  They use NumPy/SciPy directly and perform no
cost accounting.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from ..convolution.spec import ConvolutionSpec
from ..stencils.spec import StencilSpec


def convolve2d_reference(image: np.ndarray, spec: ConvolutionSpec) -> np.ndarray:
    """Reference 2-D convolution (delegates to the spec's definition)."""
    return spec.reference(image)


def convolve2d_fft_reference(image: np.ndarray, spec: ConvolutionSpec) -> np.ndarray:
    """FFT-based 2-D convolution (the cuFFT-equivalent math, on the host).

    Matches :meth:`ConvolutionSpec.reference` for interior pixels; the FFT
    path uses zero padding rather than edge replication at the boundary,
    exactly like a cuFFT-based pipeline without explicit border handling.
    """
    image64 = np.asarray(image, dtype=np.float64)
    result = signal.fftconvolve(image64, spec.weights[::-1, ::-1], mode="same")
    return result.astype(image.dtype)


def stencil_reference(grid: np.ndarray, spec: StencilSpec, iterations: int = 1) -> np.ndarray:
    """Reference iterative stencil application."""
    return spec.reference(grid, iterations=iterations)


def scan_reference(sequence: np.ndarray) -> np.ndarray:
    """Reference inclusive prefix sum."""
    return np.cumsum(np.asarray(sequence, dtype=np.float64)).astype(
        np.asarray(sequence).dtype)
