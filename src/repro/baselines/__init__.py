"""Baseline implementations of the libraries and codes SSAM is compared with."""

from .conv2d import (
    ARRAYFIRE_MAX_FILTER,
    arrayfire_like_convolve2d,
    cudnn_like_convolve2d,
    cufft_like_convolve2d,
    halide_like_convolve2d,
    npp_like_convolve2d,
)
from .cpu_reference import (
    convolve2d_fft_reference,
    convolve2d_reference,
    scan_reference,
    stencil_reference,
)
from .stencil2d import (
    halide_like_stencil2d,
    original_stencil2d,
    ppcg_like_stencil2d,
    reordered_stencil2d,
    unrolled_stencil2d,
)
from .stencil3d import original_stencil3d, shared_stencil3d
from .temporal import (
    PUBLISHED_REFERENCES,
    published_reference,
    ssam_temporal_stencil,
    stencilgen_like_stencil,
)

__all__ = [
    "ARRAYFIRE_MAX_FILTER",
    "arrayfire_like_convolve2d",
    "cudnn_like_convolve2d",
    "cufft_like_convolve2d",
    "halide_like_convolve2d",
    "npp_like_convolve2d",
    "convolve2d_fft_reference",
    "convolve2d_reference",
    "scan_reference",
    "stencil_reference",
    "halide_like_stencil2d",
    "original_stencil2d",
    "ppcg_like_stencil2d",
    "reordered_stencil2d",
    "unrolled_stencil2d",
    "original_stencil3d",
    "shared_stencil3d",
    "PUBLISHED_REFERENCES",
    "published_reference",
    "ssam_temporal_stencil",
    "stencilgen_like_stencil",
]
