"""Built-in scenario registrations: the five SSAM kernels and the baselines.

Importing this module (which :mod:`repro.scenarios` does on package import)
populates the registry with every implementation the paper evaluates.  Each
registration is the single place a kernel is wired up — spec builder,
workload builder, planner, runner, CPU oracle and supported envelope — and
is everything needed for the kernel to appear in sweeps and in the
auto-generated differential test matrix.

The named problem sizes deliberately produce partial blocks on every grid
edge (domains indivisible by the tile extents) so functional runs exercise
the masked boundary paths; ``"paper"`` sizes are the evaluation-scale
domains of Section 6 and run only on the closed-form engines (the
``analytic`` instruction/traffic profile and the Section 5 ``model``).
Every scenario carries a ``model`` entry, so any registered kernel or
baseline can be predicted at arbitrary scale without simulating it.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

import numpy as np

from ..baselines.conv2d import (
    arrayfire_like_convolve2d,
    cudnn_like_convolve2d,
    cufft_like_convolve2d,
    halide_like_convolve2d,
    npp_like_convolve2d,
)
from ..baselines.stencil2d import (
    halide_like_stencil2d,
    original_stencil2d,
    ppcg_like_stencil2d,
)
from ..baselines.stencil3d import original_stencil3d
from ..convolution.spec import ConvolutionSpec
from ..core.performance_model import (
    model_convolution1d,
    model_convolution2d,
    model_convolution2d_chain,
    model_naive_3d,
    model_scan,
    model_shared_memory_2d,
    model_stencil2d,
    model_stencil3d,
)
from ..core.plan import plan_convolution, plan_stencil
from ..gpu.architecture import (
    EVALUATED_ARCHITECTURES,
    MODERN_ARCHITECTURES,
    architecture_names,
)
from ..kernels import (
    masked_reference,
    reference_convolve1d,
    reference_scan,
    ssam_convolve1d,
    ssam_convolve2d,
    ssam_convolve2d_chain,
    ssam_scan,
    ssam_stencil2d,
    ssam_stencil2d_masked,
    ssam_stencil3d,
)
from ..kernels.conv2d_ssam import analytic_launch as conv2d_analytic_launch
from ..kernels.stencil2d_ssam import analytic_launch as stencil2d_analytic_launch
from ..kernels.stencil3d_ssam import analytic_launch as stencil3d_analytic_launch
from ..stencils.catalog import get_stencil
from ..workloads.generators import random_grid_3d, random_image, sequence
from .registry import (
    ENGINE_BATCH_SIZE,
    LAUNCH_DEFAULTS_SOURCE_KEY,
    Scenario,
    register,
)

#: every architecture preset (K40/M40/P100/V100/A100/H100) — the SSAM
#: kernels run on all of them
ALL_ARCHITECTURES = architecture_names()
#: the two parts the paper evaluates — the baselines' cost models target these
EVALUATED = tuple(arch.name.split()[-1].lower() for arch in EVALUATED_ARCHITECTURES)
#: post-paper parts (Ampere/Hopper) the baselines are also projected onto:
#: their shared-memory cost models are architecture-generic, so the new
#: generations are a pure envelope extension
MODERN = tuple(arch.name.lower() for arch in MODERN_ARCHITECTURES)
BASELINE_ARCHITECTURES = EVALUATED + MODERN
BOTH_PRECISIONS = ("float32", "float64")
FUNCTIONAL_ENGINES = ("scalar", "batched")
#: functional engines + the Section 5 analytic performance model
MODELED_ENGINES = ("scalar", "batched", "model")
ALL_ENGINES = ("scalar", "batched", "analytic", "model")
#: the SSAM kernels additionally run through the compiled trace-replay
#: engine (baseline scenarios keep the legacy tuples: their kernels are not
#: traced)
SSAM_MODELED_ENGINES = ("scalar", "batched", "replay", "model")
SSAM_ALL_ENGINES = ("scalar", "batched", "replay", "analytic", "model")


def binomial_taps(count: int) -> np.ndarray:
    """Normalised binomial filter taps (the 1-D Gaussian approximation)."""
    row = np.array([math.comb(count - 1, k) for k in range(count)], dtype=np.float64)
    return row / row.sum()


#: tunable envelopes of the SSAM kernels: the 2-D register-cache kernels
#: expose the full Section 7.1 design space (sliding-window depth P and
#: block size B) plus the per-dimension block shape R; the 3-D kernel's z
#: blocking is warp-per-slice, so it tunes P and B only; the 1-D kernels
#: have no sliding window, so only B tunes
TUNABLES_2D = ("outputs_per_thread", "block_threads", "block_rows")
TUNABLES_3D = ("outputs_per_thread", "block_threads")
TUNABLES_1D = ("block_threads",)


def _plan_overrides(params: Mapping[str, object]) -> Dict[str, int]:
    """Launch-parameter overrides present in a merged parameter mapping.

    The registry resolves a scenario's tunables through the default chain
    (explicit plan_kwargs -> tuning database -> paper constants) and merges
    the concrete values into the parameter mapping before calling a
    runner/model/planner; this picks them back out so they can be forwarded
    to the kernel entry points as keyword arguments.  Size mappings never
    define these keys, so an absent key always means "not tunable here".
    """
    return {key: int(params[key])
            for key in ("outputs_per_thread", "block_threads", "block_rows")
            if key in params}


def _plan_args(params: Mapping[str, object]) -> Dict[str, object]:
    """Planner keyword arguments from a resolved parameter mapping.

    On top of the launch-parameter overrides this forwards the resolution
    provenance recorded by the registry, so the plan's ``defaults_source``
    reflects the real chain outcome (``"tuned"``, ``"paper"``, ...) rather
    than the always-explicit values the planner receives.
    """
    args: Dict[str, object] = dict(_plan_overrides(params))
    args["defaults_source"] = params.get(LAUNCH_DEFAULTS_SOURCE_KEY)
    return args


# Named problem sizes are shared per family between the SSAM kernel and its
# baselines, so paired scenarios always describe the same problem domain.
# ``paper`` domains are closed-form only: both the instruction/traffic
# profile (``analytic``) and the Section 5 performance model (``model``)
# evaluate them in microseconds, while a functional run would be infeasible.
_CONV2D_SIZES: Dict[str, Mapping[str, object]] = {
    "tiny": {"width": 49, "height": 37, "filter": 3},
    "small": {"width": 97, "height": 83, "filter": 5},
    "paper": {"width": 8192, "height": 8192, "filter": 9,
              "engines": ("analytic", "model")},
}

_STENCIL2D_SIZES: Dict[str, Mapping[str, object]] = {
    "tiny": {"stencil": "2d5pt", "width": 49, "height": 37, "iterations": 1},
    "small": {"stencil": "2d9pt", "width": 70, "height": 45, "iterations": 2},
    "paper": {"stencil": "2d9pt", "width": 8192, "height": 8192,
              "iterations": 1, "engines": ("analytic", "model")},
}

_STENCIL3D_SIZES: Dict[str, Mapping[str, object]] = {
    "tiny": {"stencil": "3d7pt", "width": 19, "height": 13, "depth": 7,
             "iterations": 1},
    "small": {"stencil": "3d27pt", "width": 25, "height": 17, "depth": 9,
              "iterations": 1},
    "paper": {"stencil": "3d7pt", "width": 512, "height": 512, "depth": 512,
              "iterations": 1, "engines": ("analytic", "model")},
}


# ---------------------------------------------------------------------------
# SSAM kernels
# ---------------------------------------------------------------------------

def _run_conv1d(spec, workload, params, architecture, precision, engine):
    return ssam_convolve1d(workload, spec, architecture=architecture,
                           precision=precision,
                           batch_size=ENGINE_BATCH_SIZE[engine],
                           **_plan_overrides(params))


register(Scenario(
    name="conv1d",
    family="convolution",
    dims=1,
    role="ssam",
    runner=_run_conv1d,
    spec_builder=lambda params: binomial_taps(params["taps"]),
    workload_builder=lambda params, precision: sequence(
        params["length"], precision, seed=params["length"]),
    oracle=lambda spec, workload, params: reference_convolve1d(workload, spec),
    model=lambda spec, params, architecture, precision: model_convolution1d(
        params["taps"], params["length"], architecture, precision,
        **_plan_overrides(params)),
    tunables=TUNABLES_1D,
    sizes={
        "tiny": {"length": 193, "taps": 3},
        "small": {"length": 413, "taps": 5},
        "paper": {"length": 1 << 26, "taps": 9, "engines": ("model",)},
    },
    architectures=ALL_ARCHITECTURES,
    precisions=BOTH_PRECISIONS,
    engines=SSAM_MODELED_ENGINES,
    description="SSAM 1-D convolution (Section 3.5 motivating example)",
))


def _run_conv2d(spec, workload, params, architecture, precision, engine):
    overrides = _plan_overrides(params)
    if engine == "analytic":
        return conv2d_analytic_launch(spec, params["width"], params["height"],
                                      architecture, precision, **overrides)
    return ssam_convolve2d(workload, spec, architecture, precision,
                           batch_size=ENGINE_BATCH_SIZE[engine], **overrides)


register(Scenario(
    name="conv2d",
    family="convolution",
    dims=2,
    role="ssam",
    runner=_run_conv2d,
    spec_builder=lambda params: ConvolutionSpec.gaussian(params["filter"]),
    workload_builder=lambda params, precision: random_image(
        params["width"], params["height"], precision, seed=params["width"]),
    planner=lambda spec, params, architecture, precision: plan_convolution(
        spec, architecture, precision, **_plan_args(params)),
    oracle=lambda spec, workload, params: spec.reference(workload),
    model=lambda spec, params, architecture, precision: model_convolution2d(
        spec, params["width"], params["height"], architecture, precision,
        **_plan_overrides(params)),
    tunables=TUNABLES_2D,
    sizes=_CONV2D_SIZES,
    architectures=ALL_ARCHITECTURES,
    precisions=BOTH_PRECISIONS,
    engines=SSAM_ALL_ENGINES,
    description="SSAM 2-D convolution (Listing 1)",
))


def _run_stencil2d(spec, workload, params, architecture, precision, engine):
    iterations = params.get("iterations", 1)
    overrides = _plan_overrides(params)
    if engine == "analytic":
        return stencil2d_analytic_launch(spec, params["width"], params["height"],
                                         iterations, architecture, precision,
                                         **overrides)
    return ssam_stencil2d(workload, spec, iterations, architecture, precision,
                          batch_size=ENGINE_BATCH_SIZE[engine], **overrides)


register(Scenario(
    name="stencil2d",
    family="stencil",
    dims=2,
    role="ssam",
    runner=_run_stencil2d,
    spec_builder=lambda params: get_stencil(params["stencil"]),
    workload_builder=lambda params, precision: random_image(
        params["width"], params["height"], precision, seed=params["height"]),
    planner=lambda spec, params, architecture, precision: plan_stencil(
        spec, architecture, precision, **_plan_args(params)),
    oracle=lambda spec, workload, params: spec.reference(
        workload, iterations=params.get("iterations", 1)),
    model=lambda spec, params, architecture, precision: model_stencil2d(
        spec, params["width"], params["height"],
        params.get("iterations", 1), architecture, precision,
        **_plan_overrides(params)),
    tunables=TUNABLES_2D,
    sizes=_STENCIL2D_SIZES,
    architectures=ALL_ARCHITECTURES,
    precisions=BOTH_PRECISIONS,
    engines=SSAM_ALL_ENGINES,
    description="SSAM 2-D stencil (Listing 2, generalised)",
))


def _run_stencil3d(spec, workload, params, architecture, precision, engine):
    iterations = params.get("iterations", 1)
    overrides = _plan_overrides(params)
    if engine == "analytic":
        return stencil3d_analytic_launch(spec, params["width"], params["height"],
                                         params["depth"], iterations,
                                         architecture, precision, **overrides)
    return ssam_stencil3d(workload, spec, iterations, architecture, precision,
                          batch_size=ENGINE_BATCH_SIZE[engine], **overrides)


def _plan_stencil3d(spec, params, architecture, precision):
    """In-plane register-cache plan of the 3-D kernel.

    The 3-D kernel keeps a few extra bookkeeping registers on top of the
    in-plane C = N + P - 1 cache, but its sliding window and blocking follow
    the same arithmetic, so the in-plane plan is the identity the tuner and
    the cache key reason about.
    """
    return plan_stencil(spec, architecture, precision, **_plan_args(params))


register(Scenario(
    name="stencil3d",
    family="stencil",
    dims=3,
    role="ssam",
    runner=_run_stencil3d,
    spec_builder=lambda params: get_stencil(params["stencil"]),
    workload_builder=lambda params, precision: random_grid_3d(
        params["width"], params["height"], params["depth"], precision,
        seed=params["depth"]),
    planner=_plan_stencil3d,
    oracle=lambda spec, workload, params: spec.reference(
        workload, iterations=params.get("iterations", 1)),
    model=lambda spec, params, architecture, precision: model_stencil3d(
        spec, params["width"], params["height"], params["depth"],
        params.get("iterations", 1), architecture, precision,
        **_plan_overrides(params)),
    tunables=TUNABLES_3D,
    sizes=_STENCIL3D_SIZES,
    architectures=ALL_ARCHITECTURES,
    precisions=BOTH_PRECISIONS,
    engines=SSAM_ALL_ENGINES,
    description="SSAM 3-D stencil (in-plane register cache + out-of-plane taps)",
))


def _run_scan(spec, workload, params, architecture, precision, engine):
    return ssam_scan(workload, architecture, precision,
                     batch_size=ENGINE_BATCH_SIZE[engine],
                     **_plan_overrides(params))


register(Scenario(
    name="scan",
    family="scan",
    dims=1,
    role="ssam",
    runner=_run_scan,
    workload_builder=lambda params, precision: sequence(
        params["length"], precision, seed=params["length"] + 1),
    oracle=lambda spec, workload, params: reference_scan(workload),
    model=lambda spec, params, architecture, precision: model_scan(
        params["length"], architecture, precision,
        **_plan_overrides(params)),
    tunables=TUNABLES_1D,
    sizes={
        "tiny": {"length": 193},
        "small": {"length": 1000},
        "paper": {"length": 1 << 26, "engines": ("model",)},
    },
    architectures=ALL_ARCHITECTURES,
    precisions=BOTH_PRECISIONS,
    engines=SSAM_MODELED_ENGINES,
    description="SSAM Kogge-Stone scan (Figure 1e)",
))


# ---------------------------------------------------------------------------
# post-paper SSAM scenarios: the registry beyond the five paper kernels.
# These reuse the paper kernels' runners/planners/models verbatim — only
# the stencil shapes, selection predicates and chaining differ — so every
# experiment (sweep, tune, model validation, service) gains them with zero
# per-experiment work.
# ---------------------------------------------------------------------------

def _stencil2d_variant_sizes(stencil: str) -> Dict[str, Mapping[str, object]]:
    """The shared 2-D stencil domains, pinned to one catalog entry."""
    return {
        "tiny": {"stencil": stencil, "width": 49, "height": 37, "iterations": 1},
        "small": {"stencil": stencil, "width": 70, "height": 45, "iterations": 2},
        "paper": {"stencil": stencil, "width": 8192, "height": 8192,
                  "iterations": 1, "engines": ("analytic", "model")},
    }


for _name, _stencil, _description in (
    ("stencil2d-order4", "2d17pt",
     "SSAM order-4 star stencil (wide halo: valid lanes shrink to W-8)"),
    ("stencil2d-order6", "2ds25pt",
     "SSAM order-6 star stencil (widest Table 3 star footprint)"),
    ("stencil2d-varcoef", "2dv9pt",
     "SSAM variable-coefficient 9-point stencil (no foldable symmetric taps)"),
):
    register(Scenario(
        name=_name,
        family="stencil",
        dims=2,
        role="ssam",
        runner=_run_stencil2d,
        spec_builder=lambda params: get_stencil(params["stencil"]),
        workload_builder=lambda params, precision: random_image(
            params["width"], params["height"], precision, seed=params["height"]),
        planner=lambda spec, params, architecture, precision: plan_stencil(
            spec, architecture, precision, **_plan_args(params)),
        oracle=lambda spec, workload, params: spec.reference(
            workload, iterations=params.get("iterations", 1)),
        model=lambda spec, params, architecture, precision: model_stencil2d(
            spec, params["width"], params["height"],
            params.get("iterations", 1), architecture, precision,
            **_plan_overrides(params)),
        tunables=TUNABLES_2D,
        sizes=_stencil2d_variant_sizes(_stencil),
        architectures=ALL_ARCHITECTURES,
        precisions=BOTH_PRECISIONS,
        engines=SSAM_ALL_ENGINES,
        description=_description,
    ))


def _run_stencil2d_masked(spec, workload, params, architecture, precision, engine):
    return ssam_stencil2d_masked(workload, spec, params.get("iterations", 1),
                                 margin=params.get("margin", 2),
                                 architecture=architecture, precision=precision,
                                 batch_size=ENGINE_BATCH_SIZE[engine],
                                 **_plan_overrides(params))


register(Scenario(
    name="stencil2d-masked",
    family="stencil",
    dims=2,
    role="ssam",
    runner=_run_stencil2d_masked,
    spec_builder=lambda params: get_stencil(params["stencil"]),
    workload_builder=lambda params, precision: random_image(
        params["width"], params["height"], precision, seed=params["height"]),
    planner=lambda spec, params, architecture, precision: plan_stencil(
        spec, architecture, precision, **_plan_args(params)),
    oracle=lambda spec, workload, params: masked_reference(
        workload, spec, iterations=params.get("iterations", 1),
        margin=params.get("margin", 2)),
    # the interior-select adds a passthrough load per output row but keeps
    # the register-cache schedule, so the plain stencil model is the
    # closed-form prediction (no analytic counter profile is registered)
    model=lambda spec, params, architecture, precision: model_stencil2d(
        spec, params["width"], params["height"],
        params.get("iterations", 1), architecture, precision,
        **_plan_overrides(params)),
    tunables=TUNABLES_2D,
    sizes={
        "tiny": {"stencil": "2d5pt", "width": 49, "height": 37,
                 "iterations": 1, "margin": 3},
        "small": {"stencil": "2d9pt", "width": 70, "height": 45,
                  "iterations": 2, "margin": 4},
        "paper": {"stencil": "2d9pt", "width": 8192, "height": 8192,
                  "iterations": 1, "margin": 4, "engines": ("model",)},
    },
    architectures=ALL_ARCHITECTURES,
    precisions=BOTH_PRECISIONS,
    engines=SSAM_MODELED_ENGINES,
    description="SSAM masked 2-D stencil (interior update, fixed boundary frame)",
))


def _run_conv2d_pipeline(spec, workload, params, architecture, precision, engine):
    return ssam_convolve2d_chain(workload, spec, params.get("passes", 2),
                                 architecture, precision,
                                 fused=bool(params.get("fused", False)),
                                 batch_size=ENGINE_BATCH_SIZE[engine],
                                 **_plan_overrides(params))


def _chain_oracle(spec, workload, params):
    result = np.asarray(workload, dtype=np.float64)
    for _ in range(int(params.get("passes", 2))):
        result = spec.reference(result)
    return result


register(Scenario(
    name="conv2d-pipeline",
    family="convolution",
    dims=2,
    role="ssam",
    runner=_run_conv2d_pipeline,
    spec_builder=lambda params: ConvolutionSpec.gaussian(params["filter"]),
    workload_builder=lambda params, precision: random_image(
        params["width"], params["height"], precision, seed=params["width"]),
    planner=lambda spec, params, architecture, precision: plan_convolution(
        spec, architecture, precision, **_plan_args(params)),
    oracle=_chain_oracle,
    model=lambda spec, params, architecture, precision: model_convolution2d_chain(
        spec, params["width"], params["height"],
        passes=int(params.get("passes", 2)),
        fused=bool(params.get("fused", False)),
        architecture=architecture, precision=precision,
        **_plan_overrides(params)),
    tunables=TUNABLES_2D,
    sizes={
        "tiny": {"width": 49, "height": 37, "filter": 3, "passes": 2},
        "small": {"width": 97, "height": 83, "filter": 5, "passes": 2},
        # the fused leg changes the traffic counters (intermediates stay on
        # chip), so it lives in its own named size rather than sharing one
        # with the launch-per-pass engines
        "fused": {"width": 49, "height": 37, "filter": 3, "passes": 2,
                  "fused": True, "engines": ("replay", "model")},
        "paper": {"width": 8192, "height": 8192, "filter": 9, "passes": 2,
                  "engines": ("model",)},
    },
    architectures=ALL_ARCHITECTURES,
    precisions=BOTH_PRECISIONS,
    engines=SSAM_MODELED_ENGINES,
    description="SSAM two-stage convolution chain (image-blur pipeline, fusable)",
))


# ---------------------------------------------------------------------------
# convolution baselines (the Figure 4 competitors)
# ---------------------------------------------------------------------------

def _conv2d_baseline_runner(fn):
    def run(spec, workload, params, architecture, precision, engine):
        if engine == "analytic":
            return fn(None, spec, architecture, precision, functional=False,
                      width=params["width"], height=params["height"])
        return fn(workload, spec, architecture, precision,
                  batch_size=ENGINE_BATCH_SIZE[engine])
    return run


def _conv2d_analytic_only_runner(fn):
    def run(spec, workload, params, architecture, precision, engine):
        return fn(None, spec, architecture, precision, functional=False,
                  width=params["width"], height=params["height"])
    return run


def _model_conv2d_shared(label: str):
    """Section 5 shared-memory-scheme model of a convolution baseline."""
    def model(spec, params, architecture, precision):
        return model_shared_memory_2d(
            spec.taps, spec.filter_width - 1, spec.filter_height - 1,
            params["width"], params["height"], 1, architecture, precision,
            weights_in_shared=True, kernel_name=f"{label}_conv2d_model",
            extra_parameters={"baseline": label})
    return model


def _register_conv2d_baseline(label: str, fn, engines) -> None:
    functional = "scalar" in engines
    register(Scenario(
        name=f"conv2d-{label}",
        family="convolution",
        dims=2,
        role="baseline",
        runner=(_conv2d_baseline_runner(fn) if functional
                else _conv2d_analytic_only_runner(fn)),
        spec_builder=lambda params: ConvolutionSpec.gaussian(params["filter"]),
        workload_builder=lambda params, precision: random_image(
            params["width"], params["height"], precision, seed=params["width"]),
        oracle=(lambda spec, workload, params: spec.reference(workload))
        if functional else None,
        model=_model_conv2d_shared(label),
        sizes=_CONV2D_SIZES,
        architectures=BASELINE_ARCHITECTURES,
        precisions=BOTH_PRECISIONS,
        engines=engines,
        description=f"{label}-like 2-D convolution baseline",
    ))


_register_conv2d_baseline("npp", npp_like_convolve2d, ALL_ENGINES)
_register_conv2d_baseline("arrayfire", arrayfire_like_convolve2d, ALL_ENGINES)
_register_conv2d_baseline("halide", halide_like_convolve2d, ALL_ENGINES)
_register_conv2d_baseline("cudnn", cudnn_like_convolve2d, ("analytic", "model"))
_register_conv2d_baseline("cufft", cufft_like_convolve2d, ("analytic", "model"))


# ---------------------------------------------------------------------------
# stencil baselines (the Figure 5 competitors with functional kernels)
# ---------------------------------------------------------------------------

def _stencil2d_baseline_runner(fn):
    def run(spec, workload, params, architecture, precision, engine):
        iterations = params.get("iterations", 1)
        if engine == "analytic":
            return fn(None, spec, iterations, architecture, precision,
                      functional=False, width=params["width"],
                      height=params["height"])
        return fn(workload, spec, iterations, architecture, precision,
                  batch_size=ENGINE_BATCH_SIZE[engine])
    return run


def _model_stencil2d_shared(label: str):
    """Section 5 shared-memory-scheme model of a 2-D stencil baseline."""
    def model(spec, params, architecture, precision):
        return model_shared_memory_2d(
            spec.num_points, spec.footprint_width - 1, spec.footprint_height - 1,
            params["width"], params["height"], params.get("iterations", 1),
            architecture, precision, weights_in_shared=False,
            kernel_name=f"{label}_stencil2d_model",
            extra_parameters={"baseline": label})
    return model


for _label, _fn in (("original", original_stencil2d),
                    ("ppcg", ppcg_like_stencil2d),
                    ("halide", halide_like_stencil2d)):
    register(Scenario(
        name=f"stencil2d-{_label}",
        family="stencil",
        dims=2,
        role="baseline",
        runner=_stencil2d_baseline_runner(_fn),
        spec_builder=lambda params: get_stencil(params["stencil"]),
        workload_builder=lambda params, precision: random_image(
            params["width"], params["height"], precision, seed=params["height"]),
        oracle=lambda spec, workload, params: spec.reference(
            workload, iterations=params.get("iterations", 1)),
        model=_model_stencil2d_shared(_label),
        sizes=_STENCIL2D_SIZES,
        architectures=BASELINE_ARCHITECTURES,
        precisions=BOTH_PRECISIONS,
        engines=ALL_ENGINES,
        description=f"{_label} 2-D stencil baseline",
    ))


def _run_stencil3d_original(spec, workload, params, architecture, precision, engine):
    iterations = params.get("iterations", 1)
    if engine == "analytic":
        return original_stencil3d(None, spec, iterations, architecture, precision,
                                  functional=False, width=params["width"],
                                  height=params["height"], depth=params["depth"])
    return original_stencil3d(workload, spec, iterations, architecture, precision,
                              batch_size=ENGINE_BATCH_SIZE[engine])


register(Scenario(
    name="stencil3d-original",
    family="stencil",
    dims=3,
    role="baseline",
    runner=_run_stencil3d_original,
    spec_builder=lambda params: get_stencil(params["stencil"]),
    workload_builder=lambda params, precision: random_grid_3d(
        params["width"], params["height"], params["depth"], precision,
        seed=params["depth"]),
    oracle=lambda spec, workload, params: spec.reference(
        workload, iterations=params.get("iterations", 1)),
    model=lambda spec, params, architecture, precision: model_naive_3d(
        spec.num_points, params["width"], params["height"], params["depth"],
        params.get("iterations", 1), architecture, precision,
        kernel_name="original_stencil3d_model"),
    sizes=_STENCIL3D_SIZES,
    architectures=BASELINE_ARCHITECTURES,
    precisions=BOTH_PRECISIONS,
    engines=ALL_ENGINES,
    description="naive one-output-per-thread 3-D stencil baseline",
))
