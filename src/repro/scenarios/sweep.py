"""Generic sweep engine over the scenario registry.

A sweep is a declarative Cartesian matrix — scenarios x architectures x
precisions x engines x problem sizes — expanded through
:func:`repro.scenarios.registry.expand_matrix` into independent
:class:`~repro.experiments.jobs.SimulationJob` cells.  The cells run through
the same executor as the paper experiments (sharded across workers, memoised
in the persistent simulation cache) and fold into a typed
:class:`~repro.experiments.results.ExperimentResult`, so sweeps get JSON
artifacts, ``--jobs`` parallelism and warm-cache reruns for free::

    ssam-repro --experiment sweep --matrix tier1 --jobs 4 --output-dir results
    ssam-repro --experiment sweep --matrix my_matrix.json

Named matrices live in :data:`MATRICES`; arbitrary matrices load from JSON
files with the same axes.
"""

from __future__ import annotations

import copy
import os
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..errors import ConfigurationError
from ..experiments.jobs import SimulationJob
from ..experiments.results import ExperimentResult, Measurement
from ..serialization import array_digest, load_json, stable_digest
from .registry import (
    LAUNCH_DEFAULTS_SOURCE_KEY,
    ScenarioCase,
    expand_matrix,
    get_scenario,
)

# make sure the built-in scenarios are registered even when this module is
# imported directly (worker processes import it by its dotted path)
from . import builtin as _builtin  # noqa: F401  (import for side effect)

#: named sweep matrices; "tier1" is the envelope the differential test
#: matrix derives from, "smoke" is the CI quick path
MATRICES: Dict[str, Dict[str, object]] = {
    "tier1": {
        "scenarios": "ssam",
        "architectures": ["p100", "v100", "a100", "h100"],
        "precisions": ["float32", "float64"],
        "engines": ["scalar", "batched", "replay"],
        "sizes": ["tiny"],
    },
    "smoke": {
        "scenarios": ["conv2d", "scan"],
        "architectures": ["p100"],
        "precisions": ["float32"],
        "engines": ["scalar", "batched", "replay"],
        "sizes": ["tiny"],
    },
    "default": {
        "scenarios": "all",
        "architectures": ["p100", "v100", "a100", "h100"],
        "precisions": ["float32", "float64"],
        "engines": ["scalar", "batched", "replay", "analytic", "model"],
        "sizes": ["tiny", "small"],
    },
    # the SSAM kernels at the evaluation-scale domains of Section 6,
    # closed-form only: the instruction/traffic profile where one exists and
    # the Section 5 performance model everywhere — seconds, not hours
    "paper": {
        "scenarios": "ssam",
        "architectures": ["p100", "v100", "a100", "h100"],
        "precisions": ["float32", "float64"],
        "engines": ["analytic", "model"],
        "sizes": ["paper"],
    },
}


def load_matrix(spec: "str | Mapping[str, object] | None") -> Dict[str, object]:
    """Resolve a matrix argument: preset name, JSON file path, or mapping."""
    if spec is None:
        spec = "default"
    if isinstance(spec, Mapping):
        matrix = dict(copy.deepcopy(dict(spec)))
        matrix.setdefault("name", "custom")
        return matrix
    if spec in MATRICES:
        matrix = copy.deepcopy(MATRICES[spec])
        matrix["name"] = spec
        return matrix
    if os.path.isfile(spec):
        matrix = load_json(spec)
        if not isinstance(matrix, Mapping):
            raise ConfigurationError(
                f"matrix file {spec!r} must contain a JSON object")
        matrix = dict(matrix)
        matrix.setdefault("name", os.path.splitext(os.path.basename(spec))[0])
        return matrix
    raise ConfigurationError(
        f"unknown sweep matrix {spec!r}; presets: {sorted(MATRICES)}, "
        f"or pass a path to an existing JSON matrix file")


def _spec_fingerprint(spec) -> Optional[str]:
    if spec is None:
        return None
    if isinstance(spec, np.ndarray):
        return array_digest(spec)
    return spec.fingerprint()


def case_cache_fields(case: ScenarioCase) -> Dict[str, object]:
    """Cache-key fields of one cell: spec + plan fingerprints, envelope axes.

    Public contract: the cross-engine validation experiment and the launch
    tuner build jobs with these exact fields (and :func:`case_job_key`) so
    their simulation cells share cache entries — and dedupe — with sweep
    cells.
    """
    scenario = get_scenario(case.scenario)
    fields: Dict[str, object] = {
        "kernel": case.scenario,
        "spec": _spec_fingerprint(scenario.build_spec(case.size)),
        "architecture": case.architecture,
        "precision": case.precision,
        "engine": case.engine,
        "size": case.size,
    }
    if case.plan_kwargs:
        fields["plan_kwargs"] = case.plan_overrides
    plan = scenario.build_plan(case.size, case.architecture, case.precision,
                               plan_kwargs=case.plan_overrides)
    if plan is not None:
        fields["plan"] = plan.fingerprint()
    return fields


def _measure_case(scenario: str, architecture: str, precision: str,
                  engine: str, size: str,
                  plan_kwargs: Optional[Mapping[str, object]] = None,
                  ) -> Dict[str, object]:
    """Worker: simulate one expanded scenario cell and describe the outcome.

    The payload carries the modelled time, the full counter set, the launch
    configuration, a content digest of the functional output and — when the
    scenario has a CPU oracle — the max absolute error against it, so sweep
    artifacts double as validation records.
    """
    case = ScenarioCase(scenario, architecture, precision, engine, size,
                        plan_kwargs or {})
    entry = get_scenario(scenario)
    fallbacks_before = 0
    if engine == "replay":
        from ..trace.replay import fallback_log

        fallbacks_before = len(fallback_log())
    result = entry.run_case(case)
    payload: Dict[str, object] = {
        "case": case.to_dict(),
        "milliseconds": result.milliseconds,
        "counters": result.launch.counters.as_dict(),
        "config": result.launch.config.to_dict(),
        "kernel_name": result.launch.kernel_name,
        "parameters": dict(result.parameters),
        "output_digest": (None if result.output is None
                          else array_digest(result.output)),
    }
    if engine == "replay":
        # untraceable kernels silently run on the batched engine; surface
        # the fallback (and its reason) in the cell's sweep row
        payload["replay_fallback"] = fallback_log()[fallbacks_before:]
    if result.output is not None and entry.oracle is not None:
        oracle = entry.oracle_output(case)
        error = np.max(np.abs(np.asarray(result.output, dtype=np.float64)
                              - np.asarray(oracle, dtype=np.float64)))
        payload["oracle_max_abs_error"] = float(error)
    return payload


# --------------------------------------------------------------- pipeline

def case_job_key(case: ScenarioCase) -> str:
    """Executor job key of one sweep cell (shared with model validation)."""
    return f"sweep:{case.case_id}"


def jobs(matrix: "str | Mapping[str, object] | None" = None) -> List[SimulationJob]:
    """One independent job per expanded matrix cell."""
    resolved = load_matrix(matrix)
    return [
        SimulationJob(
            key=case_job_key(case),
            func="repro.scenarios.sweep:_measure_case",
            params=case.to_dict(),
            cache_fields=case_cache_fields(case),
        )
        for case in expand_matrix(resolved)
    ]


def _case_defaults_source(case: ScenarioCase) -> Optional[str]:
    """Current launch-default provenance of one cell, resolved at read time.

    Computed when results are assembled — never persisted in the cached
    payload — because provenance depends on ambient state (the active
    tuning database), not on the cell's cache identity: a tuned row whose
    values happen to equal the paper constants yields a byte-identical
    plan, so a payload cached without a database must not replay a stale
    ``"paper"`` label once one is active (or vice versa).
    """
    entry = get_scenario(case.scenario)
    if not entry.tunables:
        return None
    resolved = entry.resolve_tunable_defaults(
        case.plan_overrides, case.architecture, case.precision)
    return resolved[LAUNCH_DEFAULTS_SOURCE_KEY]


def assemble(payloads: Mapping[str, Mapping[str, object]],
             matrix: "str | Mapping[str, object] | None" = None,
             quick: bool = False) -> ExperimentResult:
    """Fold cell payloads into the typed sweep result (expansion order)."""
    resolved = load_matrix(matrix)
    cases = expand_matrix(resolved)
    measurements: List[Measurement] = []
    for case in cases:
        payload = payloads[case_job_key(case)]
        ms = payload.get("milliseconds")
        measurements.append(Measurement(
            kernel=case.scenario,
            architecture=case.architecture,
            workload=f"{case.size}/{case.engine}/{case.precision}",
            config=payload.get("config") or {},
            counters=payload.get("counters"),
            milliseconds=ms,
            value=ms,
            unit="ms",
            extra={
                "case_id": case.case_id,
                "engine": case.engine,
                "precision": case.precision,
                "size": case.size,
                "kernel_name": payload.get("kernel_name"),
                "scheme": (payload.get("parameters") or {}).get("scheme"),
                "output_digest": payload.get("output_digest"),
                "oracle_max_abs_error": payload.get("oracle_max_abs_error"),
                "launch_defaults_source": _case_defaults_source(case),
                "replay_fallback": payload.get("replay_fallback"),
            },
        ))
    scenarios = []
    for case in cases:
        if case.scenario not in scenarios:
            scenarios.append(case.scenario)
    return ExperimentResult(
        experiment="sweep",
        title=f"Scenario sweep — matrix {resolved.get('name', 'custom')!r}",
        quick=quick,
        measurements=measurements,
        metadata={
            "matrix": resolved,
            "cases": [case.case_id for case in cases],
            "scenarios": scenarios,
            "sweep_digest": stable_digest([case.case_id for case in cases]),
        },
    )


def render(result: ExperimentResult) -> str:
    """Fixed-width sweep report (pure view over the typed result)."""
    lines = [result.title,
             f"{len(result.measurements)} cases over "
             f"{len(result.metadata['scenarios'])} scenarios"]
    header = (f"{'case':<44} {'time_ms':>12} {'fma':>14} {'dram_MB':>10} "
              f"{'output':<16} {'oracle_err':>12}")
    lines.append(header)
    lines.append("-" * len(header))
    for m in result.measurements:
        counters = m.counters or {}
        dram_mb = (counters.get("dram_read_bytes", 0.0)
                   + counters.get("dram_write_bytes", 0.0)) / 1e6
        digest = m.extra.get("output_digest") or "-"
        error = m.extra.get("oracle_max_abs_error")
        error_text = "-" if error is None else f"{error:.3e}"
        ms_text = "-" if m.milliseconds is None else f"{m.milliseconds:.6f}"
        lines.append(f"{m.extra['case_id']:<44} {ms_text:>12} "
                     f"{counters.get('fma', 0):>14.0f} {dram_mb:>10.3f} "
                     f"{digest[:16]:<16} {error_text:>12}")
    fallbacks = [(m.extra["case_id"], event)
                 for m in result.measurements
                 for event in (m.extra.get("replay_fallback") or [])]
    for case_id, event in fallbacks:
        lines.append(f"replay fallback: {case_id}: {event['kernel']}: "
                     f"{event['reason']}")
    lines.append(f"sweep digest: {result.metadata['sweep_digest']}")
    return "\n".join(lines)


def collect_payloads(matrix: "str | Mapping[str, object] | None",
                     cache) -> "tuple[Dict[str, Mapping[str, object]], List[str]]":
    """Store-served payloads of a matrix, without executing anything.

    Returns ``(payloads, missing_job_keys)`` — the sweep service assembles
    results and streams cells from whatever the shared store already holds,
    so lookups go through ``cache.peek`` (no hit/miss accounting: nothing
    is being executed here, and claim-waiting workers poll the same way).
    """
    payloads: Dict[str, Mapping[str, object]] = {}
    missing: List[str] = []
    for job in jobs(matrix):
        payload = cache.peek(job.cache_key())
        if payload is None:
            missing.append(job.key)
        else:
            payloads[job.key] = payload
    return payloads, missing


def run_sweep(matrix: "str | Mapping[str, object] | None" = None,
              quick: bool = False, workers: int = 1,
              cache=None) -> ExperimentResult:
    """Run one sweep end to end through the job pipeline."""
    from ..experiments.parallel import execute_jobs

    resolved = load_matrix(matrix)
    payloads = execute_jobs(jobs(resolved), workers=workers, cache=cache)
    return assemble(payloads, resolved, quick=quick)


def report(matrix: "str | Mapping[str, object] | None" = None,
           quick: bool = False, workers: int = 1, cache=None) -> str:
    """Formatted sweep report."""
    return render(run_sweep(matrix, quick=quick, workers=workers, cache=cache))
