"""The scenario registry: every kernel/baseline declared once, as data.

A :class:`Scenario` bundles everything the rest of the repository needs to
exercise one implementation — a spec builder, a workload builder, a planner,
a runner entry point, a CPU oracle and the supported
(architecture x precision x engine) envelope.  Registering a scenario makes
it visible to three consumers at once:

* the sweep engine (:mod:`repro.scenarios.sweep`), which expands declarative
  Cartesian matrices over the registry into cached simulation jobs;
* the auto-generated differential test matrix (``tests/test_scenario_matrix``),
  which derives oracle and engine-parity checks for every registered case;
* the experiment modules, which look implementations up by name instead of
  importing each kernel wrapper ad hoc.

Adding a kernel therefore means one registration call — its sweep cells and
its correctness suite exist immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.launch_defaults import resolve_launch_defaults
from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import architecture_names
from ..serialization import stable_digest

#: execution engines a scenario may support: the legacy per-block SIMT loop,
#: the vectorised multi-block engine, the compiled trace-replay engine, the
#: closed-form instruction/traffic profile, and the Section 5 analytic
#: performance model
ENGINES: Tuple[str, ...] = ("scalar", "batched", "replay", "analytic", "model")

#: engines that evaluate closed forms instead of executing the kernel; these
#: never build a workload array and never produce a functional output
NON_EXECUTING_ENGINES: Tuple[str, ...] = ("analytic", "model")

#: how each functional engine maps onto the kernels' ``batch_size`` parameter
ENGINE_BATCH_SIZE: Dict[str, object] = {"scalar": 1, "batched": "auto",
                                        "replay": "replay"}

#: the launch parameters a scenario may declare tunable: the sliding-window
#: depth P and the CUDA block size B of Section 7.1's design-space study,
#: plus the per-dimension block shape R (warp rows per block) the extended
#: space explores on 2-D kernels
TUNABLE_PARAMETERS: Tuple[str, ...] = ("outputs_per_thread", "block_threads",
                                       "block_rows")

#: reserved parameter key carrying the default-resolution provenance
#: (``"explicit"``/``"tuned"``/``"paper"`` or a chain combination) from the
#: registry's one resolution point down to planners and result records
LAUNCH_DEFAULTS_SOURCE_KEY = "launch_defaults_source"


def _normalise_plan_kwargs(plan_kwargs: object) -> Tuple[Tuple[str, int], ...]:
    """Canonical (hashable, sorted) form of a launch-parameter override set."""
    if not plan_kwargs:
        return ()
    items = dict(plan_kwargs).items()
    try:
        return tuple(sorted((str(k), int(v)) for k, v in items))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"plan_kwargs values must be integers, got {dict(plan_kwargs)!r}"
        ) from exc


@dataclass(frozen=True)
class ScenarioCase:
    """One fully resolved cell of the scenario space.

    The five axes mirror the paper's evaluation matrix: implementation,
    GPU generation, precision, execution engine and problem size.  A sixth,
    optional axis — ``plan_kwargs`` — carries launch-parameter overrides
    (``outputs_per_thread``/``block_threads``), making the Section 7.1
    design space a first-class sweep dimension; it is stored canonically as
    a sorted tuple of pairs so cases stay hashable and deduplicable.
    """

    scenario: str
    architecture: str
    precision: str
    engine: str
    size: str
    plan_kwargs: object = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "plan_kwargs",
                           _normalise_plan_kwargs(self.plan_kwargs))

    @property
    def plan_overrides(self) -> Dict[str, int]:
        """The launch-parameter overrides as a plain mapping."""
        return dict(self.plan_kwargs)

    @property
    def case_id(self) -> str:
        """Deterministic identifier, e.g. ``"conv2d:p100:float32:batched:tiny"``.

        Launch-parameter overrides append a deterministic suffix
        (``...:tiny:block_threads=256,outputs_per_thread=2``); cases without
        overrides keep their historical five-part identifier.
        """
        base = (f"{self.scenario}:{self.architecture}:{self.precision}:"
                f"{self.engine}:{self.size}")
        if self.plan_kwargs:
            base += ":" + ",".join(f"{k}={v}" for k, v in self.plan_kwargs)
        return base

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scenario": self.scenario, "architecture": self.architecture,
            "precision": self.precision, "engine": self.engine,
            "size": self.size}
        if self.plan_kwargs:
            out["plan_kwargs"] = dict(self.plan_kwargs)
        return out

    def fingerprint(self) -> str:
        """Stable content hash of this case (cache keys, artifacts)."""
        return stable_digest(self.to_dict())


@dataclass(frozen=True)
class Scenario:
    """One registered implementation and its declarative envelope.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"conv2d"`` or ``"conv2d-npp"``.
    family:
        Problem family (``"convolution"``, ``"stencil"``, ``"scan"``).
    role:
        ``"ssam"`` for the paper's kernels, ``"baseline"`` otherwise.
    dims:
        Dimensionality of the problem domain (1, 2 or 3).
    runner:
        ``runner(spec, workload, params, architecture, precision, engine)``
        returning a :class:`~repro.kernels.KernelRunResult`.
    sizes:
        Named problem sizes; each value is the parameter mapping handed to
        the builders and the runner.  A size may restrict the engines it is
        feasible on with an ``"engines"`` entry (paper-scale domains are
        analytic-only).
    architectures / precisions / engines:
        The supported envelope; case expansion silently skips combinations
        outside it.
    spec_builder:
        ``spec_builder(params)`` returning the problem spec (or ``None`` for
        spec-less scenarios like scan).
    workload_builder:
        ``workload_builder(params, precision)`` returning the input array;
        not invoked for analytic cases.
    planner:
        Optional ``planner(spec, params, architecture, precision)`` returning
        the :class:`~repro.core.plan.SSAMPlan` used by the kernel, exposed so
        tests and cache keys can reason about register budgets.
    oracle:
        Optional ``oracle(spec, workload, params)`` returning the ground-truth
        output on the host; scenarios without one (analytic-only baselines)
        are excluded from functional validation.
    model:
        Optional ``model(spec, params, architecture, precision)`` returning a
        :class:`~repro.kernels.KernelRunResult` predicted by the Section 5
        analytic performance model (:mod:`repro.core.performance_model`);
        required when ``"model"`` appears in ``engines``.
    tunables:
        The launch parameters this scenario accepts as overrides (subset of
        :data:`TUNABLE_PARAMETERS`).  A tunable scenario's runner, model and
        planner all read the overrides from the parameter mapping they are
        handed (the registry merges a case's ``plan_kwargs`` into the size
        parameters), so the whole Section 7.1 design space flows through one
        code path.  Scenarios with no tunables reject any override.
    """

    name: str
    family: str
    dims: int
    runner: Callable[..., object]
    sizes: Mapping[str, Mapping[str, object]]
    architectures: Tuple[str, ...]
    precisions: Tuple[str, ...]
    engines: Tuple[str, ...]
    role: str = "ssam"
    spec_builder: Optional[Callable[..., object]] = None
    workload_builder: Optional[Callable[..., np.ndarray]] = None
    planner: Optional[Callable[..., object]] = None
    oracle: Optional[Callable[..., np.ndarray]] = None
    model: Optional[Callable[..., object]] = None
    tunables: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not self.sizes:
            raise ConfigurationError(f"scenario {self.name!r} declares no sizes")
        for engine in self.engines:
            if engine not in ENGINES:
                raise ConfigurationError(
                    f"scenario {self.name!r} declares unknown engine {engine!r}; "
                    f"expected one of {ENGINES}")
        if "model" in self.engines and self.model is None:
            raise ConfigurationError(
                f"scenario {self.name!r} declares the 'model' engine but "
                f"provides no model evaluator")
        for tunable in self.tunables:
            if tunable not in TUNABLE_PARAMETERS:
                raise ConfigurationError(
                    f"scenario {self.name!r} declares unknown tunable "
                    f"{tunable!r}; expected a subset of {TUNABLE_PARAMETERS}")
        object.__setattr__(self, "architectures", tuple(self.architectures))
        object.__setattr__(self, "precisions", tuple(self.precisions))
        object.__setattr__(self, "engines", tuple(self.engines))
        object.__setattr__(self, "tunables", tuple(self.tunables))
        object.__setattr__(self, "sizes", dict(self.sizes))

    # -- envelope -----------------------------------------------------------
    def resolve_size(self, size: str) -> Dict[str, object]:
        """Parameter mapping of a named size (without the engine restriction)."""
        try:
            params = dict(self.sizes[size])
        except KeyError as exc:
            raise ConfigurationError(
                f"scenario {self.name!r} has no size {size!r}; "
                f"available: {sorted(self.sizes)}") from exc
        params.pop("engines", None)
        return params

    def engines_for(self, size: str) -> Tuple[str, ...]:
        """Engines feasible at a named size (the size may restrict them)."""
        restricted = self.sizes.get(size, {}).get("engines")
        if restricted is None:
            return self.engines
        return tuple(e for e in restricted if e in self.engines)

    def supports(self, architecture: str, precision: str, engine: str,
                 size: Optional[str] = None) -> bool:
        """True when the combination lies inside this scenario's envelope."""
        if architecture not in self.architectures:
            return False
        if precision not in self.precisions:
            return False
        if engine not in self.engines:
            return False
        if size is not None:
            if size not in self.sizes or engine not in self.engines_for(size):
                return False
        return True

    def validate_plan_kwargs(self, plan_kwargs: Mapping[str, object]) -> Dict[str, int]:
        """Check launch-parameter overrides against the tunable envelope."""
        overrides = dict(_normalise_plan_kwargs(plan_kwargs))
        unknown = sorted(set(overrides) - set(self.tunables))
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} does not tune {unknown}; "
                f"tunable parameters: {list(self.tunables) or 'none'}")
        return overrides

    def supports_plan_kwargs(self, plan_kwargs: Mapping[str, object]) -> bool:
        """True when every override key lies inside the tunable envelope."""
        return not plan_kwargs or set(dict(plan_kwargs)) <= set(self.tunables)

    def resolve_tunable_defaults(self, params: Mapping[str, object],
                                 architecture: str,
                                 precision: str) -> Dict[str, object]:
        """Resolve this scenario's tunables through the default chain, once.

        Every tunable key is made concrete in the returned parameter mapping
        (explicit value -> tuned-database hit -> paper constant), and the
        chain outcome is recorded under
        :data:`LAUNCH_DEFAULTS_SOURCE_KEY` so planners, runners and result
        records all see the same values and the same provenance.  This is
        the registry's single resolution point: ``build_plan`` and ``run``
        both route through it, which keeps the plan used for cache keys
        identical to the one the kernel executes even when a tuning
        database is active.
        """
        out = dict(params)
        if not self.tunables:
            return out
        resolved = resolve_launch_defaults(
            self.tunables, architecture=architecture, precision=precision,
            scenario=self.name,
            explicit={key: params.get(key) for key in self.tunables})
        out.update(resolved.values)
        out[LAUNCH_DEFAULTS_SOURCE_KEY] = resolved.source
        return out

    def cases(self, architectures: Optional[Sequence[str]] = None,
              precisions: Optional[Sequence[str]] = None,
              engines: Optional[Sequence[str]] = None,
              sizes: Optional[Sequence[str]] = None,
              plan_kwargs: Optional[Sequence[Mapping[str, object]]] = None,
              ) -> List[ScenarioCase]:
        """Expand the (filtered) envelope into concrete cases.

        ``None`` for an axis means "everything the scenario supports";
        requested values outside the envelope are silently skipped, so one
        matrix can span scenarios with different envelopes.  ``plan_kwargs``
        is a sequence of launch-parameter override mappings (default: the
        single empty override); override sets naming parameters a scenario
        does not tune are skipped like any other out-of-envelope value.
        """
        archs = self.architectures if architectures is None else architectures
        precs = self.precisions if precisions is None else precisions
        engs = self.engines if engines is None else engines
        names = tuple(self.sizes) if sizes is None else sizes
        overrides = [{}] if plan_kwargs is None else list(plan_kwargs)
        out: List[ScenarioCase] = []
        for size in names:
            if size not in self.sizes:
                continue
            for arch in archs:
                for prec in precs:
                    for engine in engs:
                        if not self.supports(arch, prec, engine, size):
                            continue
                        for kwargs in overrides:
                            if not self.supports_plan_kwargs(kwargs):
                                continue
                            out.append(ScenarioCase(self.name, arch, prec,
                                                    engine, size, kwargs))
        return out

    # -- building blocks ----------------------------------------------------
    def build_spec(self, size: str):
        """The problem spec of a named size (``None`` for spec-less scenarios)."""
        if self.spec_builder is None:
            return None
        return self.spec_builder(self.resolve_size(size))

    def build_workload(self, size: str, precision: str) -> Optional[np.ndarray]:
        """The input array of a named size (``None`` when not applicable)."""
        if self.workload_builder is None:
            return None
        return self.workload_builder(self.resolve_size(size), precision)

    def build_plan(self, size: str, architecture: str, precision: str,
                   plan_kwargs: Optional[Mapping[str, object]] = None):
        """The SSAM plan of a named size, when the scenario has a planner.

        ``plan_kwargs`` overrides the launch parameters (P, B) exactly as
        the runner sees them, so cache keys and tests reason about the same
        plan the kernel will execute.
        """
        if self.planner is None:
            return None
        params = self.resolve_size(size)
        if plan_kwargs:
            params.update(self.validate_plan_kwargs(plan_kwargs))
        params = self.resolve_tunable_defaults(params, architecture, precision)
        return self.planner(self.build_spec(size), params,
                            architecture, precision)

    # -- execution -----------------------------------------------------------
    def run(self, spec, workload, params: Mapping[str, object],
            architecture: str, precision: str, engine: str,
            plan_kwargs: Optional[Mapping[str, object]] = None):
        """Low-level entry point: run with explicit spec/workload/params.

        ``plan_kwargs`` (validated against the tunable envelope) is merged
        into the parameter mapping handed to the runner or model, which
        thread the overrides into the kernel entry points.
        """
        if engine not in self.engines:
            raise ConfigurationError(
                f"scenario {self.name!r} does not support engine {engine!r}")
        params = dict(params)
        if plan_kwargs:
            params.update(self.validate_plan_kwargs(plan_kwargs))
        params = self.resolve_tunable_defaults(params, architecture, precision)
        if engine == "model":
            return self.model(spec, params, architecture, precision)
        return self.runner(spec, workload, params, architecture,
                           precision, engine)

    def run_case(self, case: ScenarioCase):
        """Run one expanded case end to end (builds spec + workload)."""
        if case.scenario != self.name:
            raise ConfigurationError(
                f"case {case.case_id!r} does not belong to scenario {self.name!r}")
        if not self.supports(case.architecture, case.precision, case.engine,
                             case.size):
            raise ConfigurationError(
                f"case {case.case_id!r} lies outside the scenario envelope")
        params = self.resolve_size(case.size)
        spec = self.build_spec(case.size)
        workload = (None if case.engine in NON_EXECUTING_ENGINES
                    else self.build_workload(case.size, case.precision))
        return self.run(spec, workload, params, case.architecture,
                        case.precision, case.engine,
                        plan_kwargs=case.plan_overrides)

    def run_analytic(self, spec, params: Mapping[str, object],
                     architecture: str, precision: str):
        """Analytic evaluation with an explicit spec and domain parameters.

        Used by the experiment modules, which sweep their own specs/domains
        rather than the registry's named sizes.
        """
        return self.run(spec, None, params, architecture, precision, "analytic")

    def oracle_output(self, case: ScenarioCase) -> np.ndarray:
        """Ground-truth output of one case, computed on the host."""
        if self.oracle is None:
            raise ConfigurationError(
                f"scenario {self.name!r} has no CPU oracle")
        params = self.resolve_size(case.size)
        spec = self.build_spec(case.size)
        workload = self.build_workload(case.size, case.precision)
        return self.oracle(spec, workload, params)

    def analysis(self, architecture: str = "p100",
                 precision: str = "float32", size: Optional[str] = None):
        """Static verification report of this scenario's kernel traces.

        Auto-derived like the differential matrices: runs the scenario once
        through the replay engine under a trace capture and verifies every
        recorded trace (races, bounds, performance lint, static-vs-dynamic
        counter cross-check).  Returns a
        :class:`repro.analysis.scenario.ScenarioAnalysis`.
        """
        from ..analysis.scenario import analyze_scenario

        return analyze_scenario(self.name, architecture=architecture,
                                precision=precision, size=size)


# ---------------------------------------------------------------------------
# the registry proper
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Register a scenario; duplicate names are configuration errors."""
    if scenario.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove a scenario (tests registering throwaway scenarios clean up)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}") from exc


def scenario_names(family: Optional[str] = None,
                   role: Optional[str] = None) -> List[str]:
    """Registered names in registration order, optionally filtered."""
    return [s.name for s in all_scenarios(family=family, role=role)]


def all_scenarios(family: Optional[str] = None,
                  role: Optional[str] = None) -> List[Scenario]:
    """Registered scenarios in registration order, optionally filtered."""
    out = []
    for scenario in _REGISTRY.values():
        if family is not None and scenario.family != family:
            continue
        if role is not None and scenario.role != role:
            continue
        out.append(scenario)
    return out


def expand_matrix(matrix: Mapping[str, object]) -> List[ScenarioCase]:
    """Expand a declarative Cartesian matrix into concrete cases.

    The matrix is a JSON-style mapping with up to five axes::

        {"scenarios": ["conv2d", "scan"],     # or "all", "ssam", a family name
         "architectures": ["p100", "v100"],   # or "all"
         "precisions": ["float32", "float64"],
         "engines": ["scalar", "batched"],
         "sizes": ["tiny"],
         "plan_kwargs": [{}, {"block_threads": 256}]}   # optional sixth axis

    Omitted axes (or ``"all"``) default to each scenario's full envelope;
    combinations outside an envelope are skipped, so one matrix can span
    scenarios with different capabilities.  Axis *values*, however, are
    validated against the global vocabularies up front: a misspelled
    architecture, precision, engine or size raises
    :class:`~repro.errors.ConfigurationError` naming the valid values
    instead of silently thinning the matrix (or surfacing as an opaque
    zero-case error through the job service).  ``plan_kwargs`` is a list of
    launch-parameter override mappings (default: one empty override);
    scenarios that do not tune a named parameter skip that override set.
    Expansion order is deterministic: registration order, then size,
    architecture, precision, engine, override.
    """
    selectors = matrix.get("scenarios", "all")
    if isinstance(selectors, str):
        selectors = [selectors]
    chosen: List[Scenario] = []
    for selector in selectors:
        if selector == "all":
            matched = all_scenarios()
        elif selector in ("ssam", "baseline"):
            matched = all_scenarios(role=selector)
        elif any(s.family == selector for s in _REGISTRY.values()):
            matched = all_scenarios(family=selector)
        else:
            matched = [get_scenario(selector)]
        for scenario in matched:
            if scenario not in chosen:
                chosen.append(scenario)

    def axis(key: str) -> Optional[Sequence[str]]:
        value = matrix.get(key)
        if value is None or value == "all":
            return None
        if isinstance(value, str):
            return [value]
        return list(value)

    def validated(key: str, valid: Sequence[str]) -> Optional[Sequence[str]]:
        values = axis(key)
        if values is not None:
            unknown = sorted(set(values) - set(valid))
            if unknown:
                raise ConfigurationError(
                    f"unknown {key} in scenario matrix: {unknown}; "
                    f"valid {key}: {sorted(valid)}")
        return values

    architectures = validated("architectures", architecture_names())
    engines = validated("engines", ENGINES)
    known_sizes = sorted({size for s in chosen for size in s.sizes})
    sizes = validated("sizes", known_sizes)
    precisions = axis("precisions")
    if precisions is not None:
        for name in precisions:
            resolve_precision(name)  # raises ConfigurationError when unknown

    overrides = matrix.get("plan_kwargs")
    if overrides is not None:
        if isinstance(overrides, Mapping):
            overrides = [overrides]
        overrides = [dict(entry) for entry in overrides]

    cases: List[ScenarioCase] = []
    for scenario in chosen:
        cases.extend(scenario.cases(architectures=architectures,
                                    precisions=precisions,
                                    engines=engines,
                                    sizes=sizes,
                                    plan_kwargs=overrides))
    if not cases:
        raise ConfigurationError(
            f"scenario matrix expands to zero cases: {dict(matrix)!r}")
    return cases
