"""Scenario registry + sweep subsystem.

``repro.scenarios`` turns scenario count into a data problem: every SSAM
kernel and baseline registers itself once (:mod:`~repro.scenarios.builtin`)
with its spec builder, planner, runner, CPU oracle and supported
(architecture x precision x engine) envelope; the registry
(:mod:`~repro.scenarios.registry`) expands declarative Cartesian matrices
over those registrations, and the sweep engine
(:mod:`~repro.scenarios.sweep`) runs the expansion through the cached,
sharded experiment pipeline (``ssam-repro --experiment sweep``).

Importing this package populates the registry with the built-in scenarios.
"""

from . import builtin  # noqa: F401  (registers the built-in scenarios)
from .registry import (
    ENGINE_BATCH_SIZE,
    ENGINES,
    NON_EXECUTING_ENGINES,
    TUNABLE_PARAMETERS,
    Scenario,
    ScenarioCase,
    all_scenarios,
    expand_matrix,
    get_scenario,
    register,
    scenario_names,
    unregister,
)

__all__ = [
    "ENGINE_BATCH_SIZE",
    "ENGINES",
    "NON_EXECUTING_ENGINES",
    "TUNABLE_PARAMETERS",
    "Scenario",
    "ScenarioCase",
    "all_scenarios",
    "builtin",
    "expand_matrix",
    "get_scenario",
    "register",
    "scenario_names",
    "unregister",
]
