"""Convolution problem specifications and filter constructors."""

from .spec import BOUNDARY_MODES, ConvolutionSpec

__all__ = ["BOUNDARY_MODES", "ConvolutionSpec"]
