"""Convolution problem specifications (Section 2.1 of the paper).

The paper's convention is followed throughout: a filter has size ``(M, N)``
where **M is the width** (x extent, the direction along the warp lanes) and
**N is the height** (y extent, the direction cached in each thread's
registers).  The operation computed is the cross-correlation form used by
image-processing libraries (NPP, ArrayFire):

``out(x, y) = sum_{m, n} in(x + m - ax, y + n - ay) * w(n, m)``

with a replicate ("nearest") boundary, anchored at the filter centre by
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..dtypes import resolve_precision
from ..errors import SpecificationError
from ..serialization import array_digest, stable_digest

#: supported boundary handling modes (NumPy pad mode names)
BOUNDARY_MODES = ("edge", "constant", "wrap", "reflect")


@dataclass(frozen=True)
class ConvolutionSpec:
    """A 2-D convolution problem: filter weights plus boundary handling.

    Attributes
    ----------
    weights:
        2-D array of shape ``(N, M)`` = (height, width), row ``n`` holding
        the weights applied to input row ``y + n - anchor_y``.
    anchor:
        ``(anchor_x, anchor_y)`` position of the output point inside the
        filter footprint; defaults to the centre.
    boundary:
        One of :data:`BOUNDARY_MODES`; ``"edge"`` replicates the border
        pixel like NPP's *Replicate* kernels.
    """

    weights: np.ndarray
    anchor: Optional[Tuple[int, int]] = None
    boundary: str = "edge"
    name: str = "conv2d"

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        if weights.ndim != 2:
            raise SpecificationError("convolution weights must be a 2-D array")
        if weights.size == 0:
            raise SpecificationError("convolution weights must be non-empty")
        if self.boundary not in BOUNDARY_MODES:
            raise SpecificationError(
                f"unknown boundary mode {self.boundary!r}; expected one of {BOUNDARY_MODES}"
            )
        object.__setattr__(self, "weights", weights)
        if self.anchor is None:
            object.__setattr__(self, "anchor", (weights.shape[1] // 2, weights.shape[0] // 2))
        ax, ay = self.anchor
        if not (0 <= ax < weights.shape[1] and 0 <= ay < weights.shape[0]):
            raise SpecificationError(f"anchor {self.anchor} outside the filter footprint")

    # -- identity ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable description of this spec (weights included)."""
        return {
            "kind": "conv2d",
            "name": self.name,
            "boundary": self.boundary,
            "anchor": list(self.anchor),
            "shape": [self.filter_height, self.filter_width],
            "weights_digest": array_digest(self.weights),
        }

    def fingerprint(self) -> str:
        """Stable content hash used by plan memoisation and the simulation
        cache; two specs with identical weights/anchor/boundary share it.
        Computed once per instance (specs are immutable)."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = stable_digest(self.to_dict())
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConvolutionSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    # -- geometry ---------------------------------------------------------
    @property
    def filter_width(self) -> int:
        """M — the filter extent along x (warp-lane direction)."""
        return int(self.weights.shape[1])

    @property
    def filter_height(self) -> int:
        """N — the filter extent along y (register-cache direction)."""
        return int(self.weights.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        """``(M, N)`` as written in the paper."""
        return (self.filter_width, self.filter_height)

    @property
    def taps(self) -> int:
        """Number of filter coefficients (M x N)."""
        return int(self.weights.size)

    @property
    def flops_per_output(self) -> int:
        """FLOPs per output point (one FMA per tap = 2 FLOPs, minus one add)."""
        return 2 * self.taps - 1

    def weight_column(self, m: int) -> np.ndarray:
        """Column ``w_m`` of Figure 2a (all N weights for one x offset)."""
        return self.weights[:, m]

    # -- reference implementation -------------------------------------------
    def reference(self, image: np.ndarray, precision: object = None) -> np.ndarray:
        """Ground-truth output computed on the host with NumPy.

        ``out(y, x) = sum_{n, m} in(y + n - ay, x + m - ax) * w[n, m]`` with
        the spec's boundary handling; used by every correctness test in the
        repository.
        """
        if precision is None:
            dtype = image.dtype
        else:
            dtype = resolve_precision(precision).numpy_dtype
        image64 = np.asarray(image, dtype=np.float64)
        if image64.ndim != 2:
            raise SpecificationError("2-D convolution reference expects a 2-D image")
        height, width = image64.shape
        ax, ay = self.anchor
        pad_top, pad_bottom = ay, self.filter_height - 1 - ay
        pad_left, pad_right = ax, self.filter_width - 1 - ax
        pad_kwargs = {"mode": self.boundary}
        if self.boundary == "constant":
            pad_kwargs["constant_values"] = 0.0
        padded = np.pad(image64, ((pad_top, pad_bottom), (pad_left, pad_right)), **pad_kwargs)
        result = np.zeros_like(image64)
        for n in range(self.filter_height):
            for m in range(self.filter_width):
                result += self.weights[n, m] * padded[n:n + height, m:m + width]
        return result.astype(dtype)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def box(cls, width: int, height: Optional[int] = None, boundary: str = "edge") -> "ConvolutionSpec":
        """Normalised box (mean) filter of the given size."""
        height = width if height is None else height
        if width <= 0 or height <= 0:
            raise SpecificationError("filter dimensions must be positive")
        weights = np.full((height, width), 1.0 / (width * height))
        return cls(weights=weights, boundary=boundary, name=f"box{width}x{height}")

    @classmethod
    def gaussian(cls, width: int, height: Optional[int] = None, sigma: Optional[float] = None,
                 boundary: str = "edge") -> "ConvolutionSpec":
        """Separable Gaussian filter sampled on a ``height x width`` grid."""
        height = width if height is None else height
        if width <= 0 or height <= 0:
            raise SpecificationError("filter dimensions must be positive")
        sigma_x = sigma if sigma is not None else max(width / 4.0, 0.5)
        sigma_y = sigma if sigma is not None else max(height / 4.0, 0.5)
        xs = np.arange(width) - (width - 1) / 2.0
        ys = np.arange(height) - (height - 1) / 2.0
        gx = np.exp(-0.5 * (xs / sigma_x) ** 2)
        gy = np.exp(-0.5 * (ys / sigma_y) ** 2)
        weights = np.outer(gy, gx)
        weights /= weights.sum()
        return cls(weights=weights, boundary=boundary, name=f"gauss{width}x{height}")

    @classmethod
    def random(cls, width: int, height: Optional[int] = None, seed: int = 0,
               boundary: str = "edge") -> "ConvolutionSpec":
        """Random filter (used by the evaluation sweeps and property tests)."""
        height = width if height is None else height
        rng = np.random.default_rng(seed)
        weights = rng.standard_normal((height, width))
        return cls(weights=weights, boundary=boundary, name=f"rand{width}x{height}")

    @classmethod
    def sobel_x(cls, boundary: str = "edge") -> "ConvolutionSpec":
        """3x3 horizontal Sobel edge-detection filter."""
        weights = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
        return cls(weights=weights, boundary=boundary, name="sobel_x")

    @classmethod
    def sharpen(cls, boundary: str = "edge") -> "ConvolutionSpec":
        """3x3 sharpening filter."""
        weights = np.array([[0.0, -1.0, 0.0], [-1.0, 5.0, -1.0], [0.0, -1.0, 0.0]])
        return cls(weights=weights, boundary=boundary, name="sharpen")
