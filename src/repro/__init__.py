"""repro — a full Python reproduction of the SSAM execution model (SC '19).

The package implements, on a simulated GPU substrate, the Software Systolic
Array execution Model of Chen et al. — register-cache + warp-shuffle kernels
for 2-D convolution, 2-D/3-D stencils and scans — together with the
shared-memory, naive, FFT and temporal-blocking baselines the paper compares
against, the Section 5 performance model, and harnesses that regenerate
every table and figure of the evaluation.

Quick start::

    import numpy as np
    from repro import ssam_convolve2d, ConvolutionSpec

    image = np.random.rand(256, 256).astype(np.float32)
    spec = ConvolutionSpec.gaussian(5)
    result = ssam_convolve2d(image, spec, architecture="v100")
    print(result.milliseconds, result.output)
"""

from .convolution.spec import ConvolutionSpec
from .core.plan import SSAMPlan, plan_convolution, plan_stencil
from .dtypes import FLOAT32, FLOAT64, Precision, resolve_precision
from .errors import (
    ConfigurationError,
    DependencyError,
    LaunchError,
    ReproError,
    ResourceExhaustedError,
    SimulationError,
    SpecificationError,
)
from .gpu.architecture import (
    ARCHITECTURES,
    TESLA_K40,
    TESLA_M40,
    TESLA_P100,
    TESLA_V100,
    get_architecture,
)
from .stencils.catalog import CATALOG as STENCIL_CATALOG
from .stencils.catalog import get_benchmark, get_stencil
from .stencils.spec import StencilPoint, StencilSpec

__version__ = "1.0.0"

__all__ = [
    "ConvolutionSpec",
    "SSAMPlan",
    "plan_convolution",
    "plan_stencil",
    "FLOAT32",
    "FLOAT64",
    "Precision",
    "resolve_precision",
    "ConfigurationError",
    "DependencyError",
    "LaunchError",
    "ReproError",
    "ResourceExhaustedError",
    "SimulationError",
    "SpecificationError",
    "ARCHITECTURES",
    "TESLA_K40",
    "TESLA_M40",
    "TESLA_P100",
    "TESLA_V100",
    "get_architecture",
    "STENCIL_CATALOG",
    "get_benchmark",
    "get_stencil",
    "StencilPoint",
    "StencilSpec",
    "ssam_convolve1d",
    "ssam_convolve2d",
    "ssam_stencil2d",
    "ssam_stencil3d",
    "ssam_scan",
    "get_scenario",
    "scenario_names",
    "__version__",
]


def __getattr__(name):  # lazy imports keep heavy kernel modules off the import path
    if name == "ssam_convolve1d":
        from .kernels.conv1d_ssam import ssam_convolve1d

        return ssam_convolve1d
    if name == "ssam_convolve2d":
        from .kernels.conv2d_ssam import ssam_convolve2d

        return ssam_convolve2d
    if name in ("get_scenario", "scenario_names"):
        from . import scenarios

        return getattr(scenarios, name)
    if name == "ssam_stencil2d":
        from .kernels.stencil2d_ssam import ssam_stencil2d

        return ssam_stencil2d
    if name == "ssam_stencil3d":
        from .kernels.stencil3d_ssam import ssam_stencil3d

        return ssam_stencil3d
    if name == "ssam_scan":
        from .kernels.scan_ssam import ssam_scan

        return ssam_scan
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
