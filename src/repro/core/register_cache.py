"""Register-cache planning (Section 4.2, Equation 3).

Each thread of a warp caches ``C = N + P - 1`` input elements in registers
and produces ``P`` outputs with a sliding window, so that the data loaded
for output ``p`` is reused for output ``p+1``.  The plan object below
captures that arithmetic, checks the register budget of the target
architecture and exposes the derived quantities the kernels, the blocking
scheme and the performance model all need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dtypes import Precision, resolve_precision
from ..errors import ConfigurationError, ResourceExhaustedError
from ..gpu.architecture import get_architecture
from ..gpu.register_file import (
    BASE_REGISTER_OVERHEAD,
    REGISTER_ALLOCATION_GRANULARITY,
    RegisterAllocation,
    allocate_registers,
    registers_for_cache,
    warp_register_matrix_bytes,
)


@dataclass(frozen=True)
class RegisterCachePlan:
    """How one thread's register cache is laid out for an SSAM kernel.

    Attributes
    ----------
    filter_height:
        N — the footprint height of the filter/stencil (the number of
        consecutive rows each output needs).
    outputs_per_thread:
        P — outputs computed per thread by the sliding window.
    accumulators:
        Live partial sums held simultaneously (defaults to P).
    """

    filter_height: int
    outputs_per_thread: int
    precision: Precision = field(default_factory=lambda: resolve_precision("float32"))
    accumulators: Optional[int] = None
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.filter_height < 1:
            raise ConfigurationError("filter height N must be >= 1")
        if self.outputs_per_thread < 1:
            raise ConfigurationError("outputs per thread P must be >= 1")
        if self.accumulators is None:
            object.__setattr__(self, "accumulators", self.outputs_per_thread)
        object.__setattr__(self, "precision", resolve_precision(self.precision))

    # -- Equation 3 -----------------------------------------------------------
    @property
    def cache_values(self) -> int:
        """C = N + P - 1 cached elements per thread (Equation 3)."""
        return self.filter_height + self.outputs_per_thread - 1

    @property
    def registers_per_thread(self) -> int:
        """32-bit registers required per thread, including compiler overhead."""
        return registers_for_cache(self.cache_values, self.accumulators, self.precision)

    @property
    def warp_cache_bytes(self) -> int:
        """Size of the WarpSize x C register matrix of Figure 2a."""
        return warp_register_matrix_bytes(self.cache_values, self.precision, self.warp_size)

    @property
    def reuse_factor(self) -> float:
        """How many outputs each cached element contributes to on average.

        Equals ``P * N / C``; approaches N for large P, 1 when P == 1.
        """
        return self.outputs_per_thread * self.filter_height / self.cache_values

    # -- validation ----------------------------------------------------------
    def allocation(self, architecture: object = "p100",
                   allow_spill: bool = True) -> RegisterAllocation:
        """Register allocation on the target architecture."""
        arch = get_architecture(architecture)
        return allocate_registers(arch, self.registers_per_thread, allow_spill=allow_spill)

    def validate(self, architecture: object = "p100") -> "RegisterCachePlan":
        """Raise if the plan would spill registers on the architecture."""
        allocation = self.allocation(architecture, allow_spill=True)
        if allocation.spills:
            raise ResourceExhaustedError(
                f"register cache of C={self.cache_values} values at {self.precision} "
                f"needs {self.registers_per_thread} registers/thread and would spill "
                f"{allocation.spilled_per_thread} of them"
            )
        return self

    def fits(self, architecture: object = "p100") -> bool:
        """True when the plan does not spill on the architecture."""
        return not self.allocation(architecture).spills


def max_outputs_per_thread(filter_height: int, architecture: object = "p100",
                           precision: object = "float32",
                           overhead: int = BASE_REGISTER_OVERHEAD,
                           warp_size: int = 32) -> int:
    """Largest P for which the register cache does not spill.

    Solves ``(C + P) * regs_per_value + overhead <= cap`` with
    ``C = N + P - 1``.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    # requests round up to the allocation granularity before the cap check,
    # so an odd cap (255) effectively grants one register less
    granularity = REGISTER_ALLOCATION_GRANULARITY
    cap = (arch.max_registers_per_thread // granularity) * granularity
    per_value = prec.registers_per_value
    budget = cap - overhead
    # (N + 2P - 1) * per_value <= budget
    numerator = budget // per_value - filter_height + 1
    best = numerator // 2
    return max(1, best)


def resolve_outputs_per_thread(filter_height: int, architecture: object = "p100",
                               precision: object = "float32",
                               requested_outputs: int = 4,
                               warp_size: int = 32) -> int:
    """The P that :func:`choose_plan` will actually pick for a request.

    Single source of truth for the clamp: callers that need the resolved
    identity without building a plan (the plan memoisation key, the tuning
    design space's duplicate detection) use this, so they can never drift
    from what ``choose_plan`` builds.
    """
    limit = max_outputs_per_thread(filter_height, architecture, precision,
                                   warp_size=warp_size)
    return max(1, min(int(requested_outputs), limit))


def choose_plan(filter_height: int, architecture: object = "p100",
                precision: object = "float32",
                requested_outputs: int = 4, warp_size: int = 32) -> RegisterCachePlan:
    """Pick a non-spilling register-cache plan, preferring ``requested_outputs``.

    The paper uses P=4 for the convolution evaluation; deep filters at
    double precision may force a smaller P, which this helper handles.
    """
    outputs = resolve_outputs_per_thread(filter_height, architecture, precision,
                                         requested_outputs, warp_size=warp_size)
    plan = RegisterCachePlan(filter_height=filter_height, outputs_per_thread=outputs,
                             precision=resolve_precision(precision), warp_size=warp_size)
    return plan.validate(architecture)
