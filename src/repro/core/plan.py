"""End-to-end SSAM execution plans.

An :class:`SSAMPlan` bundles everything needed to run (or cost) an SSAM
kernel for a given problem on a given architecture: the register-cache plan,
the overlapped blocking geometry, the systolic program J = (O, D, X, Y) and
the resulting CUDA launch configuration.  Experiments use plans so that the
functional kernels, the analytic traffic profiles and the performance model
are always parameterised identically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..convolution.spec import ConvolutionSpec
from ..dtypes import Precision, resolve_precision
from ..gpu.architecture import GPUArchitecture, get_architecture
from ..gpu.kernel import LaunchConfig
from ..gpu.occupancy import OccupancyResult, compute_occupancy, validate_block_threads
from ..stencils.spec import StencilSpec
from .blocking import OverlappedBlocking
from .launch_defaults import PAPER_LAUNCH_DEFAULTS, resolve_launch_defaults
from .model import SystolicProgram
from .register_cache import RegisterCachePlan, choose_plan, resolve_outputs_per_thread

#: the paper's evaluation constants (Section 6.2), re-exported for
#: compatibility; the authoritative copy — and the tuned-default resolution
#: chain layered on top — lives in :mod:`repro.core.launch_defaults`
DEFAULT_BLOCK_THREADS = PAPER_LAUNCH_DEFAULTS["block_threads"]
DEFAULT_OUTPUTS_PER_THREAD = PAPER_LAUNCH_DEFAULTS["outputs_per_thread"]


@dataclass(frozen=True)
class SSAMPlan:
    """A fully resolved SSAM configuration for one problem instance."""

    problem: Union[ConvolutionSpec, StencilSpec]
    architecture: GPUArchitecture
    register_cache: RegisterCachePlan
    blocking: OverlappedBlocking
    precision: Precision
    block_threads: int
    #: where the launch parameters came from ("explicit", "tuned", "paper"
    #: or a chain combination); provenance only — excluded from equality,
    #: ``to_dict`` and the fingerprint so identically-parameterised plans
    #: share cache entries regardless of how their values were resolved
    defaults_source: Optional[str] = field(default=None, compare=False)

    @property
    def program(self) -> SystolicProgram:
        """The systolic program J = (O, D, X, Y), built on first access.

        Construction (and its dependency-DAG validation) allocates graph
        structures that nothing on the launch/cache-key path needs, so it
        is deferred until a consumer actually inspects the schedule.
        """
        cached = self.__dict__.get("_program")
        if cached is None:
            if isinstance(self.problem, ConvolutionSpec):
                cached = SystolicProgram.from_convolution(self.problem,
                                                          self.register_cache)
            else:
                cached = SystolicProgram.from_stencil(self.problem,
                                                      self.register_cache)
            object.__setattr__(self, "_program", cached)
        return cached

    # -- geometry ---------------------------------------------------------------
    @property
    def filter_width(self) -> int:
        """M — footprint width (warp-lane direction)."""
        return self.blocking.filter_width

    @property
    def filter_height(self) -> int:
        """N — footprint height (register-cache direction)."""
        return self.blocking.filter_height

    @property
    def outputs_per_thread(self) -> int:
        """P — sliding-window depth."""
        return self.register_cache.outputs_per_thread

    @property
    def block_rows(self) -> int:
        """R — warp rows per block (1 = the paper's 1-D block shape)."""
        return self.blocking.block_rows

    @property
    def shared_bytes_per_block(self) -> int:
        """Shared memory used per block (filter weights for convolutions)."""
        if isinstance(self.problem, ConvolutionSpec):
            return self.problem.taps * self.precision.itemsize
        return 0

    def launch_config(self, width: int, height: int) -> LaunchConfig:
        """CUDA launch configuration for a ``width x height`` domain."""
        grid = self.blocking.grid_dim(width, height)
        return LaunchConfig(
            grid_dim=grid,
            block_threads=self.block_threads,
            registers_per_thread=self.register_cache.registers_per_thread,
            shared_bytes_per_block=self.shared_bytes_per_block,
            precision=self.precision,
            memory_parallelism=float(self.register_cache.cache_values),
        )

    def occupancy(self) -> OccupancyResult:
        """Occupancy of this plan on its architecture."""
        return compute_occupancy(
            self.architecture,
            self.block_threads,
            self.register_cache.registers_per_thread,
            self.shared_bytes_per_block,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable identity of this plan (cache keys, artifacts).

        ``block_rows`` appears only when it deviates from the classic
        R=1 shape, so every pre-existing plan keeps its fingerprint (and
        with it every cached simulation keyed on one).
        """
        out: Dict[str, object] = {
            "problem": self.problem.fingerprint(),
            "architecture": self.architecture.name,
            "precision": self.precision.name,
            "M": self.filter_width,
            "N": self.filter_height,
            "P": self.outputs_per_thread,
            "C": self.register_cache.cache_values,
            "registers_per_thread": self.register_cache.registers_per_thread,
            "block_threads": self.block_threads,
            "shared_bytes_per_block": self.shared_bytes_per_block,
        }
        if self.block_rows != 1:
            out["block_rows"] = self.block_rows
        return out

    def fingerprint(self) -> str:
        """Stable content hash of this plan."""
        from ..serialization import stable_digest

        return stable_digest(self.to_dict())

    def describe(self) -> Dict[str, object]:
        """Summary used by examples and the experiment reports."""
        occupancy = self.occupancy()
        return {
            "problem": getattr(self.problem, "name", "problem"),
            "architecture": self.architecture.name,
            "precision": self.precision.name,
            "M": self.filter_width,
            "N": self.filter_height,
            "P": self.outputs_per_thread,
            "C": self.register_cache.cache_values,
            "registers_per_thread": self.register_cache.registers_per_thread,
            "block_threads": self.block_threads,
            "block_rows": self.block_rows,
            "valid_outputs_per_warp": self.blocking.valid_outputs_per_warp,
            "halo_ratio": round(self.blocking.halo_ratio, 4),
            "occupancy": round(occupancy.occupancy, 3),
            "shuffles_per_pass": self.program.shuffles_per_pass,
            "defaults_source": self.defaults_source,
        }


#: memoised plans: repeated launches of the same configuration (benchmark
#: sweeps, iterative stencils, tuner cells) skip re-validating identical
#: specs.  Keys are the *resolved* plan identity — the clamped P, not the
#: requested one — so equivalent plans share an entry; eviction is LRU.
_PLAN_CACHE: "OrderedDict[object, SSAMPlan]" = OrderedDict()
_PLAN_CACHE_MAX = 512


def _spec_token(spec: Union[ConvolutionSpec, StencilSpec]) -> object:
    """A hashable identity token for a problem spec.

    Both spec types expose a stable content ``fingerprint()``; using it as
    the memoisation token keeps this cache aligned with the on-disk
    simulation cache, which keys on the same digests.
    """
    return spec.fingerprint()


def _cached_plan(kind: str, spec, arch, prec, resolved_outputs: int,
                 block_threads: int, block_rows: int, source: Optional[str],
                 build) -> SSAMPlan:
    try:
        key = (kind, _spec_token(spec), arch, prec, resolved_outputs,
               block_threads, block_rows, source)
        hash(key)
    except TypeError:
        return build()
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _PLAN_CACHE.move_to_end(key)
        return plan
    plan = build()
    while len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    _PLAN_CACHE[key] = plan
    return plan


def _resolve_plan_parameters(arch, prec, outputs_per_thread, block_threads,
                             block_rows, scenario, defaults_source):
    """Resolve the three launch parameters through the default chain.

    Parameters passed as ``None`` resolve through
    :func:`repro.core.launch_defaults.resolve_launch_defaults` (tuned rows
    when a database is active and a scenario identity is known, paper
    constants otherwise).  An explicit ``defaults_source`` — the scenario
    registry resolves once and hands planners already-concrete values —
    overrides the locally computed provenance.
    """
    resolved = resolve_launch_defaults(
        ("outputs_per_thread", "block_threads", "block_rows"),
        architecture=arch.name, precision=prec.name, scenario=scenario,
        explicit={"outputs_per_thread": outputs_per_thread,
                  "block_threads": block_threads,
                  "block_rows": block_rows})
    source = defaults_source if defaults_source is not None else resolved.source
    values = resolved.values
    return (values["outputs_per_thread"], values["block_threads"],
            values["block_rows"], source)


def plan_convolution(spec: ConvolutionSpec, architecture: object = "p100",
                     precision: object = "float32",
                     outputs_per_thread: Optional[int] = None,
                     block_threads: Optional[int] = None,
                     block_rows: Optional[int] = None,
                     scenario: Optional[str] = None,
                     defaults_source: Optional[str] = None) -> SSAMPlan:
    """Build an SSAM plan for a 2-D convolution (Listing 1 configuration).

    Launch parameters left as ``None`` resolve through the default chain
    (explicit -> tuned database -> paper constants); the chain outcome is
    recorded on the plan as ``defaults_source``.  Plans are memoised on
    their resolved identity: repeated launches of the same (spec,
    architecture, precision, resolved P, B, R) configuration — including
    requests that clamp to the same P — return the cached plan without
    re-validating the spec.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    p_request, b_threads, b_rows, source = _resolve_plan_parameters(
        arch, prec, outputs_per_thread, block_threads, block_rows,
        scenario, defaults_source)
    validate_block_threads(arch, b_threads)
    resolved = resolve_outputs_per_thread(spec.filter_height, arch, prec,
                                          p_request)

    def build() -> SSAMPlan:
        cache = choose_plan(spec.filter_height, arch, prec,
                            requested_outputs=resolved)
        blocking = OverlappedBlocking.from_plan(cache, spec.filter_width,
                                                b_threads, b_rows)
        return SSAMPlan(problem=spec, architecture=arch, register_cache=cache,
                        blocking=blocking, precision=prec,
                        block_threads=b_threads, defaults_source=source)

    return _cached_plan("conv2d", spec, arch, prec, resolved,
                        b_threads, b_rows, source, build)


def plan_stencil(spec: StencilSpec, architecture: object = "p100",
                 precision: object = "float32",
                 outputs_per_thread: Optional[int] = None,
                 block_threads: Optional[int] = None,
                 block_rows: Optional[int] = None,
                 scenario: Optional[str] = None,
                 defaults_source: Optional[str] = None) -> SSAMPlan:
    """Build an SSAM plan for the in-plane part of a 2-D/3-D stencil.

    Defaults resolve and memoise like :func:`plan_convolution`.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    p_request, b_threads, b_rows, source = _resolve_plan_parameters(
        arch, prec, outputs_per_thread, block_threads, block_rows,
        scenario, defaults_source)
    validate_block_threads(arch, b_threads)
    resolved = resolve_outputs_per_thread(spec.footprint_height, arch, prec,
                                          p_request)

    def build() -> SSAMPlan:
        cache = choose_plan(spec.footprint_height, arch, prec,
                            requested_outputs=resolved)
        blocking = OverlappedBlocking.from_plan(cache, spec.footprint_width,
                                                b_threads, b_rows)
        return SSAMPlan(problem=spec, architecture=arch, register_cache=cache,
                        blocking=blocking, precision=prec,
                        block_threads=b_threads, defaults_source=source)

    return _cached_plan("stencil", spec, arch, prec, resolved,
                        b_threads, b_rows, source, build)
