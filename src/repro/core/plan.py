"""End-to-end SSAM execution plans.

An :class:`SSAMPlan` bundles everything needed to run (or cost) an SSAM
kernel for a given problem on a given architecture: the register-cache plan,
the overlapped blocking geometry, the systolic program J = (O, D, X, Y) and
the resulting CUDA launch configuration.  Experiments use plans so that the
functional kernels, the analytic traffic profiles and the performance model
are always parameterised identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..convolution.spec import ConvolutionSpec
from ..dtypes import Precision, resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import GPUArchitecture, get_architecture
from ..gpu.kernel import LaunchConfig
from ..gpu.occupancy import OccupancyResult, compute_occupancy
from ..stencils.spec import StencilSpec
from .blocking import OverlappedBlocking
from .model import SystolicProgram
from .register_cache import RegisterCachePlan, choose_plan

#: the block size used throughout the paper's evaluation (Section 6.2)
DEFAULT_BLOCK_THREADS = 128
#: the sliding-window depth used throughout the paper's evaluation
DEFAULT_OUTPUTS_PER_THREAD = 4


@dataclass(frozen=True)
class SSAMPlan:
    """A fully resolved SSAM configuration for one problem instance."""

    problem: Union[ConvolutionSpec, StencilSpec]
    architecture: GPUArchitecture
    register_cache: RegisterCachePlan
    blocking: OverlappedBlocking
    program: SystolicProgram
    precision: Precision
    block_threads: int

    # -- geometry ---------------------------------------------------------------
    @property
    def filter_width(self) -> int:
        """M — footprint width (warp-lane direction)."""
        return self.blocking.filter_width

    @property
    def filter_height(self) -> int:
        """N — footprint height (register-cache direction)."""
        return self.blocking.filter_height

    @property
    def outputs_per_thread(self) -> int:
        """P — sliding-window depth."""
        return self.register_cache.outputs_per_thread

    @property
    def shared_bytes_per_block(self) -> int:
        """Shared memory used per block (filter weights for convolutions)."""
        if isinstance(self.problem, ConvolutionSpec):
            return self.problem.taps * self.precision.itemsize
        return 0

    def launch_config(self, width: int, height: int) -> LaunchConfig:
        """CUDA launch configuration for a ``width x height`` domain."""
        grid = self.blocking.grid_dim(width, height)
        return LaunchConfig(
            grid_dim=grid,
            block_threads=self.block_threads,
            registers_per_thread=self.register_cache.registers_per_thread,
            shared_bytes_per_block=self.shared_bytes_per_block,
            precision=self.precision,
            memory_parallelism=float(self.register_cache.cache_values),
        )

    def occupancy(self) -> OccupancyResult:
        """Occupancy of this plan on its architecture."""
        return compute_occupancy(
            self.architecture,
            self.block_threads,
            self.register_cache.registers_per_thread,
            self.shared_bytes_per_block,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable identity of this plan (cache keys, artifacts)."""
        return {
            "problem": self.problem.fingerprint(),
            "architecture": self.architecture.name,
            "precision": self.precision.name,
            "M": self.filter_width,
            "N": self.filter_height,
            "P": self.outputs_per_thread,
            "C": self.register_cache.cache_values,
            "registers_per_thread": self.register_cache.registers_per_thread,
            "block_threads": self.block_threads,
            "shared_bytes_per_block": self.shared_bytes_per_block,
        }

    def fingerprint(self) -> str:
        """Stable content hash of this plan."""
        from ..serialization import stable_digest

        return stable_digest(self.to_dict())

    def describe(self) -> Dict[str, object]:
        """Summary used by examples and the experiment reports."""
        occupancy = self.occupancy()
        return {
            "problem": getattr(self.problem, "name", "problem"),
            "architecture": self.architecture.name,
            "precision": self.precision.name,
            "M": self.filter_width,
            "N": self.filter_height,
            "P": self.outputs_per_thread,
            "C": self.register_cache.cache_values,
            "registers_per_thread": self.register_cache.registers_per_thread,
            "block_threads": self.block_threads,
            "valid_outputs_per_warp": self.blocking.valid_outputs_per_warp,
            "halo_ratio": round(self.blocking.halo_ratio, 4),
            "occupancy": round(occupancy.occupancy, 3),
            "shuffles_per_pass": self.program.shuffles_per_pass,
        }


#: memoised plans: repeated launches of the same configuration (benchmark
#: sweeps, iterative stencils) skip re-validating identical specs
_PLAN_CACHE: Dict[object, SSAMPlan] = {}
_PLAN_CACHE_MAX = 512


def _spec_token(spec: Union[ConvolutionSpec, StencilSpec]) -> object:
    """A hashable identity token for a problem spec.

    Both spec types expose a stable content ``fingerprint()``; using it as
    the memoisation token keeps this cache aligned with the on-disk
    simulation cache, which keys on the same digests.
    """
    return spec.fingerprint()


def _cached_plan(kind: str, spec, arch, prec, outputs_per_thread: int,
                 block_threads: int, build) -> SSAMPlan:
    try:
        key = (kind, _spec_token(spec), arch, prec, outputs_per_thread, block_threads)
        hash(key)
    except TypeError:
        return build()
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = build()
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.clear()
        _PLAN_CACHE[key] = plan
    return plan


def plan_convolution(spec: ConvolutionSpec, architecture: object = "p100",
                     precision: object = "float32",
                     outputs_per_thread: int = DEFAULT_OUTPUTS_PER_THREAD,
                     block_threads: int = DEFAULT_BLOCK_THREADS) -> SSAMPlan:
    """Build an SSAM plan for a 2-D convolution (Listing 1 configuration).

    Plans are memoised: repeated launches of the same (spec, architecture,
    precision, P, B) configuration return the cached plan without
    re-validating the spec.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)

    def build() -> SSAMPlan:
        cache = choose_plan(spec.filter_height, arch, prec,
                            requested_outputs=outputs_per_thread)
        blocking = OverlappedBlocking.from_plan(cache, spec.filter_width, block_threads)
        program = SystolicProgram.from_convolution(spec, cache)
        return SSAMPlan(problem=spec, architecture=arch, register_cache=cache,
                        blocking=blocking, program=program, precision=prec,
                        block_threads=block_threads)

    return _cached_plan("conv2d", spec, arch, prec, outputs_per_thread,
                        block_threads, build)


def plan_stencil(spec: StencilSpec, architecture: object = "p100",
                 precision: object = "float32",
                 outputs_per_thread: int = DEFAULT_OUTPUTS_PER_THREAD,
                 block_threads: int = DEFAULT_BLOCK_THREADS) -> SSAMPlan:
    """Build an SSAM plan for the in-plane part of a 2-D/3-D stencil.

    Memoised like :func:`plan_convolution`.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)

    def build() -> SSAMPlan:
        cache = choose_plan(spec.footprint_height, arch, prec,
                            requested_outputs=outputs_per_thread)
        blocking = OverlappedBlocking.from_plan(cache, spec.footprint_width, block_threads)
        program = SystolicProgram.from_stencil(spec, cache)
        return SSAMPlan(problem=spec, architecture=arch, register_cache=cache,
                        blocking=blocking, program=program, precision=prec,
                        block_threads=block_threads)

    return _cached_plan("stencil", spec, arch, prec, outputs_per_thread,
                        block_threads, build)
