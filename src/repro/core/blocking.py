"""Overlapped (halo) blocking — Sections 4.5, 4.7 and 5.3 of the paper.

Each warp caches a ``WarpSize x C`` tile of the input but only produces a
``(WarpSize - M + 1) x P`` tile of valid outputs; neighbouring warp tiles
overlap by the filter footprint so no intra-block communication (and hence
no warp divergence) is ever needed.  This module computes the tile geometry,
the grid dimensions of Section 4.7, the halo ratio ``HR_rc`` of Section 5.3
and the resulting redundant-load factors used by the analytic traffic
profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from .register_cache import RegisterCachePlan


@dataclass(frozen=True)
class OverlappedBlocking:
    """Geometry of the overlapped blocking scheme for a 2-D SSAM kernel.

    Attributes
    ----------
    filter_width:
        M — footprint extent along the warp-lane (x) direction.
    filter_height:
        N — footprint extent along the register-cache (y) direction.
    outputs_per_thread:
        P — outputs per thread produced by the sliding window.
    block_threads:
        B — threads per CUDA block (must be a warp-size multiple).
    block_rows:
        R — warp rows per block.  The classic scheme (R=1) lays every warp
        of a block along x; R>1 splits the block's warps into R bands that
        cover R consecutive P-row strips, trading x-extent for y-extent
        (per-dimension block shapes).  Must divide the block's warp count.
    """

    filter_width: int
    filter_height: int
    outputs_per_thread: int
    block_threads: int = 128
    warp_size: int = 32
    block_rows: int = 1

    def __post_init__(self) -> None:
        if self.filter_width < 1 or self.filter_height < 1:
            raise ConfigurationError("filter extents must be >= 1")
        if self.filter_width > self.warp_size:
            raise ConfigurationError(
                f"filter width M={self.filter_width} exceeds the warp size "
                f"{self.warp_size}; a single warp cannot produce any valid output"
            )
        if self.outputs_per_thread < 1:
            raise ConfigurationError("outputs per thread P must be >= 1")
        if self.block_threads % self.warp_size != 0:
            raise ConfigurationError("block size must be a multiple of the warp size")
        if self.block_rows < 1:
            raise ConfigurationError("block rows R must be >= 1")
        if (self.block_threads // self.warp_size) % self.block_rows != 0:
            raise ConfigurationError(
                f"block rows R={self.block_rows} must divide the block's "
                f"warp count {self.block_threads // self.warp_size}")

    # -- warp tile geometry ----------------------------------------------------
    @property
    def cache_values(self) -> int:
        """C = N + P - 1 rows cached per thread."""
        return self.filter_height + self.outputs_per_thread - 1

    @property
    def valid_outputs_x(self) -> int:
        """Valid output columns per warp: WarpSize - M + 1."""
        return self.warp_size - self.filter_width + 1

    @property
    def valid_outputs_y(self) -> int:
        """Valid output rows per warp: P."""
        return self.outputs_per_thread

    @property
    def valid_outputs_per_warp(self) -> int:
        """Valid outputs per warp tile: (WarpSize - M + 1) x P (Figure 3)."""
        return self.valid_outputs_x * self.valid_outputs_y

    @property
    def cached_elements_per_warp(self) -> int:
        """Elements cached per warp tile: WarpSize x C."""
        return self.warp_size * self.cache_values

    @property
    def warps_per_block(self) -> int:
        """WarpCount = B / WarpSize (Section 4.7)."""
        return self.block_threads // self.warp_size

    @property
    def warps_x(self) -> int:
        """Warps laid along x per band: WarpCount / R (= WarpCount at R=1)."""
        return self.warps_per_block // self.block_rows

    @property
    def rows_per_block(self) -> int:
        """Output rows one block covers: R x P."""
        return self.block_rows * self.outputs_per_thread

    # -- halo analysis (Section 5.3) -------------------------------------------
    @property
    def halo_ratio(self) -> float:
        """HR_rc = (S*C - (S-M)*(C-N)) / (S*C) with S = WarpSize."""
        s, c, m, n = self.warp_size, self.cache_values, self.filter_width, self.filter_height
        return (s * c - (s - m) * (c - n)) / (s * c)

    @property
    def halo_ratio_upper_bound(self) -> float:
        """The bound HR_rc < (S*N + C*M) / (S*C) derived in Section 5.3."""
        s, c, m, n = self.warp_size, self.cache_values, self.filter_width, self.filter_height
        return (s * n + c * m) / (s * c)

    @property
    def load_redundancy(self) -> float:
        """Elements loaded per valid output (= 1 with no halo)."""
        return self.cached_elements_per_warp / self.valid_outputs_per_warp

    @property
    def compute_redundancy_x(self) -> float:
        """Lane-direction over-compute factor: WarpSize / (WarpSize - M + 1)."""
        return self.warp_size / self.valid_outputs_x

    # -- grid geometry (Section 4.7) --------------------------------------------
    def grid_dim(self, width: int, height: int) -> Tuple[int, int, int]:
        """CUDA grid dimensions for a ``width x height`` output domain.

        ``GridDim.x = ceil(W / (WarpsX * (WarpSize - M + 1)))`` and
        ``GridDim.y = ceil(H / (R * P))`` — with the paper's R=1 this is
        exactly Section 4.7.
        """
        if width <= 0 or height <= 0:
            raise ConfigurationError("domain dimensions must be positive")
        grid_x = math.ceil(width / (self.warps_x * self.valid_outputs_x))
        grid_y = math.ceil(height / self.rows_per_block)
        return (grid_x, grid_y, 1)

    def total_blocks(self, width: int, height: int) -> int:
        """Number of thread blocks needed to cover the domain."""
        gx, gy, gz = self.grid_dim(width, height)
        return gx * gy * gz

    def loaded_elements(self, width: int, height: int) -> int:
        """Total elements loaded from global memory including halos."""
        warps = self.total_blocks(width, height) * self.warps_per_block
        return warps * self.cached_elements_per_warp

    def traffic_summary(self, width: int, height: int,
                        precision: object = "float32") -> Dict[str, float]:
        """Bytes moved for one pass over a ``width x height`` domain."""
        prec = resolve_precision(precision)
        loaded = self.loaded_elements(width, height)
        outputs = width * height
        return {
            "read_bytes": float(loaded * prec.itemsize),
            "write_bytes": float(outputs * prec.itemsize),
            "read_amplification": loaded / outputs,
            "halo_ratio": self.halo_ratio,
        }

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_plan(cls, plan: RegisterCachePlan, filter_width: int,
                  block_threads: int = 128,
                  block_rows: int = 1) -> "OverlappedBlocking":
        """Blocking geometry consistent with a register-cache plan."""
        return cls(
            filter_width=filter_width,
            filter_height=plan.filter_height,
            outputs_per_thread=plan.outputs_per_thread,
            block_threads=block_threads,
            warp_size=plan.warp_size,
            block_rows=block_rows,
        )


@dataclass(frozen=True)
class SharedMemoryBlocking:
    """Tile geometry of a conventional shared-memory (scratchpad) kernel.

    Used by the baselines and by the Section 5.3 comparison: the scratchpad
    tile is shared by the whole block (not just one warp), so its halo ratio
    ``HR_smc`` is much smaller than ``HR_rc`` — the paper's point is that the
    register-cache method wins despite the larger halo.
    """

    tile_width: int
    tile_height: int
    halo_x: int
    halo_y: int

    def __post_init__(self) -> None:
        if self.tile_width <= 0 or self.tile_height <= 0:
            raise ConfigurationError("tile extents must be positive")
        if self.halo_x < 0 or self.halo_y < 0:
            raise ConfigurationError("halo extents cannot be negative")

    @property
    def cached_elements(self) -> int:
        """Elements staged in shared memory per block (tile + halo)."""
        return (self.tile_width + self.halo_x) * (self.tile_height + self.halo_y)

    @property
    def valid_outputs(self) -> int:
        """Valid outputs per block."""
        return self.tile_width * self.tile_height

    @property
    def halo_ratio(self) -> float:
        """HR_smc: fraction of the staged tile that is halo."""
        return 1.0 - self.valid_outputs / self.cached_elements

    @property
    def load_redundancy(self) -> float:
        """Elements loaded per valid output."""
        return self.cached_elements / self.valid_outputs

    def shared_bytes(self, precision: object = "float32") -> int:
        """Shared-memory bytes needed per block for the staged tile."""
        prec = resolve_precision(precision)
        return self.cached_elements * prec.itemsize

    def grid_dim(self, width: int, height: int) -> Tuple[int, int, int]:
        """Grid dimensions covering a ``width x height`` domain."""
        return (math.ceil(width / self.tile_width), math.ceil(height / self.tile_height), 1)
