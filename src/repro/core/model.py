"""The SSAM algorithm formulation J = (O, D, X, Y)  (Equation 2).

A :class:`SystolicProgram` captures, from the perspective of one warp,

* **O** — the computing operations applied at every stage (Equation 1:
  ``s <- ctrl(r (x) x) (+) s``),
* **D** — the dependency graph along which partial results travel
  (a :class:`networkx.DiGraph`, see :mod:`repro.core.dependency`),
* **X** — the input values held in the register cache, and
* **Y** — the output values produced by the warp.

The program object is what the paper means by "expressing an algorithm in
SSAM": the kernels in :mod:`repro.kernels` are executable realisations of
these programs, and tests assert that the realisations follow the program
(same number of shuffles, same stage count, same register footprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from ..convolution.spec import ConvolutionSpec
from ..errors import SpecificationError
from ..stencils.spec import StencilSpec
from .dependency import (
    convolution_dependency,
    critical_path_cycles,
    scan_dependency,
    shuffle_count,
    shuffle_schedule,
    stencil_dependency,
    validate_dependency,
)
from .register_cache import RegisterCachePlan


@dataclass(frozen=True)
class Operation:
    """One element of O: the arithmetic applied at a pipeline stage.

    ``combine`` is the ⊕ reduction (usually ``add``), ``transform`` the ⊗
    operation applied to the external coefficient and the input value
    (usually ``mul``); together they form the FMA of Equation 1.
    """

    name: str
    transform: str = "mul"
    combine: str = "add"
    count_per_stage: int = 1

    def __post_init__(self) -> None:
        if self.count_per_stage < 0:
            raise SpecificationError("operation count cannot be negative")


@dataclass(frozen=True)
class RegisterBinding:
    """One element of X or Y: values bound to each thread's registers."""

    name: str
    values_per_thread: int
    role: str  # "input" or "output"

    def __post_init__(self) -> None:
        if self.values_per_thread < 1:
            raise SpecificationError("a register binding needs at least one value")
        if self.role not in ("input", "output"):
            raise SpecificationError("binding role must be 'input' or 'output'")


@dataclass
class SystolicProgram:
    """A complete J = (O, D, X, Y) description of one warp's work."""

    name: str
    operations: Tuple[Operation, ...]
    dependency: nx.DiGraph
    inputs: Tuple[RegisterBinding, ...]
    outputs: Tuple[RegisterBinding, ...]
    warp_size: int = 32

    def __post_init__(self) -> None:
        if not self.operations:
            raise SpecificationError("a systolic program needs at least one operation")
        if not self.inputs or not self.outputs:
            raise SpecificationError("a systolic program needs inputs X and outputs Y")
        validate_dependency(self.dependency, self.warp_size)

    # -- derived structure ---------------------------------------------------
    @property
    def stage_count(self) -> int:
        """Number of pipeline stages in D."""
        return max(stage for _, stage in self.dependency.nodes) + 1

    @property
    def shuffles_per_pass(self) -> int:
        """Warp shuffle instructions needed for one pass through D."""
        return shuffle_count(self.dependency)

    @property
    def shuffle_deltas(self) -> List[int]:
        """The per-stage shuffle deltas (0 = no lane exchange)."""
        return shuffle_schedule(self.dependency)

    @property
    def input_values_per_thread(self) -> int:
        """Total register-cache values per thread (|X|)."""
        return sum(binding.values_per_thread for binding in self.inputs)

    @property
    def output_values_per_thread(self) -> int:
        """Total outputs per thread (|Y|)."""
        return sum(binding.values_per_thread for binding in self.outputs)

    @property
    def mads_per_pass(self) -> int:
        """FMA operations per thread for one pass through D."""
        return sum(
            self.dependency.nodes[node].get("mads", 1) for node in self.dependency.nodes
        ) // self.warp_size

    def critical_path_cycles(self, architecture: object = "p100") -> float:
        """Latency of the program's critical path (Section 5.4)."""
        return critical_path_cycles(self.dependency, architecture)

    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by examples and reports."""
        return {
            "name": self.name,
            "stages": self.stage_count,
            "shuffles_per_pass": self.shuffles_per_pass,
            "shuffle_deltas": self.shuffle_deltas,
            "inputs_per_thread": self.input_values_per_thread,
            "outputs_per_thread": self.output_values_per_thread,
            "mads_per_pass": self.mads_per_pass,
            "operations": [op.name for op in self.operations],
        }

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_convolution(cls, spec: ConvolutionSpec, plan: RegisterCachePlan,
                         warp_size: int = 32) -> "SystolicProgram":
        """Map a 2-D convolution onto SSAM (Section 4.1)."""
        if plan.filter_height != spec.filter_height:
            raise SpecificationError(
                "register-cache plan height does not match the filter height"
            )
        dependency = convolution_dependency(spec.filter_width, warp_size,
                                            mads_per_stage=spec.filter_height)
        operations = tuple(
            Operation(name=f"column_{m}", transform="mul", combine="add",
                      count_per_stage=spec.filter_height)
            for m in range(spec.filter_width)
        )
        inputs = (RegisterBinding("register_cache", plan.cache_values, "input"),)
        outputs = (RegisterBinding("convolution_results", plan.outputs_per_thread, "output"),)
        return cls(name=f"ssam-{spec.name}", operations=operations, dependency=dependency,
                   inputs=inputs, outputs=outputs, warp_size=warp_size)

    @classmethod
    def from_stencil(cls, spec: StencilSpec, plan: RegisterCachePlan,
                     warp_size: int = 32) -> "SystolicProgram":
        """Map a 2-D (or the in-plane part of a 3-D) stencil onto SSAM (Section 4.8)."""
        columns = spec.columns()
        if not columns:
            raise SpecificationError("stencil has no in-plane taps")
        offsets = list(columns.keys())
        taps = [len(points) for points in columns.values()]
        dependency = stencil_dependency(offsets, warp_size, taps_per_column=taps)
        operations = tuple(
            Operation(name=f"column_{dx:+d}", transform="mul", combine="add",
                      count_per_stage=len(points))
            for dx, points in columns.items()
        )
        inputs = (RegisterBinding("register_cache", plan.cache_values, "input"),)
        extra_inputs: Tuple[RegisterBinding, ...] = ()
        if spec.out_of_plane_points():
            extra_inputs = (
                RegisterBinding("neighbor_planes", len(spec.out_of_plane_points()), "input"),
            )
        outputs = (RegisterBinding("stencil_results", plan.outputs_per_thread, "output"),)
        return cls(name=f"ssam-{spec.name}", operations=operations, dependency=dependency,
                   inputs=inputs + extra_inputs, outputs=outputs, warp_size=warp_size)

    @classmethod
    def kogge_stone_scan(cls, warp_size: int = 32) -> "SystolicProgram":
        """Map the Kogge–Stone inclusive scan onto SSAM (Section 3.6)."""
        dependency = scan_dependency(warp_size)
        stages = warp_size.bit_length() - 1
        operations = tuple(
            Operation(name=f"scan_stage_{s}", transform="mul", combine="add")
            for s in range(stages)
        )
        inputs = (RegisterBinding("sequence", 1, "input"),)
        outputs = (RegisterBinding("prefix_sums", 1, "output"),)
        return cls(name="ssam-kogge-stone-scan", operations=operations,
                   dependency=dependency, inputs=inputs, outputs=outputs,
                   warp_size=warp_size)
