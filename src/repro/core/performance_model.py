"""The analytical performance model of Section 5.

Two questions are answered exactly as in the paper:

* **Section 5.2** — per-output latency of the register-cache (SSAM) scheme
  vs. the conventional shared-memory scheme, using the measured latencies of
  Table 2.  The headline result is Equation 5:
  ``Dif_smem_reg = M*N*T_smem_read - (M-1)*T_shfl  >>  0`` for M, N >= 2.
* **Section 5.3** — the overhead of the halo layers introduced by the
  overlapped blocking scheme, showing that ``AvgDif >> 0``: even after
  paying for redundant halo loads, the register-cache method wins.

All functions take an architecture (name or object) so both Table 2 columns
can be evaluated, and an optional precision because double-precision halves
the useful register count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import GPUArchitecture, get_architecture
from .blocking import OverlappedBlocking


@dataclass(frozen=True)
class LatencyComparison:
    """Per-output-element latency of the two caching schemes (cycles)."""

    filter_width: int
    filter_height: int
    shared_memory_cycles: float
    register_cache_cycles: float

    @property
    def advantage_cycles(self) -> float:
        """Dif_smem_reg = L_smem - L_reg (Equation 5)."""
        return self.shared_memory_cycles - self.register_cache_cycles

    @property
    def speedup(self) -> float:
        """Predicted latency ratio L_smem / L_reg."""
        if self.register_cache_cycles == 0:
            return float("inf")
        return self.shared_memory_cycles / self.register_cache_cycles


def shared_memory_latency(architecture: object, filter_width: int,
                          filter_height: int) -> float:
    """L_smem = M*N*(T_mad + 2*T_smem_read + 2*T_reg)  (Section 5.2)."""
    arch = get_architecture(architecture)
    lat = arch.latencies
    m, n = _check_filter(filter_width, filter_height)
    return m * n * (lat.fma + 2.0 * lat.smem_load + 2.0 * lat.register)


def register_cache_latency(architecture: object, filter_width: int,
                           filter_height: int) -> float:
    """L_reg = M*N*(T_mad + T_smem_read + 2*T_reg) + (M-1)*T_shfl  (Equation 4)."""
    arch = get_architecture(architecture)
    lat = arch.latencies
    m, n = _check_filter(filter_width, filter_height)
    return m * n * (lat.fma + lat.smem_load + 2.0 * lat.register) + (m - 1) * lat.shfl


def latency_advantage(architecture: object, filter_width: int,
                      filter_height: int) -> float:
    """Dif_smem_reg = M*N*T_smem_read - (M-1)*T_shfl (Equation 5)."""
    arch = get_architecture(architecture)
    lat = arch.latencies
    m, n = _check_filter(filter_width, filter_height)
    return m * n * lat.smem_load - (m - 1) * lat.shfl


def compare_latencies(architecture: object, filter_width: int,
                      filter_height: int) -> LatencyComparison:
    """Both per-output latencies plus the derived advantage."""
    return LatencyComparison(
        filter_width=filter_width,
        filter_height=filter_height,
        shared_memory_cycles=shared_memory_latency(architecture, filter_width, filter_height),
        register_cache_cycles=register_cache_latency(architecture, filter_width, filter_height),
    )


def halo_ratio(filter_width: int, filter_height: int, outputs_per_thread: int,
               warp_size: int = 32) -> float:
    """HR_rc of Section 5.3 for the overlapped register-cache blocking."""
    blocking = OverlappedBlocking(
        filter_width=filter_width,
        filter_height=filter_height,
        outputs_per_thread=outputs_per_thread,
        block_threads=warp_size,
        warp_size=warp_size,
    )
    return blocking.halo_ratio


def halo_ratio_upper_bound(filter_width: int, filter_height: int,
                           outputs_per_thread: int, warp_size: int = 32) -> float:
    """The bound HR_rc < N/(N+P-1) + M/WarpSize used in Section 5.3."""
    m, n = _check_filter(filter_width, filter_height)
    p = outputs_per_thread
    return n / (n + p - 1) + m / warp_size


def average_advantage(architecture: object, filter_width: int, filter_height: int,
                      outputs_per_thread: int, warp_size: int = 32) -> float:
    """AvgDif of Section 5.3: per-loaded-element advantage including halo cost.

    ``AvgDif > T_smem_read - T_gmem_read*(N/(N+P-1) + M/32)
               + P*M*N*T_smem_read/(N+P-1) - (M-1)*T_shfl``

    A strongly positive value means the halo overhead of the register-cache
    scheme is marginal compared to what it saves in scratchpad accesses.
    """
    arch = get_architecture(architecture)
    lat = arch.latencies
    m, n = _check_filter(filter_width, filter_height)
    p = outputs_per_thread
    c = n + p - 1
    bound = (
        lat.smem_load
        - lat.gmem_load * (n / c + m / warp_size)
        + p * m * n * lat.smem_load / c
        - (m - 1) * lat.shfl
    )
    return bound


def predicted_speedup(architecture: object, filter_width: int, filter_height: int,
                      outputs_per_thread: int = 4, warp_size: int = 32) -> float:
    """Latency-model speedup of SSAM over the shared-memory scheme.

    Combines the per-output latency ratio of Section 5.2 with the halo load
    amplification of Section 5.3, giving the "how much faster should SSAM
    be" number that Figure 4 is compared against.
    """
    comparison = compare_latencies(architecture, filter_width, filter_height)
    blocking = OverlappedBlocking(
        filter_width=filter_width,
        filter_height=filter_height,
        outputs_per_thread=outputs_per_thread,
        block_threads=warp_size,
        warp_size=warp_size,
    )
    arch = get_architecture(architecture)
    lat = arch.latencies
    # charge the halo amplification on the global load path of each scheme
    reg_cost = comparison.register_cache_cycles + blocking.load_redundancy * lat.gmem_load / (
        blocking.valid_outputs_per_warp / blocking.warp_size
    )
    smem_tile = _default_shared_tile(filter_width, filter_height)
    smem_cost = comparison.shared_memory_cycles + smem_tile * lat.gmem_load / warp_size
    if reg_cost <= 0:
        return float("inf")
    return smem_cost / reg_cost


def advantage_table(architecture: object, filter_sizes: Iterable[int],
                    outputs_per_thread: int = 4) -> List[Dict[str, float]]:
    """Sweep square filter sizes and tabulate the Section 5 quantities."""
    rows: List[Dict[str, float]] = []
    for size in filter_sizes:
        comparison = compare_latencies(architecture, size, size)
        rows.append(
            {
                "filter": size,
                "l_smem_cycles": comparison.shared_memory_cycles,
                "l_reg_cycles": comparison.register_cache_cycles,
                "dif_cycles": comparison.advantage_cycles,
                "latency_speedup": comparison.speedup,
                "halo_ratio": halo_ratio(size, size, outputs_per_thread),
                "avg_dif_cycles": average_advantage(architecture, size, size, outputs_per_thread),
            }
        )
    return rows


def _check_filter(filter_width: int, filter_height: int) -> Tuple[int, int]:
    if filter_width < 1 or filter_height < 1:
        raise ConfigurationError("filter extents must be >= 1")
    return filter_width, filter_height


def _default_shared_tile(filter_width: int, filter_height: int,
                         tile: int = 32) -> float:
    """Load amplification of a conventional 32x32 shared-memory tile."""
    halo_x = filter_width - 1
    halo_y = filter_height - 1
    return (tile + halo_x) * (tile + halo_y) / float(tile * tile)
