"""The analytical performance model of Section 5.

Two questions are answered exactly as in the paper:

* **Section 5.2** — per-output latency of the register-cache (SSAM) scheme
  vs. the conventional shared-memory scheme, using the measured latencies of
  Table 2.  The headline result is Equation 5:
  ``Dif_smem_reg = M*N*T_smem_read - (M-1)*T_shfl  >>  0`` for M, N >= 2.
* **Section 5.3** — the overhead of the halo layers introduced by the
  overlapped blocking scheme, showing that ``AvgDif >> 0``: even after
  paying for redundant halo loads, the register-cache method wins.

All functions take an architecture (name or object) so both Table 2 columns
can be evaluated, and an optional precision because double-precision halves
the useful register count.

The second half of the module turns the model into an *execution engine*:
:func:`model_convolution2d` and friends evaluate the Section 5 latencies plus
the occupancy calculator (:mod:`repro.gpu.occupancy`) for a whole launch and
return a :class:`~repro.kernels.common.KernelRunResult`, so paper-scale
problems run through the scenario sweep pipeline (``engine="model"``) exactly
like simulations — cached, sharded and rendered from the same typed records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import GPUArchitecture, get_architecture
from ..gpu.counters import KernelCounters
from ..gpu.kernel import LaunchConfig, LaunchResult
from ..gpu.occupancy import compute_occupancy, validate_block_threads
from ..gpu.profiler import (
    LAUNCH_OVERHEAD_SECONDS,
    SECTOR_SERVICE_CYCLES,
    TimingBreakdown,
)
from .blocking import OverlappedBlocking, SharedMemoryBlocking
from .launch_defaults import paper_default


@dataclass(frozen=True)
class LatencyComparison:
    """Per-output-element latency of the two caching schemes (cycles)."""

    filter_width: int
    filter_height: int
    shared_memory_cycles: float
    register_cache_cycles: float

    @property
    def advantage_cycles(self) -> float:
        """Dif_smem_reg = L_smem - L_reg (Equation 5)."""
        return self.shared_memory_cycles - self.register_cache_cycles

    @property
    def speedup(self) -> float:
        """Predicted latency ratio L_smem / L_reg."""
        if self.register_cache_cycles == 0:
            return float("inf")
        return self.shared_memory_cycles / self.register_cache_cycles


def shared_memory_latency(architecture: object, filter_width: int,
                          filter_height: int) -> float:
    """L_smem = M*N*(T_mad + 2*T_smem_read + 2*T_reg)  (Section 5.2)."""
    arch = get_architecture(architecture)
    lat = arch.latencies
    m, n = _check_filter(filter_width, filter_height)
    return m * n * (lat.fma + 2.0 * lat.smem_load + 2.0 * lat.register)


def register_cache_latency(architecture: object, filter_width: int,
                           filter_height: int) -> float:
    """L_reg = M*N*(T_mad + T_smem_read + 2*T_reg) + (M-1)*T_shfl  (Equation 4)."""
    arch = get_architecture(architecture)
    lat = arch.latencies
    m, n = _check_filter(filter_width, filter_height)
    return m * n * (lat.fma + lat.smem_load + 2.0 * lat.register) + (m - 1) * lat.shfl


def latency_advantage(architecture: object, filter_width: int,
                      filter_height: int) -> float:
    """Dif_smem_reg = M*N*T_smem_read - (M-1)*T_shfl (Equation 5)."""
    arch = get_architecture(architecture)
    lat = arch.latencies
    m, n = _check_filter(filter_width, filter_height)
    return m * n * lat.smem_load - (m - 1) * lat.shfl


def stencil_register_cache_latency(architecture: object, taps: int,
                                   footprint_width: int) -> float:
    """Per-output latency of the register-cache scheme with immediate weights.

    Stencil coefficients are compile-time constants (Section 4.8), so the
    ``T_smem_read`` term of Equation 4 disappears:
    ``L = taps*(T_mad + 2*T_reg) + (M-1)*T_shfl``.
    """
    arch = get_architecture(architecture)
    lat = arch.latencies
    if taps < 1 or footprint_width < 1:
        raise ConfigurationError("taps and footprint width must be >= 1")
    return taps * (lat.fma + 2.0 * lat.register) + (footprint_width - 1) * lat.shfl


def compare_latencies(architecture: object, filter_width: int,
                      filter_height: int) -> LatencyComparison:
    """Both per-output latencies plus the derived advantage."""
    return LatencyComparison(
        filter_width=filter_width,
        filter_height=filter_height,
        shared_memory_cycles=shared_memory_latency(architecture, filter_width, filter_height),
        register_cache_cycles=register_cache_latency(architecture, filter_width, filter_height),
    )


def halo_ratio(filter_width: int, filter_height: int, outputs_per_thread: int,
               warp_size: int = 32) -> float:
    """HR_rc of Section 5.3 for the overlapped register-cache blocking."""
    blocking = OverlappedBlocking(
        filter_width=filter_width,
        filter_height=filter_height,
        outputs_per_thread=outputs_per_thread,
        block_threads=warp_size,
        warp_size=warp_size,
    )
    return blocking.halo_ratio


def halo_ratio_upper_bound(filter_width: int, filter_height: int,
                           outputs_per_thread: int, warp_size: int = 32) -> float:
    """The bound HR_rc < N/(N+P-1) + M/WarpSize used in Section 5.3."""
    m, n = _check_filter(filter_width, filter_height)
    p = outputs_per_thread
    return n / (n + p - 1) + m / warp_size


def average_advantage(architecture: object, filter_width: int, filter_height: int,
                      outputs_per_thread: int, warp_size: int = 32) -> float:
    """AvgDif of Section 5.3: per-loaded-element advantage including halo cost.

    ``AvgDif > T_smem_read - T_gmem_read*(N/(N+P-1) + M/32)
               + P*M*N*T_smem_read/(N+P-1) - (M-1)*T_shfl``

    A strongly positive value means the halo overhead of the register-cache
    scheme is marginal compared to what it saves in scratchpad accesses.
    """
    arch = get_architecture(architecture)
    lat = arch.latencies
    m, n = _check_filter(filter_width, filter_height)
    p = outputs_per_thread
    c = n + p - 1
    bound = (
        lat.smem_load
        - lat.gmem_load * (n / c + m / warp_size)
        + p * m * n * lat.smem_load / c
        - (m - 1) * lat.shfl
    )
    return bound


def predicted_speedup(architecture: object, filter_width: int, filter_height: int,
                      outputs_per_thread: int = 4, warp_size: int = 32) -> float:
    """Latency-model speedup of SSAM over the shared-memory scheme.

    Combines the per-output latency ratio of Section 5.2 with the halo load
    amplification of Section 5.3, giving the "how much faster should SSAM
    be" number that Figure 4 is compared against.
    """
    comparison = compare_latencies(architecture, filter_width, filter_height)
    blocking = OverlappedBlocking(
        filter_width=filter_width,
        filter_height=filter_height,
        outputs_per_thread=outputs_per_thread,
        block_threads=warp_size,
        warp_size=warp_size,
    )
    arch = get_architecture(architecture)
    lat = arch.latencies
    # charge the halo amplification on the global load path of each scheme
    reg_cost = comparison.register_cache_cycles + blocking.load_redundancy * lat.gmem_load / (
        blocking.valid_outputs_per_warp / blocking.warp_size
    )
    smem_tile = _default_shared_tile(filter_width, filter_height)
    smem_cost = comparison.shared_memory_cycles + smem_tile * lat.gmem_load / warp_size
    if reg_cost <= 0:
        return float("inf")
    return smem_cost / reg_cost


def advantage_table(architecture: object, filter_sizes: Iterable[int],
                    outputs_per_thread: int = 4) -> List[Dict[str, float]]:
    """Sweep square filter sizes and tabulate the Section 5 quantities."""
    rows: List[Dict[str, float]] = []
    for size in filter_sizes:
        comparison = compare_latencies(architecture, size, size)
        rows.append(
            {
                "filter": size,
                "l_smem_cycles": comparison.shared_memory_cycles,
                "l_reg_cycles": comparison.register_cache_cycles,
                "dif_cycles": comparison.advantage_cycles,
                "latency_speedup": comparison.speedup,
                "halo_ratio": halo_ratio(size, size, outputs_per_thread),
                "avg_dif_cycles": average_advantage(architecture, size, size, outputs_per_thread),
            }
        )
    return rows


def _check_filter(filter_width: int, filter_height: int) -> Tuple[int, int]:
    if filter_width < 1 or filter_height < 1:
        raise ConfigurationError("filter extents must be >= 1")
    return filter_width, filter_height


def _default_shared_tile(filter_width: int, filter_height: int,
                         tile: int = 32) -> float:
    """Load amplification of a conventional 32x32 shared-memory tile."""
    halo_x = filter_width - 1
    halo_y = filter_height - 1
    return (tile + halo_x) * (tile + halo_y) / float(tile * tile)


# ---------------------------------------------------------------------------
# Section 5 as an execution engine (``engine="model"``)
# ---------------------------------------------------------------------------
#
# A launch is modelled as ``warp_passes`` independent warp tiles.  One pass
# costs the Section 5.2 per-output latency times the outputs it produces
# (compute) plus the latency of filling its register cache or scratchpad
# tile (memory).  The SM overlaps as many passes as the occupancy calculator
# says fit; the device therefore completes
# ``concurrency = sm_count * active_warps_per_sm`` passes per pass-latency,
# and the launch takes ``ceil(warp_passes / concurrency)`` such waves.  This
# is deliberately a *latency* model — the point of promoting it to an engine
# is that it evaluates in microseconds at paper scale, and the cross-engine
# validation experiment reports how far it sits from the counted simulation.

#: geometry of the conventional scratchpad baseline (Section 5.3): a 32x32
#: output tile staged by a 256-thread block
MODEL_BASELINE_TILE = 32
MODEL_BASELINE_BLOCK_THREADS = 256
MODEL_BASELINE_REGISTERS = 32


@dataclass(frozen=True)
class ModelPrediction:
    """One closed-form launch prediction of the Section 5 model."""

    scheme: str
    outputs: int
    warp_passes: int
    compute_cycles_per_pass: float
    memory_cycles_per_pass: float
    active_warps_per_sm: int
    occupancy: float
    concurrency: int
    waves: int
    latency_seconds: float
    bandwidth_seconds: float
    seconds: float

    @property
    def cycles_per_pass(self) -> float:
        return self.compute_cycles_per_pass + self.memory_cycles_per_pass

    @property
    def bandwidth_bound(self) -> bool:
        """True when the DRAM-traffic floor dominates the latency estimate."""
        return self.bandwidth_seconds > self.latency_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "outputs": self.outputs,
            "warp_passes": self.warp_passes,
            "compute_cycles_per_pass": self.compute_cycles_per_pass,
            "memory_cycles_per_pass": self.memory_cycles_per_pass,
            "active_warps_per_sm": self.active_warps_per_sm,
            "occupancy": self.occupancy,
            "concurrency": self.concurrency,
            "waves": self.waves,
            "latency_seconds": self.latency_seconds,
            "bandwidth_seconds": self.bandwidth_seconds,
            "seconds": self.seconds,
        }


def predict_launch(architecture: object, config: LaunchConfig, *, scheme: str,
                   outputs: int, warp_passes: int, compute_cycles_per_pass: float,
                   memory_cycles_per_pass: float,
                   dram_bytes: float = 0.0) -> ModelPrediction:
    """Fold per-pass latencies and occupancy into a launch-time prediction.

    The estimate is the maximum of two closed forms: the Section 5.2 pass
    latency divided by the warp-level parallelism the occupancy calculator
    grants, and the Section 5.3 traffic floor (the launch's DRAM bytes —
    halo redundancy included — over the sustainable bandwidth).
    """
    arch = get_architecture(architecture)
    if warp_passes < 1:
        raise ConfigurationError("a launch needs at least one warp pass")
    occ = compute_occupancy(arch, config.block_threads,
                            config.registers_per_thread,
                            config.shared_bytes_per_block)
    concurrency = arch.sm_count * max(1, occ.active_warps_per_sm)
    waves = max(1, math.ceil(warp_passes / concurrency))
    cycles = waves * (compute_cycles_per_pass + memory_cycles_per_pass)
    latency_seconds = cycles / arch.core_clock_hz
    bandwidth_seconds = float(dram_bytes) / arch.effective_bandwidth_bytes
    seconds = max(latency_seconds, bandwidth_seconds) + LAUNCH_OVERHEAD_SECONDS
    return ModelPrediction(
        scheme=scheme,
        outputs=int(outputs),
        warp_passes=int(warp_passes),
        compute_cycles_per_pass=float(compute_cycles_per_pass),
        memory_cycles_per_pass=float(memory_cycles_per_pass),
        active_warps_per_sm=occ.active_warps_per_sm,
        occupancy=occ.occupancy,
        concurrency=int(concurrency),
        waves=int(waves),
        latency_seconds=float(latency_seconds),
        bandwidth_seconds=float(bandwidth_seconds),
        seconds=float(seconds),
    )


def _warp_sectors(arch: GPUArchitecture, itemsize: int) -> int:
    """Memory sectors (cache lines) one coalesced warp access touches."""
    return math.ceil(arch.warp_size * itemsize / arch.cache_line_bytes)


def _coalesced_fill_cycles(arch: GPUArchitecture, rows: int) -> float:
    """Latency of ``rows`` back-to-back coalesced global loads (pipelined)."""
    return arch.latencies.gmem_load + max(0, rows - 1) * SECTOR_SERVICE_CYCLES


def _staging_cycles(arch: GPUArchitecture, words: int, warps_per_block: int) -> float:
    """Shared-memory weight staging (Listing 1 lines 7-12), amortised per warp.

    On Ampere/Hopper the ``cp.async``/TMA path lands data in shared memory
    without the register round-trip: one async-copy latency hides the whole
    burst and subsequent transactions stream at the sector service rate.
    """
    lat = arch.latencies
    ops = math.ceil(words / float(arch.warp_size))
    if lat.supports_async_copy:
        per_block = lat.gmem_to_smem + (ops - 1) * SECTOR_SERVICE_CYCLES + lat.sync
    else:
        per_block = ops * (lat.gmem_load + lat.smem_store) + lat.sync
    return per_block / max(1, warps_per_block)


def _model_result(kernel_name: str, run_name: str, architecture: GPUArchitecture,
                  config: LaunchConfig, counters: KernelCounters,
                  prediction: ModelPrediction,
                  parameters: Dict[str, object]):
    """Wrap a prediction in the same result types the simulators produce.

    The timing breakdown splits the serial pass latency into its compute and
    memory parts (the model has no per-pipe view); ``total_seconds`` is the
    model's prediction, so ``result.milliseconds`` reads identically to a
    simulated launch.
    """
    from ..kernels.common import KernelRunResult  # local: keeps kernels off the core import path

    clock = architecture.core_clock_hz
    compute_seconds = prediction.waves * prediction.compute_cycles_per_pass / clock
    memory_seconds = max(
        prediction.waves * prediction.memory_cycles_per_pass / clock,
        prediction.bandwidth_seconds)
    timing = TimingBreakdown(
        dram_seconds=memory_seconds,
        arithmetic_seconds=compute_seconds,
        smem_seconds=0.0,
        shfl_seconds=0.0,
        l1_seconds=0.0,
        issue_seconds=0.0,
        sync_seconds=0.0,
        launch_overhead_seconds=LAUNCH_OVERHEAD_SECONDS,
        bandwidth_attainment=prediction.occupancy,
        total_seconds=prediction.seconds,
        bottleneck="dram" if (prediction.bandwidth_bound
                              or memory_seconds > compute_seconds)
        else "arithmetic",
    )
    launch = LaunchResult(
        kernel_name=kernel_name,
        config=config,
        architecture=architecture,
        counters=counters,
        blocks_executed=0,
        sampled=True,
        sample_fraction=0.0,
        _timing=timing,
    )
    return KernelRunResult(
        name=run_name,
        output=None,
        launch=launch,
        parameters={**parameters, "engine": "model", **prediction.as_dict()},
    )


def model_convolution2d(spec, width: int, height: int,
                        architecture: object = "p100",
                        precision: object = "float32",
                        outputs_per_thread: "int | None" = None,
                        block_threads: "int | None" = None,
                        block_rows: "int | None" = None) -> "object":
    """Section 5 prediction of the SSAM 2-D convolution (register cache).

    ``outputs_per_thread``/``block_threads``/``block_rows`` override the
    resolved launch defaults so the tuner can cost the whole Section 7.1
    design space closed-form; ``None`` values resolve through the default
    chain of :mod:`repro.core.launch_defaults`.
    """
    from ..kernels import conv2d_ssam
    from .plan import plan_convolution

    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    plan = plan_convolution(spec, arch, prec, outputs_per_thread,
                            block_threads, block_rows)
    base = conv2d_ssam.analytic_launch(spec, width, height, arch, prec,
                                       plan.outputs_per_thread,
                                       plan.block_threads, plan.block_rows)
    blocking = plan.blocking
    compute = plan.outputs_per_thread * register_cache_latency(
        arch, spec.filter_width, spec.filter_height)
    memory = (_coalesced_fill_cycles(arch, blocking.cache_values)
              + _staging_cycles(arch, spec.taps, blocking.warps_per_block))
    prediction = predict_launch(
        arch, base.launch.config, scheme="register_cache",
        outputs=width * height,
        warp_passes=base.launch.config.total_blocks * blocking.warps_per_block,
        compute_cycles_per_pass=compute, memory_cycles_per_pass=memory,
        dram_bytes=base.launch.counters.dram_bytes)
    return _model_result("ssam_conv2d_model", "model", arch, base.launch.config,
                         base.launch.counters, prediction,
                         {"M": spec.filter_width, "N": spec.filter_height,
                          "P": plan.outputs_per_thread,
                          "architecture": arch.name, "precision": prec.name})


def model_convolution2d_chain(spec, width: int, height: int, passes: int = 2,
                              fused: bool = False,
                              architecture: object = "p100",
                              precision: object = "float32",
                              outputs_per_thread: "int | None" = None,
                              block_threads: "int | None" = None,
                              block_rows: "int | None" = None) -> "object":
    """Section 5 prediction of the multi-stage SSAM convolution chain.

    The unfused chain is ``passes`` back-to-back launches of the Section 5.2
    kernel; the fused chain (PR 6's trace fusion) keeps the intermediate
    images resident between stages, so only the first stage reads DRAM and
    only the last one writes it — the compute and staging latencies are
    unchanged, but the Section 5.3 traffic floor shrinks accordingly.
    """
    from ..kernels import conv2d_ssam
    from .plan import plan_convolution

    if passes < 1:
        raise ConfigurationError("a convolution chain needs at least one pass")
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    plan = plan_convolution(spec, arch, prec, outputs_per_thread,
                            block_threads, block_rows)
    base = conv2d_ssam.analytic_launch(spec, width, height, arch, prec,
                                       plan.outputs_per_thread,
                                       plan.block_threads, plan.block_rows)
    blocking = plan.blocking
    compute = plan.outputs_per_thread * register_cache_latency(
        arch, spec.filter_width, spec.filter_height)
    memory = (_coalesced_fill_cycles(arch, blocking.cache_values)
              + _staging_cycles(arch, spec.taps, blocking.warps_per_block))
    counters = base.launch.counters.scaled(float(passes))
    if fused:
        # intermediates never reach DRAM: only the first stage reads the
        # source image and only the last stage writes its output
        counters.dram_read_bytes = base.launch.counters.dram_read_bytes
        counters.dram_write_bytes = base.launch.counters.dram_write_bytes
    prediction = predict_launch(
        arch, base.launch.config,
        scheme="register_cache_fused" if fused else "register_cache",
        outputs=width * height * passes,
        warp_passes=(base.launch.config.total_blocks
                     * blocking.warps_per_block * passes),
        compute_cycles_per_pass=compute, memory_cycles_per_pass=memory,
        dram_bytes=counters.dram_bytes)
    return _model_result("ssam_conv2d_chain_model", "model", arch,
                         base.launch.config, counters, prediction,
                         {"M": spec.filter_width, "N": spec.filter_height,
                          "P": plan.outputs_per_thread, "passes": passes,
                          "fused": fused, "architecture": arch.name,
                          "precision": prec.name})


def model_stencil2d(spec, width: int, height: int, iterations: int = 1,
                    architecture: object = "p100",
                    precision: object = "float32",
                    outputs_per_thread: "int | None" = None,
                    block_threads: "int | None" = None,
                    block_rows: "int | None" = None) -> "object":
    """Section 5 prediction of the SSAM 2-D stencil (immediate coefficients)."""
    from ..kernels import stencil2d_ssam
    from .plan import plan_stencil

    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    plan = plan_stencil(spec, arch, prec, outputs_per_thread,
                        block_threads, block_rows)
    base = stencil2d_ssam.analytic_launch(spec, width, height, iterations,
                                          arch, prec, plan.outputs_per_thread,
                                          plan.block_threads, plan.block_rows)
    blocking = plan.blocking
    compute = plan.outputs_per_thread * stencil_register_cache_latency(
        arch, spec.num_points, spec.footprint_width)
    memory = _coalesced_fill_cycles(arch, blocking.cache_values)
    prediction = predict_launch(
        arch, base.launch.config, scheme="register_cache",
        outputs=width * height * iterations,
        warp_passes=(base.launch.config.total_blocks
                     * blocking.warps_per_block * iterations),
        compute_cycles_per_pass=compute, memory_cycles_per_pass=memory,
        dram_bytes=base.launch.counters.dram_bytes)
    return _model_result("ssam_stencil2d_model", "model", arch,
                         base.launch.config, base.launch.counters, prediction,
                         {"stencil": spec.name, "iterations": iterations,
                          "P": plan.outputs_per_thread,
                          "architecture": arch.name, "precision": prec.name})


def model_stencil3d(spec, width: int, height: int, depth: int,
                    iterations: int = 1, architecture: object = "p100",
                    precision: object = "float32",
                    outputs_per_thread: "int | None" = None,
                    block_threads: "int | None" = None) -> "object":
    """Section 5 prediction of the SSAM 3-D stencil.

    The in-plane footprint follows the register-cache scheme; out-of-plane
    taps are charged as pipelined cache loads (axial taps are staged through
    shared memory by the kernel, general taps read global memory directly).
    """
    from ..kernels import stencil3d_ssam

    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    lat = arch.latencies
    p_extent = (stencil3d_ssam.DEFAULT_OUTPUTS_PER_THREAD_3D
                if outputs_per_thread is None else outputs_per_thread)
    b_extent = (paper_default("block_threads") if block_threads is None
                else block_threads)
    base = stencil3d_ssam.analytic_launch(spec, width, height, depth,
                                          iterations, arch, prec,
                                          p_extent, b_extent)
    config = base.launch.config
    columns = spec.columns()
    axial, general = stencil3d_ssam.split_out_of_plane(spec)
    out_of_plane = len(axial) + len(general)
    compute = p_extent * (
        spec.num_points * (lat.fma + 2.0 * lat.register)
        + max(0, len(columns) - 1) * lat.shfl
        + len(axial) * lat.smem_load
    )
    cache_rows = spec.footprint_height + p_extent - 1
    memory = _coalesced_fill_cycles(arch, cache_rows)
    if out_of_plane:
        memory += (lat.l1_load
                   + (p_extent * out_of_plane - 1) * SECTOR_SERVICE_CYCLES)
    warps_per_block = config.block_threads // arch.warp_size
    prediction = predict_launch(
        arch, config, scheme="register_cache",
        outputs=width * height * depth * iterations,
        warp_passes=config.total_blocks * warps_per_block * iterations,
        compute_cycles_per_pass=compute, memory_cycles_per_pass=memory,
        dram_bytes=base.launch.counters.dram_bytes)
    return _model_result("ssam_stencil3d_model", "model", arch, config,
                         base.launch.counters, prediction,
                         {"stencil": spec.name, "iterations": iterations,
                          "P": p_extent, "architecture": arch.name,
                          "precision": prec.name})


def model_convolution1d(taps: int, length: int, architecture: object = "p100",
                        precision: object = "float32",
                        block_threads: "int | None" = None) -> "object":
    """Section 5 prediction of the SSAM 1-D convolution (Section 3.5)."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if block_threads is None:
        block_threads = paper_default("block_threads")
    validate_block_threads(arch, block_threads)
    if taps < 1 or taps > arch.warp_size:
        raise ConfigurationError(
            f"1-D filters must have 1..{arch.warp_size} taps, got {taps}")
    from ..kernels.conv1d_ssam import (
        CONV1D_MEMORY_PARALLELISM,
        CONV1D_REGISTERS_PER_THREAD,
    )

    warps_per_block = block_threads // arch.warp_size
    valid_x = arch.warp_size - taps + 1
    blocks = math.ceil(length / (warps_per_block * valid_x))
    warp_passes = blocks * warps_per_block
    # the launch configuration of :func:`repro.kernels.ssam_convolve1d`
    config = LaunchConfig(
        grid_dim=(blocks, 1, 1), block_threads=block_threads,
        registers_per_thread=CONV1D_REGISTERS_PER_THREAD,
        shared_bytes_per_block=0, precision=prec,
        memory_parallelism=CONV1D_MEMORY_PARALLELISM)
    # taps are immediates; one coalesced load fills the lane cache
    compute = stencil_register_cache_latency(arch, taps, taps)
    memory = _coalesced_fill_cycles(arch, 1)
    sectors = _warp_sectors(arch, prec.itemsize)
    counters = KernelCounters()
    counters.blocks_executed = blocks
    counters.warps_executed = warp_passes
    counters.gmem_load = warp_passes
    counters.gmem_load_transactions = warp_passes * sectors
    counters.fma = taps * warp_passes
    counters.shfl = (taps - 1) * warp_passes
    counters.gmem_store = warp_passes
    counters.gmem_store_transactions = warp_passes * sectors
    unique_per_block = warps_per_block * valid_x + taps - 1
    counters.dram_read_bytes = float(unique_per_block * blocks * prec.itemsize)
    counters.dram_write_bytes = float(length * prec.itemsize)
    counters.cache_read_bytes = float(arch.warp_size * warp_passes * prec.itemsize)
    prediction = predict_launch(
        arch, config, scheme="register_cache", outputs=length,
        warp_passes=warp_passes, compute_cycles_per_pass=compute,
        memory_cycles_per_pass=memory, dram_bytes=counters.dram_bytes)
    return _model_result("ssam_conv1d_model", "model", arch, config, counters,
                         prediction,
                         {"taps": taps, "length": length,
                          "architecture": arch.name, "precision": prec.name})


def model_scan(length: int, architecture: object = "p100",
               precision: object = "float32",
               block_threads: "int | None" = None) -> "object":
    """Section 5 prediction of the SSAM Kogge-Stone scan (Figure 1e)."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if block_threads is None:
        block_threads = paper_default("block_threads")
    validate_block_threads(arch, block_threads)
    lat = arch.latencies
    warps_per_block = block_threads // arch.warp_size
    blocks = math.ceil(length / block_threads)
    warp_passes = blocks * warps_per_block
    from ..kernels.scan_ssam import (
        SCAN_MEMORY_PARALLELISM,
        SCAN_REGISTERS_PER_THREAD,
    )

    stages = int(math.log2(arch.warp_size))
    # the launch configuration of :func:`repro.kernels.ssam_scan`
    config = LaunchConfig(
        grid_dim=(blocks, 1, 1), block_threads=block_threads,
        registers_per_thread=SCAN_REGISTERS_PER_THREAD,
        shared_bytes_per_block=warps_per_block * prec.itemsize,
        precision=prec, memory_parallelism=SCAN_MEMORY_PARALLELISM)
    # log2(WarpSize) shuffle+add stages, then the cross-warp combine reads
    # every warp total through the broadcast path
    compute = (stages * (lat.shfl + lat.add)
               + warps_per_block * (lat.smem_broadcast + lat.add))
    memory = _coalesced_fill_cycles(arch, 1) + lat.smem_store + lat.sync
    sectors = _warp_sectors(arch, prec.itemsize)
    counters = KernelCounters()
    counters.blocks_executed = blocks
    counters.warps_executed = warp_passes
    counters.gmem_load = warp_passes
    counters.gmem_load_transactions = warp_passes * sectors
    counters.shfl = stages * warp_passes
    counters.add = (stages + warps_per_block) * warp_passes
    counters.smem_store = warp_passes
    counters.smem_broadcast = warps_per_block * warp_passes
    counters.sync = warp_passes
    counters.gmem_store = warp_passes + blocks
    counters.gmem_store_transactions = warp_passes * sectors + blocks
    counters.dram_read_bytes = float(length * prec.itemsize)
    counters.dram_write_bytes = float((length + blocks) * prec.itemsize)
    prediction = predict_launch(
        arch, config, scheme="register_cache", outputs=length,
        warp_passes=warp_passes, compute_cycles_per_pass=compute,
        memory_cycles_per_pass=memory, dram_bytes=counters.dram_bytes)
    return _model_result("ssam_scan_model", "model", arch, config, counters,
                         prediction,
                         {"length": length, "B": block_threads,
                          "architecture": arch.name, "precision": prec.name})


def model_shared_memory_2d(taps: int, halo_x: int, halo_y: int, width: int,
                           height: int, iterations: int = 1,
                           architecture: object = "p100",
                           precision: object = "float32",
                           weights_in_shared: bool = True,
                           kernel_name: str = "shared_tile_model",
                           extra_parameters: "Dict[str, object] | None" = None,
                           ) -> "object":
    """Section 5 prediction of the conventional scratchpad scheme (Eq. 3).

    Models the shared-memory baselines: a 32x32 output tile plus halo is
    staged by a 256-thread block, then every tap of every output is read
    back from the scratchpad (``2*T_smem_read`` per MAC when the weights
    also live there, one read otherwise).
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    lat = arch.latencies
    if taps < 1:
        raise ConfigurationError("taps must be >= 1")
    tile = MODEL_BASELINE_TILE
    block_threads = MODEL_BASELINE_BLOCK_THREADS
    blocking = SharedMemoryBlocking(tile_width=tile, tile_height=tile,
                                    halo_x=halo_x, halo_y=halo_y)
    grid = blocking.grid_dim(width, height)
    blocks = grid[0] * grid[1] * grid[2]
    warps_per_block = block_threads // arch.warp_size
    outputs_per_thread = blocking.valid_outputs // block_threads
    loads_per_thread = math.ceil(blocking.cached_elements / block_threads)
    config = LaunchConfig(
        grid_dim=grid, block_threads=block_threads,
        registers_per_thread=MODEL_BASELINE_REGISTERS,
        shared_bytes_per_block=blocking.shared_bytes(prec), precision=prec,
        memory_parallelism=float(loads_per_thread))
    smem_reads = 2.0 if weights_in_shared else 1.0
    per_output = taps * (lat.fma + smem_reads * lat.smem_load + 2.0 * lat.register)
    compute = outputs_per_thread * per_output
    if lat.supports_async_copy:
        memory = (lat.gmem_to_smem
                  + max(0, loads_per_thread - 1) * SECTOR_SERVICE_CYCLES
                  + lat.sync)
    else:
        memory = (_coalesced_fill_cycles(arch, loads_per_thread)
                  + lat.smem_store + lat.sync)
    warp_passes = blocks * warps_per_block * iterations
    sectors = _warp_sectors(arch, prec.itemsize)
    counters = KernelCounters()
    counters.blocks_executed = blocks * iterations
    counters.warps_executed = warp_passes
    counters.gmem_load = loads_per_thread * warp_passes
    counters.gmem_load_transactions = loads_per_thread * warp_passes * sectors
    counters.smem_store = loads_per_thread * warp_passes
    counters.sync = warp_passes
    counters.fma = outputs_per_thread * taps * warp_passes
    counters.smem_load = outputs_per_thread * taps * smem_reads * warp_passes
    counters.gmem_store = outputs_per_thread * warp_passes
    counters.gmem_store_transactions = outputs_per_thread * warp_passes * sectors
    counters.dram_read_bytes = float(blocking.cached_elements * blocks
                                     * prec.itemsize * iterations)
    counters.dram_write_bytes = float(width * height * prec.itemsize * iterations)
    counters.smem_read_bytes = float(counters.smem_load * arch.warp_size
                                     * prec.itemsize)
    counters.smem_write_bytes = float(blocking.cached_elements * blocks
                                      * prec.itemsize * iterations)
    prediction = predict_launch(
        arch, config, scheme="shared_memory",
        outputs=width * height * iterations, warp_passes=warp_passes,
        compute_cycles_per_pass=compute, memory_cycles_per_pass=memory,
        dram_bytes=counters.dram_bytes)
    parameters = {"taps": taps, "tile": tile, "halo_x": halo_x,
                  "halo_y": halo_y, "iterations": iterations,
                  "architecture": arch.name, "precision": prec.name}
    parameters.update(extra_parameters or {})
    return _model_result(kernel_name, "model", arch, config, counters,
                         prediction, parameters)


def model_naive_3d(taps: int, width: int, height: int, depth: int,
                   iterations: int = 1, architecture: object = "p100",
                   precision: object = "float32",
                   kernel_name: str = "naive3d_model") -> "object":
    """Section 5 prediction of the naive one-output-per-thread 3-D baseline.

    Every tap is an individual cache-hierarchy load: the first one pays the
    full global-memory latency, the rest stream through the L1/L2 path.
    """
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    lat = arch.latencies
    block_threads = MODEL_BASELINE_BLOCK_THREADS
    cells = width * height * depth
    blocks = math.ceil(cells / block_threads)
    warps_per_block = block_threads // arch.warp_size
    warp_passes = blocks * warps_per_block * iterations
    config = LaunchConfig(
        grid_dim=(blocks, 1, 1), block_threads=block_threads,
        registers_per_thread=MODEL_BASELINE_REGISTERS,
        shared_bytes_per_block=0, precision=prec, memory_parallelism=4.0)
    compute = taps * (lat.fma + 2.0 * lat.register)
    memory = lat.gmem_load + (taps - 1) * lat.l1_load / config.memory_parallelism
    sectors = _warp_sectors(arch, prec.itemsize)
    counters = KernelCounters()
    counters.blocks_executed = blocks * iterations
    counters.warps_executed = warp_passes
    counters.gmem_load = taps * warp_passes
    counters.gmem_load_transactions = taps * warp_passes * sectors
    counters.fma = taps * warp_passes
    counters.gmem_store = warp_passes
    counters.gmem_store_transactions = warp_passes * sectors
    counters.dram_read_bytes = float(cells * prec.itemsize * iterations)
    counters.dram_write_bytes = float(cells * prec.itemsize * iterations)
    counters.cache_read_bytes = float(taps * warp_passes * arch.warp_size
                                      * prec.itemsize)
    prediction = predict_launch(
        arch, config, scheme="naive", outputs=cells * iterations,
        warp_passes=warp_passes, compute_cycles_per_pass=compute,
        memory_cycles_per_pass=memory, dram_bytes=counters.dram_bytes)
    return _model_result(kernel_name, "model", arch, config, counters,
                         prediction,
                         {"taps": taps, "iterations": iterations,
                          "architecture": arch.name, "precision": prec.name})
