"""The SSAM core: formulation, register cache, blocking and performance model."""

from .blocking import OverlappedBlocking, SharedMemoryBlocking
from .dependency import (
    compare_dependencies,
    convolution_dependency,
    critical_path_cycles,
    horizontal_transfer_fraction,
    scan_dependency,
    shuffle_count,
    shuffle_schedule,
    stencil_dependency,
    validate_dependency,
)
from .model import Operation, RegisterBinding, SystolicProgram
from .performance_model import (
    LatencyComparison,
    advantage_table,
    average_advantage,
    compare_latencies,
    halo_ratio,
    halo_ratio_upper_bound,
    latency_advantage,
    predicted_speedup,
    register_cache_latency,
    shared_memory_latency,
)
from .plan import (
    DEFAULT_BLOCK_THREADS,
    DEFAULT_OUTPUTS_PER_THREAD,
    SSAMPlan,
    plan_convolution,
    plan_stencil,
)
from .register_cache import RegisterCachePlan, choose_plan, max_outputs_per_thread

__all__ = [
    "OverlappedBlocking",
    "SharedMemoryBlocking",
    "compare_dependencies",
    "convolution_dependency",
    "critical_path_cycles",
    "horizontal_transfer_fraction",
    "scan_dependency",
    "shuffle_count",
    "shuffle_schedule",
    "stencil_dependency",
    "validate_dependency",
    "Operation",
    "RegisterBinding",
    "SystolicProgram",
    "LatencyComparison",
    "advantage_table",
    "average_advantage",
    "compare_latencies",
    "halo_ratio",
    "halo_ratio_upper_bound",
    "latency_advantage",
    "predicted_speedup",
    "register_cache_latency",
    "shared_memory_latency",
    "DEFAULT_BLOCK_THREADS",
    "DEFAULT_OUTPUTS_PER_THREAD",
    "SSAMPlan",
    "plan_convolution",
    "plan_stencil",
    "RegisterCachePlan",
    "choose_plan",
    "max_outputs_per_thread",
]
