"""Dependency graphs D of the SSAM formulation (Sections 3.4 and 5.4).

The partial-sum transfer path of an SSAM kernel is a directed acyclic graph
whose nodes are ``(lane, stage)`` pairs inside one warp and whose edges say
where a partial result travels between computation stages.  Edges within a
lane are free register reads (the "vertical" direction of Figure 1d); edges
between lanes must be realised with warp shuffles (the "horizontal"
direction) and therefore carry a latency cost — Section 5.4's point is that
choosing D to minimise horizontal transfers is what makes an SSAM mapping
fast.

Graphs are :class:`networkx.DiGraph` instances so that standard graph
algorithms (longest path, topological order) can be applied directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import DependencyError
from ..gpu.architecture import get_architecture

#: node key inside a dependency graph
Node = Tuple[int, int]  # (lane, stage)


def _add_stage_nodes(graph: nx.DiGraph, stage: int, warp_size: int,
                     mads: int = 1) -> None:
    for lane in range(warp_size):
        graph.add_node((lane, stage), lane=lane, stage=stage, mads=mads)


def convolution_dependency(filter_width: int, warp_size: int = 32,
                           mads_per_stage: int = 1) -> nx.DiGraph:
    """Dependency graph of the SSAM convolution (Figure 2c).

    Stage ``m`` computes the inner product with filter column ``w_m``; the
    partial sum then moves one lane up (``shfl_up`` by 1) before stage
    ``m+1`` accumulates onto it.
    """
    if filter_width < 1:
        raise DependencyError("filter width must be >= 1")
    if filter_width > warp_size:
        raise DependencyError("filter width cannot exceed the warp size")
    graph = nx.DiGraph(kind="convolution", warp_size=warp_size)
    for stage in range(filter_width):
        _add_stage_nodes(graph, stage, warp_size, mads=mads_per_stage)
    for stage in range(1, filter_width):
        for lane in range(warp_size):
            source = lane - 1
            if source >= 0:
                graph.add_edge((source, stage - 1), (lane, stage),
                               kind="shuffle", delta=1)
    return graph


def stencil_dependency(column_offsets: Sequence[int], warp_size: int = 32,
                       taps_per_column: Optional[Sequence[int]] = None) -> nx.DiGraph:
    """Dependency graph of a 2-D stencil grouped by x-offset columns.

    ``column_offsets`` are the distinct x offsets of the stencil in
    ascending order (Listing 2 groups the 5-point stencil into the columns
    ``[-1, 0, +1]``); consecutive columns are ``delta = dx_{j+1} - dx_j``
    lanes apart, each realised by a ``shfl_up`` of that delta.
    """
    offsets = list(column_offsets)
    if not offsets:
        raise DependencyError("a stencil needs at least one column")
    if offsets != sorted(offsets):
        raise DependencyError("column offsets must be sorted ascending")
    if len(set(offsets)) != len(offsets):
        raise DependencyError("column offsets must be distinct")
    if taps_per_column is not None and len(taps_per_column) != len(offsets):
        raise DependencyError("taps_per_column must match column_offsets")
    graph = nx.DiGraph(kind="stencil", warp_size=warp_size,
                       column_offsets=tuple(offsets))
    for stage, _offset in enumerate(offsets):
        mads = 1 if taps_per_column is None else int(taps_per_column[stage])
        _add_stage_nodes(graph, stage, warp_size, mads=mads)
    for stage in range(1, len(offsets)):
        delta = offsets[stage] - offsets[stage - 1]
        for lane in range(warp_size):
            source = lane - delta
            if 0 <= source < warp_size:
                graph.add_edge((source, stage - 1), (lane, stage),
                               kind="shuffle", delta=delta)
    return graph


def scan_dependency(warp_size: int = 32) -> nx.DiGraph:
    """Kogge–Stone inclusive-scan dependency graph (Figure 1e)."""
    if warp_size <= 0 or warp_size & (warp_size - 1):
        raise DependencyError("warp size must be a power of two")
    stages = warp_size.bit_length() - 1
    graph = nx.DiGraph(kind="scan", warp_size=warp_size)
    for stage in range(stages + 1):
        _add_stage_nodes(graph, stage, warp_size, mads=1)
    for stage in range(1, stages + 1):
        delta = 1 << (stage - 1)
        for lane in range(warp_size):
            graph.add_edge((lane, stage - 1), (lane, stage), kind="local", delta=0)
            source = lane - delta
            if source >= 0:
                graph.add_edge((source, stage - 1), (lane, stage),
                               kind="shuffle", delta=delta)
    return graph


# ---------------------------------------------------------------------------
# analysis
# ---------------------------------------------------------------------------

def validate_dependency(graph: nx.DiGraph, warp_size: Optional[int] = None) -> None:
    """Check that D is executable by a single warp.

    Raises :class:`DependencyError` when the graph is cyclic, references
    lanes outside the warp, moves data backwards in stage order, or requires
    different shuffle deltas within one stage (which a single warp-uniform
    shuffle instruction cannot realise).
    """
    if graph.number_of_nodes() == 0:
        raise DependencyError("dependency graph is empty")
    if warp_size is None:
        warp_size = int(graph.graph.get("warp_size", 32))
    if not nx.is_directed_acyclic_graph(graph):
        raise DependencyError("dependency graph has a cycle")
    for (lane, stage) in graph.nodes:
        if not 0 <= lane < warp_size:
            raise DependencyError(f"node lane {lane} outside the warp of {warp_size}")
        if stage < 0:
            raise DependencyError("negative stage index")
    deltas_by_stage: Dict[int, set] = {}
    for (src_lane, src_stage), (dst_lane, dst_stage), data in graph.edges(data=True):
        if dst_stage != src_stage + 1:
            raise DependencyError("edges must connect consecutive stages")
        delta = dst_lane - src_lane
        if data.get("kind") == "shuffle":
            if delta == 0:
                raise DependencyError("shuffle edge with zero lane delta")
            deltas_by_stage.setdefault(dst_stage, set()).add(delta)
        elif delta != 0:
            raise DependencyError("local edge changes lanes without a shuffle")
    for stage, deltas in deltas_by_stage.items():
        if len(deltas) > 1:
            raise DependencyError(
                f"stage {stage} needs shuffle deltas {sorted(deltas)}; a warp can "
                "only apply one delta per shuffle instruction"
            )


def shuffle_schedule(graph: nx.DiGraph) -> List[int]:
    """Per-stage shuffle deltas (0 when a stage needs no lane exchange)."""
    validate_dependency(graph)
    stages = max(stage for _, stage in graph.nodes)
    schedule: List[int] = []
    for stage in range(1, stages + 1):
        deltas = {
            data["delta"]
            for (_, _), (_, dst_stage), data in (
                ((u), (v), d) for u, v, d in graph.edges(data=True)
            )
            if dst_stage == stage and data.get("kind") == "shuffle"
        }
        schedule.append(int(deltas.pop()) if deltas else 0)
    return schedule


def shuffle_count(graph: nx.DiGraph) -> int:
    """Number of warp shuffle instructions required per output row."""
    return sum(1 for delta in shuffle_schedule(graph) if delta != 0)


def critical_path_cycles(graph: nx.DiGraph, architecture: object = "p100") -> float:
    """Latency of D's critical path using the architecture's Table 2 values.

    Node cost = (MADs at that stage) x T_mad; shuffle edges add T_shfl.
    This is the quantity Section 5.4 proposes for comparing candidate
    dependency graphs of the same algorithm.
    """
    validate_dependency(graph)
    arch = get_architecture(architecture)
    lat = arch.latencies
    order = list(nx.topological_sort(graph))
    longest: Dict[Node, float] = {}
    for node in order:
        mads = graph.nodes[node].get("mads", 1)
        own_cost = mads * lat.fma
        best_in = 0.0
        for pred in graph.predecessors(node):
            edge = graph.edges[pred, node]
            edge_cost = lat.shfl if edge.get("kind") == "shuffle" else lat.register
            best_in = max(best_in, longest[pred] + edge_cost)
        longest[node] = best_in + own_cost
    return max(longest.values())


def horizontal_transfer_fraction(graph: nx.DiGraph) -> float:
    """Fraction of edges that are (expensive) lane-crossing shuffles."""
    total = graph.number_of_edges()
    if total == 0:
        return 0.0
    shuffles = sum(1 for _, _, d in graph.edges(data=True) if d.get("kind") == "shuffle")
    return shuffles / total


def compare_dependencies(graphs: Dict[str, nx.DiGraph],
                         architecture: object = "p100") -> List[Tuple[str, float]]:
    """Rank candidate dependency graphs by critical-path latency (Section 5.4)."""
    ranked = [(name, critical_path_cycles(graph, architecture)) for name, graph in graphs.items()]
    return sorted(ranked, key=lambda item: item[1])
