"""Launch-parameter default resolution — the one place defaults come from.

Every kernel entry point, scenario planner and model evaluator used to carry
its own copy of the paper's evaluation defaults (P=4, B=128).  This module
centralises them and layers the tuning database on top: defaults resolve
through a three-step chain

1. **explicit** — launch parameters the caller passed (``plan_kwargs``);
2. **tuned** — the best configuration :func:`repro.tuning.run_tuning`
   persisted for (scenario, architecture, precision, size-class) in the
   ``tuned_configs`` table of the result store, honoured only when its
   code-version digest matches the current source tree (a stale row is
   silently skipped, never served);
3. **paper** — the Section 6.2 constants in :data:`PAPER_LAUNCH_DEFAULTS`.

The tuned step is all-or-nothing: it applies only when the caller passed
*no* explicit launch parameter.  A partially specified point — e.g. the
canonical R-elided ``{outputs_per_thread: 4, block_threads: 128}`` a tuner
candidate or a sweep ``plan_kwargs`` grid spells out — pins its remaining
axes to the paper constants, never to tuned values, so an explicit point
always executes exactly the configuration its label claims.

The tuning database is consulted only when explicitly activated — via the
``SSAM_TUNED_DB`` environment variable (which worker subprocesses inherit,
keeping ``--jobs N`` runs deterministic) or the :func:`tuning_database`
context manager.  With no database active the chain degenerates to
explicit -> paper, byte-for-byte the pre-refactor behaviour.

The resolver reads straight from sqlite (read-only URI, no store object,
no schema creation), so a warm planner resolves tuned defaults in
microseconds with zero simulator work.
"""

from __future__ import annotations

import json
import os
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

#: environment variable naming the active tuning database: either the sqlite
#: file itself or a cache directory containing ``results.sqlite``
TUNED_DB_ENV = "SSAM_TUNED_DB"

#: filename of the result store inside a cache directory (mirrors
#: :data:`repro.experiments.cache.STORE_FILENAME` without importing it —
#: the experiments package sits above core in the import order)
_STORE_FILENAME = "results.sqlite"

#: the launch parameters of the paper's evaluation (Section 6.2): sliding
#: window depth P, block size B, and one warp row per block (the classic
#: 1-D block shape; ``block_rows > 1`` splits a block's warps into bands)
PAPER_LAUNCH_DEFAULTS: Dict[str, int] = {
    "outputs_per_thread": 4,
    "block_threads": 128,
    "block_rows": 1,
}

#: the size-class tuned rows are recorded under: the tuner explores at the
#: paper-scale problem size, so that is what planners look up by default
DEFAULT_SIZE_CLASS = "paper"

#: resolution sources in chain-priority order
SOURCE_EXPLICIT = "explicit"
SOURCE_TUNED = "tuned"
SOURCE_PAPER = "paper"

_UNSET = object()
#: programmatic database override (tests, in-process activation); the
#: environment variable is the cross-process mechanism
_DB_OVERRIDE: object = _UNSET

#: memoised lookups keyed by (path, scenario, architecture, precision,
#: size-class, code-version); cleared when a tune run writes new rows
_LOOKUP_CACHE: Dict[Tuple[object, ...], Optional[Dict[str, object]]] = {}


@dataclass(frozen=True)
class LaunchDefaults:
    """Resolved launch parameters plus their provenance.

    ``values`` maps each requested parameter to its resolved integer;
    ``sources`` records per-parameter where the value came from; ``source``
    is the chain summary (``"explicit"``, ``"tuned"``, ``"paper"`` or a
    ``+``-joined combination in chain order, e.g. ``"explicit+paper"``).
    """

    values: Dict[str, int]
    sources: Dict[str, str]
    source: str
    tuned_ms: Optional[float] = field(default=None, compare=False)


def active_tuning_database() -> Optional[str]:
    """Path of the active tuning database, or ``None`` when not activated."""
    if _DB_OVERRIDE is not _UNSET:
        return _DB_OVERRIDE  # type: ignore[return-value]
    return os.environ.get(TUNED_DB_ENV) or None


@contextmanager
def tuning_database(path: Optional[str]):
    """Activate a tuning database for the duration of the ``with`` block.

    Sets both the module override and ``SSAM_TUNED_DB`` so worker
    subprocesses spawned inside the block resolve identically — the
    determinism-across-``--jobs`` guarantee.  ``None`` deactivates (useful
    to shield a block from an ambient environment variable).
    """
    global _DB_OVERRIDE
    previous_override = _DB_OVERRIDE
    previous_env = os.environ.get(TUNED_DB_ENV)
    _DB_OVERRIDE = path
    if path is None:
        os.environ.pop(TUNED_DB_ENV, None)
    else:
        os.environ[TUNED_DB_ENV] = str(path)
    clear_lookup_cache()
    try:
        yield path
    finally:
        _DB_OVERRIDE = previous_override
        if previous_env is None:
            os.environ.pop(TUNED_DB_ENV, None)
        else:
            os.environ[TUNED_DB_ENV] = previous_env
        clear_lookup_cache()


def clear_lookup_cache() -> None:
    """Drop memoised tuned-config lookups (called after tune runs write)."""
    _LOOKUP_CACHE.clear()


def _database_file(path: str) -> str:
    """Accept either the sqlite file or a cache directory containing one."""
    if os.path.isdir(path):
        return os.path.join(path, _STORE_FILENAME)
    return path


def _current_code_version() -> str:
    # late import: core must not import the experiments package at module
    # load (experiments -> scenarios -> kernels -> core would cycle)
    from ..experiments import cache as _cache

    return _cache.code_version()


def _query_tuned_config(path: str, scenario: str, architecture: str,
                        precision: str, size_class: str,
                        code_version: str) -> Optional[Dict[str, object]]:
    """Read one tuned row straight from sqlite; any failure means "no row".

    Opened read-only via URI so a lookup never creates a database, never
    upgrades a schema and never takes a write lock.  A database without the
    ``tuned_configs`` table (pre-migration) simply has nothing tuned.

    A cell can hold one row per explored design space (quick and full tune
    runs write distinct rows); the lookup serves the best of them — lowest
    predicted time, larger space and freshest write breaking ties — so a
    reduced-space re-run can never shadow a full-space recommendation.
    """
    if not os.path.exists(path):
        return None
    try:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=5.0)
    except sqlite3.Error:
        return None
    try:
        row = conn.execute(
            "SELECT plan_kwargs, model_ms, default_model_ms, speedup, search,"
            " confirmed, tune_digest FROM tuned_configs"
            " WHERE scenario = ? AND architecture = ? AND precision = ?"
            " AND size_class = ? AND code_version = ?"
            " ORDER BY (model_ms IS NULL), model_ms, space_size DESC,"
            " created_at DESC, space_digest LIMIT 1",
            (scenario, architecture, precision, size_class, code_version),
        ).fetchone()
    except sqlite3.Error:
        return None
    finally:
        conn.close()
    if row is None:
        return None
    try:
        plan_kwargs = {str(k): int(v) for k, v in json.loads(row[0]).items()}
    except (ValueError, TypeError, AttributeError):
        return None
    return {
        "plan_kwargs": plan_kwargs,
        "model_ms": row[1],
        "default_model_ms": row[2],
        "speedup": row[3],
        "search": row[4],
        "confirmed": None if row[5] is None else bool(row[5]),
        "tune_digest": row[6],
    }


def lookup_tuned_config(scenario: str, architecture: str, precision: str,
                        size_class: str = DEFAULT_SIZE_CLASS,
                        path: Optional[str] = None,
                        ) -> Optional[Dict[str, object]]:
    """The tuned configuration of one cell, or ``None``.

    ``None`` covers every fallback case at once: no database active, file
    missing, table missing (schema not yet migrated), no row for the cell,
    or a row written by a different code version (stale).
    """
    db = path if path is not None else active_tuning_database()
    if not db:
        return None
    db_file = _database_file(db)
    code = _current_code_version()
    key = (db_file, scenario, architecture, precision, size_class, code)
    if key not in _LOOKUP_CACHE:
        _LOOKUP_CACHE[key] = _query_tuned_config(
            db_file, scenario, architecture, precision, size_class, code)
    found = _LOOKUP_CACHE[key]
    return None if found is None else dict(found,
                                           plan_kwargs=dict(found["plan_kwargs"]))


def resolve_launch_defaults(
        parameters: Sequence[str],
        architecture: Optional[str] = None,
        precision: Optional[str] = None,
        scenario: Optional[str] = None,
        explicit: Optional[Mapping[str, object]] = None,
        size_class: str = DEFAULT_SIZE_CLASS) -> LaunchDefaults:
    """Resolve launch parameters through explicit -> tuned -> paper.

    ``parameters`` names the launch parameters to resolve (each must appear
    in :data:`PAPER_LAUNCH_DEFAULTS`).  ``explicit`` entries that are
    ``None`` count as absent.  The tuning database is consulted only when
    *no* explicit value was passed at all (the all-or-nothing rule of the
    module docstring: a partially explicit point pins its unspecified axes
    to the paper constants, preserving point identity), *and* a ``scenario``
    key is given *and* a database is active *and* both ``architecture`` and
    ``precision`` are known — direct kernel calls with no scenario identity
    always resolve to the paper constants, keeping them deterministic
    regardless of ambient state.
    """
    given = {key: int(value) for key, value in dict(explicit or {}).items()
             if value is not None}
    tuned = None
    if not given and scenario and architecture and precision:
        tuned = lookup_tuned_config(scenario, architecture, precision,
                                    size_class)
    tuned_kwargs = {} if tuned is None else tuned["plan_kwargs"]
    values: Dict[str, int] = {}
    sources: Dict[str, str] = {}
    for key in parameters:
        if key not in PAPER_LAUNCH_DEFAULTS:
            from ..errors import ConfigurationError

            raise ConfigurationError(
                f"unknown launch parameter {key!r}; known parameters: "
                f"{sorted(PAPER_LAUNCH_DEFAULTS)}")
        if key in given:
            values[key] = given[key]
            sources[key] = SOURCE_EXPLICIT
        elif key in tuned_kwargs:
            values[key] = int(tuned_kwargs[key])
            sources[key] = SOURCE_TUNED
        else:
            values[key] = PAPER_LAUNCH_DEFAULTS[key]
            sources[key] = SOURCE_PAPER
    summary = "+".join(
        name for name in (SOURCE_EXPLICIT, SOURCE_TUNED, SOURCE_PAPER)
        if name in sources.values()) or SOURCE_PAPER
    return LaunchDefaults(
        values=values, sources=sources, source=summary,
        tuned_ms=None if tuned is None else tuned.get("model_ms"))


def paper_default(key: str) -> int:
    """One paper constant by name (the compatibility accessor)."""
    return PAPER_LAUNCH_DEFAULTS[key]
