"""Canonical JSON serialization and stable content digests.

The experiment pipeline memoizes simulations on disk and fans jobs out to
worker processes, so every object that parameterises a simulation (problem
specs, SSAM plans, launch configurations, job parameters) needs a stable,
platform-independent identity.  This module provides the two primitives the
whole repository shares:

* :func:`jsonify` — normalise a value into plain JSON types (tuples become
  lists, NumPy scalars/arrays become Python numbers/lists) so the same
  logical value always serialises to the same text;
* :func:`stable_digest` — a hex digest of the canonical JSON encoding,
  used for cache keys and spec fingerprints.

Keeping this at the package root lets :mod:`repro.core`, :mod:`repro.gpu`
and :mod:`repro.experiments` all use one identity scheme without layering
violations (the GPU layer never imports the experiment layer).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Mapping
from typing import Any

import numpy as np


def jsonify(value: Any) -> Any:
    """Normalise ``value`` into plain JSON-compatible Python types.

    Tuples become lists, mappings become plain dicts (preserving insertion
    order), NumPy scalars become Python ints/floats/bools and NumPy arrays
    become nested lists.  Values that are already JSON types pass through
    unchanged; anything else raises ``TypeError`` so non-serialisable
    objects are caught at the call site rather than deep inside ``json``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)  # np.float64 subclasses float; normalise it too
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()] \
            if value.dtype == object else value.tolist()
    if isinstance(value, Mapping):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [jsonify(item) for item in items]
    if hasattr(value, "to_dict"):
        return jsonify(value.to_dict())
    raise TypeError(f"cannot serialise {type(value).__name__!r} value {value!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace drift.

    Two values that :func:`jsonify` to the same structure always produce the
    same text, regardless of dict insertion order.
    """
    return json.dumps(jsonify(value), sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def stable_digest(value: Any, length: int = 16) -> str:
    """Short hex digest of the canonical JSON encoding of ``value``."""
    digest = hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
    return digest[:length] if length else digest


def atomic_write_json(path: str, value: Any, indent: "int | None" = None) -> str:
    """Write ``value`` as JSON via a temp file + ``os.replace``.

    Concurrent writers/readers (parallel experiment runs sharing a cache
    or artifact directory) never observe a partially written file; the
    last writer wins.  Returns ``path``.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(value, handle, indent=indent,
                  separators=None if indent else (",", ":"))
        if indent:
            handle.write("\n")
    os.replace(tmp, path)
    return path


def load_json(path: str) -> Any:
    """Read one JSON document (matrix specs, artifacts, cache entries)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def array_digest(array: np.ndarray, length: int = 16) -> str:
    """Content digest of a NumPy array (dtype + shape + bytes).

    Faster than routing large arrays through JSON; used by spec
    fingerprints that embed weight matrices.
    """
    array = np.ascontiguousarray(array)
    hasher = hashlib.sha256()
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(array.tobytes())
    digest = hasher.hexdigest()
    return digest[:length] if length else digest
