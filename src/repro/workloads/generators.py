"""Reproducible input-data generators for tests, examples and benchmarks."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dtypes import resolve_precision
from ..errors import ConfigurationError


def random_image(width: int, height: int, precision: object = "float32",
                 seed: int = 0, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Uniform random 2-D image of shape ``(height, width)``."""
    if width <= 0 or height <= 0:
        raise ConfigurationError("image dimensions must be positive")
    prec = resolve_precision(precision)
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=(height, width)).astype(prec.numpy_dtype)


def random_grid_3d(width: int, height: int, depth: int, precision: object = "float32",
                   seed: int = 0) -> np.ndarray:
    """Uniform random 3-D grid of shape ``(depth, height, width)``."""
    if min(width, height, depth) <= 0:
        raise ConfigurationError("grid dimensions must be positive")
    prec = resolve_precision(precision)
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(depth, height, width)).astype(prec.numpy_dtype)


def gradient_image(width: int, height: int, precision: object = "float32") -> np.ndarray:
    """Smooth deterministic ramp image (useful for visual examples)."""
    prec = resolve_precision(precision)
    ys = np.linspace(0.0, 1.0, height, dtype=np.float64)[:, None]
    xs = np.linspace(0.0, 1.0, width, dtype=np.float64)[None, :]
    return (0.5 * ys + 0.5 * xs).astype(prec.numpy_dtype)


def checkerboard_image(width: int, height: int, tile: int = 8,
                       precision: object = "float32") -> np.ndarray:
    """Checkerboard pattern (stresses boundary handling visibly)."""
    if tile <= 0:
        raise ConfigurationError("tile size must be positive")
    prec = resolve_precision(precision)
    ys = (np.arange(height) // tile)[:, None]
    xs = (np.arange(width) // tile)[None, :]
    return ((ys + xs) % 2).astype(prec.numpy_dtype)


def hotspot_grid(width: int, height: int, depth: Optional[int] = None,
                 precision: object = "float32", background: float = 0.0,
                 peak: float = 100.0) -> np.ndarray:
    """Grid with a hot square/cube in the centre (heat-diffusion examples)."""
    prec = resolve_precision(precision)
    if depth is None:
        grid = np.full((height, width), background, dtype=prec.numpy_dtype)
        y0, y1 = height // 3, 2 * height // 3
        x0, x1 = width // 3, 2 * width // 3
        grid[y0:y1, x0:x1] = peak
        return grid
    grid = np.full((depth, height, width), background, dtype=prec.numpy_dtype)
    z0, z1 = depth // 3, 2 * depth // 3
    y0, y1 = height // 3, 2 * height // 3
    x0, x1 = width // 3, 2 * width // 3
    grid[z0:z1, y0:y1, x0:x1] = peak
    return grid


def impulse_image(width: int, height: int, precision: object = "float32") -> np.ndarray:
    """Single central impulse (convolution with it returns the filter)."""
    prec = resolve_precision(precision)
    grid = np.zeros((height, width), dtype=prec.numpy_dtype)
    grid[height // 2, width // 2] = 1.0
    return grid


def sequence(length: int, precision: object = "float32", seed: int = 0) -> np.ndarray:
    """Random 1-D sequence for scan / 1-D convolution workloads."""
    if length <= 0:
        raise ConfigurationError("sequence length must be positive")
    prec = resolve_precision(precision)
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=length).astype(prec.numpy_dtype)
