"""Workload (input data) generators."""

from .generators import (
    checkerboard_image,
    gradient_image,
    hotspot_grid,
    impulse_image,
    random_grid_3d,
    random_image,
    sequence,
)

__all__ = [
    "checkerboard_image",
    "gradient_image",
    "hotspot_grid",
    "impulse_image",
    "random_grid_3d",
    "random_image",
    "sequence",
]
