"""Floating-point precision handling shared by the whole library.

The paper evaluates every kernel in single and double precision; throughput
and memory traffic both depend on the element width, so precision is modelled
explicitly everywhere instead of being an afterthought.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .errors import ConfigurationError

#: canonical names accepted by the public API
SINGLE = "float32"
DOUBLE = "float64"

_ALIASES = {
    "float32": SINGLE,
    "fp32": SINGLE,
    "single": SINGLE,
    "f32": SINGLE,
    np.float32: SINGLE,
    np.dtype(np.float32): SINGLE,
    "float64": DOUBLE,
    "fp64": DOUBLE,
    "double": DOUBLE,
    "f64": DOUBLE,
    np.float64: DOUBLE,
    np.dtype(np.float64): DOUBLE,
}


@dataclass(frozen=True)
class Precision:
    """A floating point precision used for kernel data.

    Attributes
    ----------
    name:
        Canonical name (``"float32"`` or ``"float64"``).
    itemsize:
        Bytes per element.
    numpy_dtype:
        The corresponding NumPy dtype object.
    """

    name: str
    itemsize: int

    @property
    def numpy_dtype(self) -> np.dtype:
        """NumPy dtype corresponding to this precision."""
        return np.dtype(self.name)

    @property
    def is_double(self) -> bool:
        """True for 64-bit floating point."""
        return self.itemsize == 8

    @property
    def registers_per_value(self) -> int:
        """Number of 32-bit hardware registers needed to hold one value."""
        return self.itemsize // 4

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


FLOAT32 = Precision(SINGLE, 4)
FLOAT64 = Precision(DOUBLE, 8)


def resolve_precision(precision: object) -> Precision:
    """Return the :class:`Precision` for any accepted spelling.

    Parameters
    ----------
    precision:
        A :class:`Precision`, a NumPy dtype, or one of the string aliases
        ``"float32"/"fp32"/"single"`` and ``"float64"/"fp64"/"double"``.

    Raises
    ------
    ConfigurationError
        If the precision is not one of the supported floating point types.
    """
    if isinstance(precision, Precision):
        return precision
    key: object = precision
    if isinstance(precision, str):
        key = precision.lower()
    elif isinstance(precision, np.dtype):
        key = precision
    elif isinstance(precision, type) and issubclass(precision, np.generic):
        key = np.dtype(precision)
    try:
        return _resolve_cached(key)
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            f"unsupported precision {precision!r}; expected float32 or float64"
        ) from exc


@lru_cache(maxsize=None)
def _resolve_cached(key: object) -> Precision:
    """Alias lookup, memoised so hot launch paths skip re-validation."""
    canonical = _ALIASES[key]  # type: ignore[index]
    return FLOAT32 if canonical == SINGLE else FLOAT64
