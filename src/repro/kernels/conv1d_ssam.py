"""SSAM 1-D convolution — the motivating example of Section 3.5.

One warp caches WarpSize consecutive elements (one per lane); the filter
taps are applied as successive partial sums shifted up between taps, just
like one row of the 2-D kernel.  Kept deliberately close to the paper's
exposition: it is the smallest complete example of the J = (O, D, X, Y)
mapping and is used heavily by the unit tests and the quickstart example.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.launch_defaults import paper_default
from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.block import BlockContext
from ..gpu.kernel import Kernel, LaunchConfig, grid_1d
from ..gpu.memory import DeviceBuffer, GlobalMemory
from ..gpu.occupancy import validate_block_threads
from .common import KernelRunResult, clamp

#: measured register footprint / load parallelism of the 1-D kernel; shared
#: with the Section 5 model engine so both describe the same launch
CONV1D_REGISTERS_PER_THREAD = 22
CONV1D_MEMORY_PARALLELISM = 2.0


def _conv1d_ssam_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
                       taps: tuple, length: int, anchor: int) -> None:
    """1-D SSAM convolution for one thread block."""
    filter_width = len(taps)
    warp_size = ctx.warp_size
    valid = warp_size - filter_width + 1
    lane = ctx.lane_id
    warp = ctx.warp_id
    warp_base = (ctx.block_idx_x * ctx.num_warps + warp) * valid

    column = clamp(warp_base + lane - anchor, 0, length - 1)
    cached = ctx.load_global(src, column)

    partial = ctx.zeros()
    for m, tap in enumerate(taps):
        if m > 0:
            partial = ctx.shfl_up(partial, 1)
        partial = ctx.mad(cached, ctx.full(float(tap)), partial)

    out_x = warp_base + lane - (filter_width - 1)
    mask = (lane >= filter_width - 1) & (out_x >= 0) & (out_x < length)
    ctx.store_global(dst, clamp(out_x, 0, length - 1), partial, mask=mask)


CONV1D_SSAM_KERNEL = Kernel(_conv1d_ssam_block, name="ssam_conv1d")


def ssam_convolve1d(sequence: np.ndarray, taps: np.ndarray, anchor: Optional[int] = None,
                    architecture: object = "p100", precision: object = "float32",
                    block_threads: Optional[int] = None,
                    batch_size: object = "auto",
                    max_blocks: Optional[int] = None,
                    keep_output: bool = False) -> KernelRunResult:
    """Convolve a 1-D sequence with ``taps`` using the SSAM kernel.

    ``out[i] = sum_m in[i + m - anchor] * taps[m]`` with replicate boundary;
    the anchor defaults to the filter centre.  ``max_blocks`` samples the
    grid (counters are scaled to the full grid; outputs are partial and
    only returned with ``keep_output=True``).
    """
    sequence = np.asarray(sequence)
    taps = np.asarray(taps, dtype=np.float64)
    if sequence.ndim != 1 or sequence.size == 0:
        raise ConfigurationError("ssam_convolve1d expects a non-empty 1-D sequence")
    if taps.ndim != 1 or taps.size == 0:
        raise ConfigurationError("taps must be a non-empty 1-D array")
    arch = get_architecture(architecture)
    if taps.size > arch.warp_size:
        raise ConfigurationError("1-D filters longer than the warp size are unsupported")
    prec = resolve_precision(precision)
    if block_threads is None:
        block_threads = paper_default("block_threads")
    validate_block_threads(arch, block_threads)
    anchor = taps.size // 2 if anchor is None else int(anchor)
    if not 0 <= anchor < taps.size:
        raise ConfigurationError("anchor must lie inside the filter")
    length = int(sequence.size)
    memory = GlobalMemory()
    src = memory.to_device(sequence.astype(prec.numpy_dtype), name="sequence")
    dst = memory.allocate((length,), prec, name="convolved")
    valid_per_warp = arch.warp_size - taps.size + 1
    per_block = (block_threads // arch.warp_size) * valid_per_warp
    config = LaunchConfig(
        grid_dim=grid_1d(length, per_block),
        block_threads=block_threads,
        registers_per_thread=CONV1D_REGISTERS_PER_THREAD,
        shared_bytes_per_block=0,
        precision=prec,
        memory_parallelism=CONV1D_MEMORY_PARALLELISM,
    )
    launch = CONV1D_SSAM_KERNEL.launch(
        config, args=(src, dst, tuple(float(t) for t in taps), length, anchor),
        architecture=arch, max_blocks=max_blocks, batch_size=batch_size)
    return KernelRunResult(
        name="ssam",
        output=dst.to_host() if (max_blocks is None or keep_output) else None,
        launch=launch,
        parameters={"taps": taps.size, "anchor": anchor, "architecture": arch.name,
                    "precision": prec.name},
    )


def reference_convolve1d(sequence: np.ndarray, taps: np.ndarray,
                         anchor: Optional[int] = None) -> np.ndarray:
    """Ground-truth 1-D convolution with replicate boundary."""
    sequence = np.asarray(sequence, dtype=np.float64)
    taps = np.asarray(taps, dtype=np.float64)
    anchor = taps.size // 2 if anchor is None else int(anchor)
    padded = np.pad(sequence, (anchor, taps.size - 1 - anchor), mode="edge")
    result = np.zeros_like(sequence)
    for m, tap in enumerate(taps):
        result += tap * padded[m:m + sequence.size]
    return result
