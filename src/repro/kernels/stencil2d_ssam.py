"""SSAM 2-D stencil kernel — the generalised form of Listing 2.

The stencil's taps are grouped by their x offset (the "coefficient columns"
of Section 4.8); each thread caches ``C = N + P - 1`` rows of its own column
in registers, computes the per-column partial sums, and shifts the partial
sum towards higher lanes between column groups with ``shfl_up`` (the delta
being the gap between consecutive x offsets).  Stencil coefficients are
passed as kernel arguments, not staged in shared memory, exactly as the
paper does for stencils.

Iterative (Jacobi-style) application ping-pongs between two device buffers;
the returned counters aggregate all iterations.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.plan import SSAMPlan, plan_stencil
from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.block import BlockContext
from ..gpu.counters import KernelCounters
from ..gpu.kernel import Kernel, LaunchResult
from ..gpu.memory import DeviceBuffer, GlobalMemory
from ..stencils.spec import StencilSpec
from .common import KernelRunResult, check_image, clamp

#: a column group: (x offset, ((row index into the register cache, coefficient), ...))
ColumnGroups = Tuple[Tuple[int, Tuple[Tuple[int, float], ...]], ...]


def build_column_groups(spec: StencilSpec) -> ColumnGroups:
    """Group a 2-D stencil's taps by x offset for the systolic schedule."""
    if spec.dims != 2:
        raise ConfigurationError("build_column_groups expects a 2-D stencil")
    y_lo, _ = spec.y_range
    groups: List[Tuple[int, Tuple[Tuple[int, float], ...]]] = []
    for dx, points in spec.columns().items():
        rows = tuple((point.dy - y_lo, float(point.coefficient)) for point in points)
        groups.append((dx, rows))
    return tuple(groups)


def _stencil2d_ssam_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
                          width: int, height: int, columns: ColumnGroups,
                          footprint_width: int, footprint_height: int,
                          outputs_per_thread: int, x_min: int, y_min: int,
                          block_rows: int = 1) -> None:
    """Listing 2 (generalised), executed for one thread block.

    ``block_rows`` splits the block's warps into R bands of consecutive
    P-row strips, exactly as in the convolution kernel; R=1 keeps the
    paper's 1-D block shape with unchanged arithmetic.
    """
    m_extent = footprint_width
    p_extent = outputs_per_thread
    cache_rows = footprint_height + p_extent - 1
    warp_size = ctx.warp_size
    valid_x = warp_size - m_extent + 1
    x_max = x_min + m_extent - 1

    lane = ctx.lane_id
    warp = ctx.warp_id
    warps_per_block = ctx.num_warps

    if block_rows == 1:
        warps_x = warps_per_block
        warp_x = warp
        block_row = ctx.block_idx_y
    else:
        warps_x = warps_per_block // block_rows
        warp_x = warp % warps_x
        block_row = ctx.block_idx_y * block_rows + warp // warps_x
    warp_out_base = (ctx.block_idx_x * warps_x + warp_x) * valid_x
    column = clamp(warp_out_base + lane + x_min, 0, width - 1)
    row_base = block_row * p_extent + y_min

    register_cache = []
    for j in range(cache_rows):
        row = clamp(row_base + j, 0, height - 1)
        register_cache.append(ctx.load_global(src, row * width + column))

    # partial sums accumulate towards higher lanes; lane t holds the output
    # at x = warp_out_base + t - (M - 1), valid for t >= M - 1
    out_x = warp_out_base + lane - (x_max - x_min)
    x_mask = (lane >= (m_extent - 1)) & (out_x < width) & (out_x >= 0)
    safe_x = clamp(out_x, 0, width - 1)

    for i in range(p_extent):
        partial = ctx.zeros()
        previous_dx: Optional[int] = None
        for dx, rows in columns:
            if previous_dx is not None and dx != previous_dx:
                partial = ctx.shfl_up(partial, dx - previous_dx)
            previous_dx = dx
            for row_index, coefficient in rows:
                partial = ctx.mad(register_cache[i + row_index],
                                  ctx.full(coefficient), partial)
        trailing = x_max - (previous_dx if previous_dx is not None else x_max)
        if trailing:
            partial = ctx.shfl_up(partial, trailing)
        out_y = block_row * p_extent + i
        mask = x_mask & (out_y < height)
        safe_y = np.minimum(out_y, height - 1)
        ctx.store_global(dst, safe_y * width + safe_x, partial, mask=mask)


STENCIL2D_SSAM_KERNEL = Kernel(_stencil2d_ssam_block, name="ssam_stencil2d")


def ssam_stencil2d(grid: np.ndarray, spec: StencilSpec, iterations: int = 1,
                   architecture: object = "p100", precision: object = "float32",
                   outputs_per_thread: Optional[int] = None,
                   block_threads: Optional[int] = None,
                   block_rows: Optional[int] = None,
                   plan: Optional[SSAMPlan] = None,
                   max_blocks: Optional[int] = None,
                   batch_size: object = "auto",
                   keep_output: bool = False) -> KernelRunResult:
    """Apply a 2-D stencil for ``iterations`` Jacobi steps with the SSAM kernel.

    ``keep_output=True`` returns the (partial) output even for sampled
    runs; with ``iterations=1`` the executed blocks' outputs match a full
    run exactly.
    """
    grid = check_image(grid)
    if spec.dims != 2:
        raise ConfigurationError(f"stencil {spec.name!r} is not 2-D")
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if plan is None:
        plan = plan_stencil(spec, arch, prec, outputs_per_thread,
                            block_threads, block_rows)
    height, width = grid.shape
    memory = GlobalMemory()
    buffers = [
        memory.to_device(grid.astype(prec.numpy_dtype, copy=True), name="grid_a"),
        memory.allocate(grid.shape, prec, name="grid_b"),
    ]
    columns = build_column_groups(spec)
    x_min, _ = spec.x_range
    y_min, _ = spec.y_range
    config = plan.launch_config(width, height)
    merged: Optional[LaunchResult] = None
    for step in range(iterations):
        src, dst = buffers[step % 2], buffers[(step + 1) % 2]
        launch = STENCIL2D_SSAM_KERNEL.launch(
            config,
            args=(src, dst, width, height, columns, spec.footprint_width,
                  spec.footprint_height, plan.outputs_per_thread, x_min, y_min,
                  plan.block_rows),
            architecture=arch,
            max_blocks=max_blocks,
            batch_size=batch_size,
        )
        merged = launch if merged is None else merged.merged_with(launch)
    final = buffers[iterations % 2]
    output = final.to_host() if (max_blocks is None or keep_output) else None
    return KernelRunResult(
        name="ssam",
        output=output,
        launch=merged,
        parameters={
            "stencil": spec.name,
            "iterations": iterations,
            "P": plan.outputs_per_thread,
            "B": plan.block_threads,
            "architecture": arch.name,
            "precision": prec.name,
        },
    )


def analytic_counters(spec: StencilSpec, width: int, height: int, plan: SSAMPlan,
                      iterations: int = 1) -> KernelCounters:
    """Closed-form instruction/traffic profile of the SSAM 2-D stencil."""
    blocking = plan.blocking
    prec = plan.precision
    p_extent = plan.outputs_per_thread
    cache_rows = blocking.cache_values
    grid_x, grid_y, _ = blocking.grid_dim(width, height)
    blocks = grid_x * grid_y
    warps_per_block = blocking.warps_per_block
    total_warps = blocks * warps_per_block
    columns = spec.columns()
    column_count = len(columns)
    taps = sum(len(points) for points in columns.values())
    x_min, x_max = spec.x_range
    trailing = 1 if (x_max - max(columns.keys())) else 0

    counters = KernelCounters()
    counters.blocks_executed = blocks * iterations
    counters.warps_executed = total_warps * iterations
    counters.gmem_load += cache_rows * total_warps * iterations
    sectors_per_row = math.ceil(32 * prec.itemsize / 128)
    counters.gmem_load_transactions += cache_rows * total_warps * sectors_per_row * iterations
    counters.fma += p_extent * taps * total_warps * iterations
    counters.shfl += p_extent * (column_count - 1 + trailing) * total_warps * iterations
    counters.gmem_store += p_extent * total_warps * iterations
    counters.gmem_store_transactions += p_extent * total_warps * sectors_per_row * iterations

    # unique footprint per block: R bands tile R*P rows (overlapping by
    # N-1) by WarpsX*ValidX + M - 1 columns; identical to the classic
    # cache_rows x (WarpCount*ValidX + M - 1) tile at R=1
    unique_columns = blocking.warps_x * blocking.valid_outputs_x + (blocking.filter_width - 1)
    unique_rows = blocking.rows_per_block + blocking.filter_height - 1
    read_bytes_per_block = unique_rows * unique_columns * prec.itemsize
    counters.dram_read_bytes += read_bytes_per_block * blocks * iterations
    counters.dram_write_bytes += width * height * prec.itemsize * iterations
    counters.cache_read_bytes += cache_rows * 32 * total_warps * prec.itemsize * iterations
    return counters


def analytic_launch(spec: StencilSpec, width: int, height: int, iterations: int = 1,
                    architecture: object = "p100", precision: object = "float32",
                    outputs_per_thread: Optional[int] = None,
                    block_threads: Optional[int] = None,
                    block_rows: Optional[int] = None) -> KernelRunResult:
    """Paper-scale cost estimate of the SSAM 2-D stencil without execution."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    plan = plan_stencil(spec, arch, prec, outputs_per_thread,
                        block_threads, block_rows)
    counters = analytic_counters(spec, width, height, plan, iterations)
    launch = LaunchResult(
        kernel_name="ssam_stencil2d_analytic",
        config=plan.launch_config(width, height),
        architecture=arch,
        counters=counters,
        blocks_executed=0,
        sampled=True,
        sample_fraction=0.0,
    )
    return KernelRunResult(
        name="ssam",
        output=None,
        launch=launch,
        parameters={
            "stencil": spec.name,
            "width": width,
            "height": height,
            "iterations": iterations,
            "architecture": arch.name,
            "precision": prec.name,
            "analytic": True,
        },
    )
