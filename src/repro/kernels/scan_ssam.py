"""SSAM Kogge–Stone scan (the motivating example of Section 3.6, Figure 1e).

Each warp holds one element per lane and performs ``log2(WarpSize)``
shuffle+add stages, exactly the dependency graph produced by
:func:`repro.core.dependency.scan_dependency`.  Block-level and grid-level
results are combined with the standard scan-of-partial-sums scheme so the
public API scans sequences of arbitrary length.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.launch_defaults import paper_default
from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.block import BlockContext
from ..gpu.kernel import Kernel, LaunchConfig, grid_1d
from ..gpu.memory import DeviceBuffer, GlobalMemory
from ..gpu.occupancy import validate_block_threads
from .common import KernelRunResult

#: measured register footprint / load parallelism of the scan kernel; shared
#: with the Section 5 model engine so both describe the same launch
SCAN_REGISTERS_PER_THREAD = 24
SCAN_MEMORY_PARALLELISM = 2.0


def _scan_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
                block_sums: DeviceBuffer, length: int) -> None:
    """Warp-level Kogge–Stone scan + shared-memory combine across warps."""
    warp_size = ctx.warp_size
    tid = ctx.thread_idx_x
    lane = ctx.lane_id
    warp = ctx.warp_id
    global_index = ctx.block_idx_x * ctx.block_threads + tid
    mask = global_index < length
    safe = np.minimum(global_index, length - 1)

    values = ctx.load_global(src, safe, mask=mask)
    values = np.where(mask, values, 0.0).astype(ctx.numpy_dtype)

    # Kogge-Stone within each warp (Figure 1e)
    stages = int(math.log2(warp_size))
    for stage in range(stages):
        delta = 1 << stage
        shifted = ctx.shfl_up(values, delta)
        contribution = np.where(lane >= delta, shifted, 0.0).astype(ctx.numpy_dtype)
        values = ctx.add(values, contribution)

    # warp totals -> shared memory -> exclusive offsets per warp
    warp_totals = ctx.alloc_shared("warp_totals", (ctx.num_warps,))
    last_lane = lane == (warp_size - 1)
    ctx.store_shared(warp_totals, warp.astype(np.int64), values, mask=last_lane)
    ctx.syncthreads()

    offsets = ctx.zeros()
    for w in range(ctx.num_warps):
        total = ctx.load_shared(warp_totals, np.int64(w))
        contribution = np.where(warp > w, total, 0.0).astype(ctx.numpy_dtype)
        offsets = ctx.add(offsets, contribution)
    values = ctx.add(values, offsets)

    ctx.store_global(dst, safe, values, mask=mask)
    # record the block total so the host pass can make the scan global
    # (the block index broadcasts to one destination per thread; only the
    # last thread's lane is active)
    block_last = tid == (ctx.block_threads - 1)
    ctx.store_global(block_sums, ctx.block_idx_x, values, mask=block_last)


SCAN_SSAM_KERNEL = Kernel(_scan_block, name="ssam_scan")


def ssam_scan(sequence: np.ndarray, architecture: object = "p100",
              precision: object = "float32",
              block_threads: Optional[int] = None,
              batch_size: object = "auto",
              max_blocks: Optional[int] = None,
              keep_output: bool = False) -> KernelRunResult:
    """Inclusive prefix sum of a 1-D sequence using the SSAM scan kernel.

    ``max_blocks`` samples the grid for cost estimation: counters are
    scaled to the full grid and the host carry pass sees zero sums for the
    unexecuted blocks, so outputs are only exact for the leading block.
    Partial outputs are returned with ``keep_output=True``.
    """
    sequence = np.asarray(sequence)
    if sequence.ndim != 1 or sequence.size == 0:
        raise ConfigurationError("ssam_scan expects a non-empty 1-D sequence")
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if block_threads is None:
        block_threads = paper_default("block_threads")
    validate_block_threads(arch, block_threads)
    length = int(sequence.size)
    memory = GlobalMemory()
    src = memory.to_device(sequence.astype(prec.numpy_dtype), name="sequence")
    dst = memory.allocate((length,), prec, name="scanned")
    grid = grid_1d(length, block_threads)
    block_sums = memory.allocate((grid[0],), prec, name="block_sums")
    config = LaunchConfig(
        grid_dim=grid,
        block_threads=block_threads,
        registers_per_thread=SCAN_REGISTERS_PER_THREAD,
        shared_bytes_per_block=(block_threads // arch.warp_size) * prec.itemsize,
        precision=prec,
        memory_parallelism=SCAN_MEMORY_PARALLELISM,
    )
    launch = SCAN_SSAM_KERNEL.launch(config, args=(src, dst, block_sums, length),
                                     architecture=arch, max_blocks=max_blocks,
                                     batch_size=batch_size)
    output = None
    if max_blocks is None or keep_output:
        # host-side carry propagation across blocks (the "scan of block
        # sums" pass); skipped entirely when the output is discarded
        partial = dst.to_host()
        carries = np.cumsum(block_sums.to_host(), dtype=np.float64)
        result = partial.astype(np.float64)
        for block in range(1, grid[0]):
            start = block * block_threads
            stop = min(length, start + block_threads)
            result[start:stop] += carries[block - 1]
        output = result.astype(prec.numpy_dtype)
    return KernelRunResult(
        name="ssam",
        output=output,
        launch=launch,
        parameters={"length": length, "B": block_threads, "architecture": arch.name,
                    "precision": prec.name},
    )


def reference_scan(sequence: np.ndarray) -> np.ndarray:
    """Ground-truth inclusive scan."""
    return np.cumsum(np.asarray(sequence, dtype=np.float64)).astype(np.asarray(sequence).dtype)
