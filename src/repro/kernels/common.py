"""Shared helpers for the SSAM and baseline kernels.

Every kernel wrapper in :mod:`repro.kernels` and :mod:`repro.baselines`
returns a :class:`KernelRunResult` so experiments, examples and tests can
treat implementations interchangeably: the functional output, the launch
(counters + timing model) and the configuration that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..dtypes import Precision
from ..errors import ConfigurationError, SpecificationError
from ..gpu.block import BlockContext
from ..gpu.kernel import LaunchResult
from ..gpu.memory import DeviceBuffer, GlobalMemory


@dataclass
class KernelRunResult:
    """Output + cost of one kernel execution on the simulated GPU.

    Attributes
    ----------
    name:
        Implementation name (e.g. ``"ssam"``, ``"npp_like"``).
    output:
        The functional result, or ``None`` for analytic-only evaluations.
    launch:
        The launch record carrying counters and the timing estimate.
    parameters:
        Free-form configuration echo (filter size, P, B, ...).
    """

    name: str
    output: Optional[np.ndarray]
    launch: LaunchResult
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Estimated kernel execution time in seconds."""
        return self.launch.seconds

    @property
    def milliseconds(self) -> float:
        """Estimated kernel execution time in milliseconds."""
        return self.launch.milliseconds

    def gcells_per_second(self, cells: int, iterations: int = 1) -> float:
        """Throughput in giga-cells updated per second (the Figure 5 metric)."""
        if self.seconds <= 0:
            return float("inf")
        return cells * iterations / self.seconds / 1e9

    def gflops(self, flops_per_cell: float, cells: int, iterations: int = 1) -> float:
        """Throughput in GFLOP/s given a per-cell FLOP count."""
        if self.seconds <= 0:
            return float("inf")
        return flops_per_cell * cells * iterations / self.seconds / 1e9


def check_image(image: np.ndarray) -> np.ndarray:
    """Validate a 2-D input image."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise SpecificationError("expected a 2-D image")
    if image.size == 0:
        raise SpecificationError("image must be non-empty")
    return image


def check_grid3d(grid: np.ndarray) -> np.ndarray:
    """Validate a 3-D input grid."""
    grid = np.asarray(grid)
    if grid.ndim != 3:
        raise SpecificationError("expected a 3-D grid")
    if grid.size == 0:
        raise SpecificationError("grid must be non-empty")
    return grid


def load_weights_to_shared(ctx: BlockContext, weights: DeviceBuffer, count: int,
                           name: str = "weights"):
    """Stage ``count`` filter weights from global into shared memory.

    Mirrors lines 7-12 of Listing 1: the block's threads cooperatively copy
    the weights, then synchronise.
    """
    smem = ctx.alloc_shared(name, (count,))
    tid = ctx.thread_idx_x
    for base in range(0, count, ctx.block_threads):
        idx = base + tid
        mask = idx < count
        safe = np.minimum(idx, count - 1)
        values = ctx.load_global(weights, safe, mask=mask)
        ctx.store_shared(smem, safe, values, mask=mask)
    ctx.syncthreads()
    return smem


def broadcast_weight(ctx: BlockContext, smem, flat_index: int) -> np.ndarray:
    """Warp-uniform (broadcast) read of one staged weight.

    The scalar index broadcasts to one lane per thread on both the legacy
    and the batched execution engine.
    """
    return ctx.load_shared(smem, np.int64(flat_index))


def clamp(values: np.ndarray, lower: int, upper: int) -> np.ndarray:
    """Clamp indices to a closed range (replicate boundary handling)."""
    return np.clip(values, lower, upper)


def make_device_pair(image: np.ndarray, precision: Precision,
                     memory: Optional[GlobalMemory] = None):
    """Upload an input array and allocate a same-shaped output buffer."""
    memory = memory or GlobalMemory()
    src = memory.to_device(image.astype(precision.numpy_dtype, copy=True), name="src")
    dst = memory.allocate(image.shape, precision, name="dst")
    return memory, src, dst


def require_edge_boundary(boundary: str, implementation: str) -> None:
    """The device kernels implement replicate ('edge') boundaries only."""
    if boundary != "edge":
        raise ConfigurationError(
            f"{implementation} supports the 'edge' (replicate) boundary only; "
            f"got {boundary!r}. Use the spec's reference() for other modes."
        )
