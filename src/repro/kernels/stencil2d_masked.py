"""Masked (sparse-interior) SSAM 2-D stencil.

Many production stencil codes update only the interior of the domain and
hold a boundary band fixed (Dirichlet conditions, immersed boundaries,
sponge layers).  This kernel applies a 2-D stencil to cells strictly inside
an ``margin``-cell frame and passes every other cell through unchanged:

    dst[y, x] = stencil(src)[y, x]   if margin <= x < width  - margin
                                    and margin <= y < height - margin
    dst[y, x] = src[y, x]            otherwise

The compute schedule is exactly the register-cache schedule of Listing 2
(see :mod:`repro.kernels.stencil2d_ssam`); the interior predicate is pure
index arithmetic, so the selection vectorises in the batched engine and
records into the trace IR without data-dependent control flow.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.plan import SSAMPlan, plan_stencil
from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.block import BlockContext
from ..gpu.kernel import Kernel, LaunchResult
from ..gpu.memory import DeviceBuffer, GlobalMemory
from ..stencils.spec import StencilSpec
from .common import KernelRunResult, check_image, clamp
from .stencil2d_ssam import ColumnGroups, build_column_groups

#: default interior margin: wide enough that order-1/2 footprints never
#: straddle the frame, so the masked path is exercised on every named size
DEFAULT_MARGIN = 2


def _stencil2d_masked_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
                            width: int, height: int, columns: ColumnGroups,
                            footprint_width: int, footprint_height: int,
                            outputs_per_thread: int, x_min: int, y_min: int,
                            margin: int, block_rows: int = 1) -> None:
    """Listing 2 with an interior-select store (one thread block)."""
    m_extent = footprint_width
    p_extent = outputs_per_thread
    cache_rows = footprint_height + p_extent - 1
    warp_size = ctx.warp_size
    valid_x = warp_size - m_extent + 1
    x_max = x_min + m_extent - 1

    lane = ctx.lane_id
    warp = ctx.warp_id
    warps_per_block = ctx.num_warps

    if block_rows == 1:
        warps_x = warps_per_block
        warp_x = warp
        block_row = ctx.block_idx_y
    else:
        warps_x = warps_per_block // block_rows
        warp_x = warp % warps_x
        block_row = ctx.block_idx_y * block_rows + warp // warps_x
    warp_out_base = (ctx.block_idx_x * warps_x + warp_x) * valid_x
    column = clamp(warp_out_base + lane + x_min, 0, width - 1)
    row_base = block_row * p_extent + y_min

    register_cache = []
    for j in range(cache_rows):
        row = clamp(row_base + j, 0, height - 1)
        register_cache.append(ctx.load_global(src, row * width + column))

    out_x = warp_out_base + lane - (x_max - x_min)
    x_mask = (lane >= (m_extent - 1)) & (out_x < width) & (out_x >= 0)
    safe_x = clamp(out_x, 0, width - 1)
    x_interior = (out_x >= margin) & (out_x < width - margin)

    for i in range(p_extent):
        partial = ctx.zeros()
        previous_dx: Optional[int] = None
        for dx, rows in columns:
            if previous_dx is not None and dx != previous_dx:
                partial = ctx.shfl_up(partial, dx - previous_dx)
            previous_dx = dx
            for row_index, coefficient in rows:
                partial = ctx.mad(register_cache[i + row_index],
                                  ctx.full(coefficient), partial)
        trailing = x_max - (previous_dx if previous_dx is not None else x_max)
        if trailing:
            partial = ctx.shfl_up(partial, trailing)
        out_y = block_row * p_extent + i
        mask = x_mask & (out_y < height)
        safe_y = np.minimum(out_y, height - 1)
        # exterior cells pass the previous iterate through unchanged
        passthrough = ctx.load_global(src, safe_y * width + safe_x, mask=mask)
        interior = x_interior & (out_y >= margin) & (out_y < height - margin)
        value = np.where(interior, partial, passthrough)
        ctx.store_global(dst, safe_y * width + safe_x, value, mask=mask)


STENCIL2D_MASKED_KERNEL = Kernel(_stencil2d_masked_block,
                                 name="ssam_stencil2d_masked")


def ssam_stencil2d_masked(grid: np.ndarray, spec: StencilSpec,
                          iterations: int = 1, margin: int = DEFAULT_MARGIN,
                          architecture: object = "p100",
                          precision: object = "float32",
                          outputs_per_thread: Optional[int] = None,
                          block_threads: Optional[int] = None,
                          block_rows: Optional[int] = None,
                          plan: Optional[SSAMPlan] = None,
                          max_blocks: Optional[int] = None,
                          batch_size: object = "auto",
                          keep_output: bool = False) -> KernelRunResult:
    """Apply a masked 2-D stencil for ``iterations`` Jacobi steps."""
    grid = check_image(grid)
    if spec.dims != 2:
        raise ConfigurationError(f"stencil {spec.name!r} is not 2-D")
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    if margin < 0:
        raise ConfigurationError("the interior margin must be >= 0")
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if plan is None:
        plan = plan_stencil(spec, arch, prec, outputs_per_thread,
                            block_threads, block_rows)
    height, width = grid.shape
    memory = GlobalMemory()
    buffers = [
        memory.to_device(grid.astype(prec.numpy_dtype, copy=True), name="grid_a"),
        memory.allocate(grid.shape, prec, name="grid_b"),
    ]
    columns = build_column_groups(spec)
    x_min, _ = spec.x_range
    y_min, _ = spec.y_range
    config = plan.launch_config(width, height)
    merged: Optional[LaunchResult] = None
    for step in range(iterations):
        src, dst = buffers[step % 2], buffers[(step + 1) % 2]
        launch = STENCIL2D_MASKED_KERNEL.launch(
            config,
            args=(src, dst, width, height, columns, spec.footprint_width,
                  spec.footprint_height, plan.outputs_per_thread, x_min, y_min,
                  int(margin), plan.block_rows),
            architecture=arch,
            max_blocks=max_blocks,
            batch_size=batch_size,
        )
        merged = launch if merged is None else merged.merged_with(launch)
    final = buffers[iterations % 2]
    output = final.to_host() if (max_blocks is None or keep_output) else None
    return KernelRunResult(
        name="ssam_masked",
        output=output,
        launch=merged,
        parameters={
            "stencil": spec.name,
            "iterations": iterations,
            "margin": int(margin),
            "P": plan.outputs_per_thread,
            "B": plan.block_threads,
            "architecture": arch.name,
            "precision": prec.name,
        },
    )


def masked_reference(grid: np.ndarray, spec: StencilSpec, iterations: int = 1,
                     margin: int = DEFAULT_MARGIN) -> np.ndarray:
    """Host ground truth: stencil the interior, hold the frame fixed."""
    grid = check_image(grid)
    height, width = grid.shape
    interior = np.zeros((height, width), dtype=bool)
    if 2 * margin < min(height, width):
        interior[margin:height - margin, margin:width - margin] = True
    current = np.asarray(grid, dtype=np.float64)
    for _ in range(iterations):
        stepped = spec.reference(current, iterations=1)
        current = np.where(interior, stepped, current)
    return current.astype(grid.dtype)
