"""SSAM 3-D stencil kernel (Section 4.9).

The 3-D grid is divided into overlapped sub-grids; every warp of a block
processes one X-Y slice with the 2-D systolic scheme (register cache +
partial-sum shuffles), and the out-of-plane contributions are combined
through shared memory: each warp publishes the slice values its neighbours
need, so intra-warp communication uses shuffles and inter-warp communication
uses the scratchpad — exactly the hybrid the paper describes.

Out-of-plane taps that are not on the z axis (they appear only in the dense
box stencils ``3d27pt``/``3d125pt``) are read directly from global memory
with coalesced, clamped accesses; the axial taps — the common case, and all
of the Figure 6 benchmarks — use the shared-memory exchange.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.launch_defaults import paper_default
from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.block import BlockContext
from ..gpu.counters import KernelCounters
from ..gpu.kernel import Kernel, LaunchConfig, LaunchResult
from ..gpu.occupancy import validate_block_threads
from ..gpu.memory import DeviceBuffer, GlobalMemory
from ..gpu.register_file import registers_for_cache
from ..stencils.spec import StencilSpec
from .common import KernelRunResult, check_grid3d, clamp
from .stencil2d_ssam import ColumnGroups

#: default sliding-window depth for the 3-D kernel — the paper constant
#: from the central resolver (kept as a named alias for existing callers)
DEFAULT_OUTPUTS_PER_THREAD_3D = paper_default("outputs_per_thread")


def _build_inplane_columns(spec: StencilSpec) -> ColumnGroups:
    """Group the dz == 0 taps by x offset (same schedule as the 2-D kernel)."""
    y_lo, _ = spec.y_range
    groups: List[Tuple[int, Tuple[Tuple[int, float], ...]]] = []
    for dx, points in spec.columns().items():
        rows = tuple((p.dy - y_lo, float(p.coefficient)) for p in points)
        groups.append((dx, rows))
    return tuple(groups)


def split_out_of_plane(spec: StencilSpec):
    """Separate out-of-plane taps into axial (smem path) and general (global path)."""
    axial = []
    general = []
    for point in spec.out_of_plane_points():
        if point.dx == 0 and point.dy == 0:
            axial.append((point.dz, float(point.coefficient)))
        else:
            general.append((point.dx, point.dy, point.dz, float(point.coefficient)))
    return tuple(axial), tuple(general)


def _stencil3d_ssam_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
                          width: int, height: int, depth: int,
                          columns: ColumnGroups, axial, general,
                          footprint_width: int, footprint_height: int,
                          outputs_per_thread: int, x_min: int, x_max: int,
                          y_min: int) -> None:
    """One thread block: warps_per_block consecutive slices of the sub-grid."""
    m_extent = footprint_width
    p_extent = outputs_per_thread
    cache_rows = footprint_height + p_extent - 1
    warp_size = ctx.warp_size
    valid_x = warp_size - m_extent + 1

    lane = ctx.lane_id
    warp = ctx.warp_id
    warps_per_block = ctx.num_warps

    warp_out_base = ctx.block_idx_x * valid_x
    column = clamp(warp_out_base + lane + x_min, 0, width - 1)
    row_base = ctx.block_idx_y * p_extent + y_min
    slice_index = ctx.block_idx_z * warps_per_block + warp
    slice_clamped = np.minimum(slice_index, depth - 1)
    plane = height * width

    register_cache = []
    for j in range(cache_rows):
        row = clamp(row_base + j, 0, height - 1)
        register_cache.append(ctx.load_global(src, slice_clamped * plane + row * width + column))

    # publish the centre rows so neighbouring warps can read their z-neighbours
    center = ctx.alloc_shared("slice_center", (warps_per_block, p_extent, warp_size))
    for i in range(p_extent):
        flat = (warp * p_extent + i) * warp_size + lane
        ctx.store_shared(center, flat, register_cache[i - y_min])
    ctx.syncthreads()

    out_x = warp_out_base + lane - (x_max - x_min)
    x_mask = (lane >= (m_extent - 1)) & (out_x < width) & (out_x >= 0)
    safe_x = clamp(out_x, 0, width - 1)
    # lane that caches the column of this lane's output point (x_o):
    # column_s = base + s + x_min equals x_o = base + lane + x_min - x_max
    # exactly when s = lane - x_max.
    source_lane = clamp(lane - x_max, 0, warp_size - 1)

    for i in range(p_extent):
        # in-plane systolic accumulation (identical to the 2-D kernel)
        partial = ctx.zeros()
        previous_dx: Optional[int] = None
        for dx, rows in columns:
            if previous_dx is not None and dx != previous_dx:
                partial = ctx.shfl_up(partial, dx - previous_dx)
            previous_dx = dx
            for row_index, coefficient in rows:
                partial = ctx.mad(register_cache[i + row_index],
                                  ctx.full(coefficient), partial)

        out_y = ctx.block_idx_y * p_extent + i
        safe_y = np.minimum(out_y, height - 1)

        # axial out-of-plane taps: shared memory when the neighbour slice is
        # resident in this block, coalesced global loads otherwise
        for dz, coefficient in axial:
            neighbor_warp = warp + dz
            neighbor_slice = slice_index + dz
            in_block = (neighbor_warp >= 0) & (neighbor_warp < warps_per_block) \
                & (neighbor_slice >= 0) & (neighbor_slice < depth)
            flat = (clamp(neighbor_warp, 0, warps_per_block - 1) * p_extent + i) * warp_size \
                + source_lane
            from_shared = ctx.load_shared(center, flat)
            z_src = clamp(neighbor_slice, 0, depth - 1)
            from_global = ctx.load_global(src, z_src * plane + safe_y * width + safe_x)
            neighbor_value = np.where(in_block, from_shared, from_global)
            partial = ctx.mad(neighbor_value, ctx.full(coefficient), partial)

        # general out-of-plane taps (box stencils): direct clamped global reads
        for dx, dy, dz, coefficient in general:
            z_src = clamp(slice_index + dz, 0, depth - 1)
            y_src = clamp(out_y + dy, 0, height - 1)
            x_src = clamp(out_x + dx, 0, width - 1)
            value = ctx.load_global(src, z_src * plane + y_src * width + x_src)
            partial = ctx.mad(value, ctx.full(coefficient), partial)

        mask = x_mask & (out_y < height) & (slice_index < depth)
        ctx.store_global(dst, slice_clamped * plane + safe_y * width + safe_x,
                         partial, mask=mask)


STENCIL3D_SSAM_KERNEL = Kernel(_stencil3d_ssam_block, name="ssam_stencil3d")


def _grid_for(spec: StencilSpec, width: int, height: int, depth: int,
              outputs_per_thread: int, warps_per_block: int,
              warp_size: int = 32) -> Tuple[int, int, int]:
    valid_x = warp_size - spec.footprint_width + 1
    return (
        math.ceil(width / valid_x),
        math.ceil(height / outputs_per_thread),
        math.ceil(depth / warps_per_block),
    )


def ssam_stencil3d(grid: np.ndarray, spec: StencilSpec, iterations: int = 1,
                   architecture: object = "p100", precision: object = "float32",
                   outputs_per_thread: Optional[int] = None,
                   block_threads: Optional[int] = None,
                   max_blocks: Optional[int] = None,
                   batch_size: object = "auto",
                   keep_output: bool = False) -> KernelRunResult:
    """Apply a 3-D stencil for ``iterations`` Jacobi steps with the SSAM kernel.

    ``keep_output=True`` returns the (partial) output even for sampled
    runs; with ``iterations=1`` the executed blocks' outputs match a full
    run exactly.
    """
    grid = check_grid3d(grid)
    if spec.dims != 3:
        raise ConfigurationError(f"stencil {spec.name!r} is not 3-D")
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if outputs_per_thread is None:
        outputs_per_thread = DEFAULT_OUTPUTS_PER_THREAD_3D
    if block_threads is None:
        block_threads = paper_default("block_threads")
    validate_block_threads(arch, block_threads)
    depth, height, width = grid.shape
    warps_per_block = block_threads // arch.warp_size
    columns = _build_inplane_columns(spec)
    axial, general = split_out_of_plane(spec)
    x_min, x_max = spec.x_range
    y_min, _ = spec.y_range
    cache_rows = spec.footprint_height + outputs_per_thread - 1
    config = LaunchConfig(
        grid_dim=_grid_for(spec, width, height, depth, outputs_per_thread,
                           warps_per_block, arch.warp_size),
        block_threads=block_threads,
        registers_per_thread=registers_for_cache(cache_rows, outputs_per_thread, prec) + 8,
        shared_bytes_per_block=warps_per_block * outputs_per_thread * arch.warp_size
        * prec.itemsize,
        precision=prec,
        memory_parallelism=float(cache_rows),
    )
    memory = GlobalMemory()
    buffers = [
        memory.to_device(grid.astype(prec.numpy_dtype, copy=True), name="grid_a"),
        memory.allocate(grid.shape, prec, name="grid_b"),
    ]
    merged: Optional[LaunchResult] = None
    for step in range(iterations):
        src, dst = buffers[step % 2], buffers[(step + 1) % 2]
        launch = STENCIL3D_SSAM_KERNEL.launch(
            config,
            args=(src, dst, width, height, depth, columns, axial, general,
                  spec.footprint_width, spec.footprint_height, outputs_per_thread,
                  x_min, x_max, y_min),
            architecture=arch,
            max_blocks=max_blocks,
            batch_size=batch_size,
        )
        merged = launch if merged is None else merged.merged_with(launch)
    final = buffers[iterations % 2]
    output = final.to_host() if (max_blocks is None or keep_output) else None
    return KernelRunResult(
        name="ssam",
        output=output,
        launch=merged,
        parameters={"stencil": spec.name, "iterations": iterations,
                    "P": outputs_per_thread, "B": block_threads,
                    "architecture": arch.name, "precision": prec.name},
    )


def analytic_counters(spec: StencilSpec, width: int, height: int, depth: int,
                      architecture: object = "p100", precision: object = "float32",
                      outputs_per_thread: Optional[int] = None,
                      block_threads: Optional[int] = None,
                      iterations: int = 1) -> KernelCounters:
    """Closed-form instruction/traffic profile of the SSAM 3-D stencil."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if outputs_per_thread is None:
        outputs_per_thread = DEFAULT_OUTPUTS_PER_THREAD_3D
    if block_threads is None:
        block_threads = paper_default("block_threads")
    warps_per_block = block_threads // arch.warp_size
    p_extent = outputs_per_thread
    cache_rows = spec.footprint_height + p_extent - 1
    grid = _grid_for(spec, width, height, depth, p_extent, warps_per_block, arch.warp_size)
    blocks = grid[0] * grid[1] * grid[2]
    total_warps = blocks * warps_per_block
    columns = spec.columns()
    in_plane_taps = sum(len(points) for points in columns.values())
    axial, general = split_out_of_plane(spec)
    r_z = max((abs(p.dz) for p in spec.points), default=0)

    counters = KernelCounters()
    counters.blocks_executed = blocks * iterations
    counters.warps_executed = total_warps * iterations
    sectors_per_row = math.ceil(32 * prec.itemsize / 128)

    counters.gmem_load += cache_rows * total_warps * iterations
    counters.gmem_load_transactions += cache_rows * total_warps * sectors_per_row * iterations
    counters.smem_store += p_extent * total_warps * iterations
    counters.sync += warps_per_block * blocks * iterations
    counters.fma += p_extent * (in_plane_taps + len(axial) + len(general)) * total_warps * iterations
    counters.shfl += p_extent * max(0, len(columns) - 1) * total_warps * iterations
    counters.smem_load += p_extent * len(axial) * total_warps * iterations
    counters.gmem_load += p_extent * (len(axial) + len(general)) * total_warps * iterations
    counters.gmem_load_transactions += (
        p_extent * (len(axial) + len(general)) * total_warps * sectors_per_row * iterations
    )
    counters.gmem_store += p_extent * total_warps * iterations
    counters.gmem_store_transactions += p_extent * total_warps * sectors_per_row * iterations

    slab = (warps_per_block + 2 * r_z) * cache_rows * 32 * prec.itemsize
    counters.dram_read_bytes += slab * blocks * iterations
    counters.dram_write_bytes += width * height * depth * prec.itemsize * iterations
    return counters


def analytic_launch(spec: StencilSpec, width: int, height: int, depth: int,
                    iterations: int = 1, architecture: object = "p100",
                    precision: object = "float32",
                    outputs_per_thread: Optional[int] = None,
                    block_threads: Optional[int] = None) -> KernelRunResult:
    """Paper-scale cost estimate of the SSAM 3-D stencil without execution."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if outputs_per_thread is None:
        outputs_per_thread = DEFAULT_OUTPUTS_PER_THREAD_3D
    if block_threads is None:
        block_threads = paper_default("block_threads")
    validate_block_threads(arch, block_threads)
    warps_per_block = block_threads // arch.warp_size
    cache_rows = spec.footprint_height + outputs_per_thread - 1
    counters = analytic_counters(spec, width, height, depth, arch, prec,
                                 outputs_per_thread, block_threads, iterations)
    config = LaunchConfig(
        grid_dim=_grid_for(spec, width, height, depth, outputs_per_thread,
                           warps_per_block, arch.warp_size),
        block_threads=block_threads,
        registers_per_thread=registers_for_cache(cache_rows, outputs_per_thread, prec) + 8,
        shared_bytes_per_block=warps_per_block * outputs_per_thread * arch.warp_size
        * prec.itemsize,
        precision=prec,
        memory_parallelism=float(cache_rows),
    )
    launch = LaunchResult(
        kernel_name="ssam_stencil3d_analytic",
        config=config,
        architecture=arch,
        counters=counters,
        blocks_executed=0,
        sampled=True,
        sample_fraction=0.0,
    )
    return KernelRunResult(
        name="ssam",
        output=None,
        launch=launch,
        parameters={"stencil": spec.name, "width": width, "height": height,
                    "depth": depth, "iterations": iterations,
                    "architecture": arch.name, "precision": prec.name, "analytic": True},
    )
