"""SSAM kernels: the paper's contribution, executable on the GPU substrate."""

from .common import KernelRunResult

__all__ = ["KernelRunResult"]
