"""SSAM kernels: the paper's contribution, executable on the GPU substrate.

The five kernel entry points are re-exported here so consumers — the
scenario registry first among them — can import every runner from one
place instead of reaching into the per-kernel modules.
"""

from .common import KernelRunResult
from .conv1d_ssam import reference_convolve1d, ssam_convolve1d
from .conv2d_ssam import ssam_convolve2d, ssam_convolve2d_chain
from .scan_ssam import reference_scan, ssam_scan
from .stencil2d_masked import masked_reference, ssam_stencil2d_masked
from .stencil2d_ssam import ssam_stencil2d
from .stencil3d_ssam import ssam_stencil3d

#: the SSAM kernel entry points, keyed by scenario name
RUN_ENTRY_POINTS = {
    "conv1d": ssam_convolve1d,
    "conv2d": ssam_convolve2d,
    "conv2d-pipeline": ssam_convolve2d_chain,
    "stencil2d": ssam_stencil2d,
    "stencil2d-masked": ssam_stencil2d_masked,
    "stencil3d": ssam_stencil3d,
    "scan": ssam_scan,
}

__all__ = [
    "KernelRunResult",
    "RUN_ENTRY_POINTS",
    "masked_reference",
    "reference_convolve1d",
    "reference_scan",
    "ssam_convolve1d",
    "ssam_convolve2d",
    "ssam_convolve2d_chain",
    "ssam_scan",
    "ssam_stencil2d",
    "ssam_stencil2d_masked",
    "ssam_stencil3d",
]
