"""SSAM 2-D convolution — the executable form of Listing 1.

One warp caches a ``32 x C`` register matrix (C = N + P - 1 rows of the
image, one column per lane), stages the ``M x N`` filter in shared memory,
and then for each of the P sliding-window positions accumulates the M
column inner products while shifting the partial sums one lane up between
columns with ``shfl_up`` (Figure 2).  The overlapped blocking scheme of
Section 4.5 gives every warp its own tile, so there is no intra-block
communication and no divergent branch in the main loop.

Two evaluation paths are provided:

* :func:`ssam_convolve2d` — functional execution on the simulated GPU
  (produces the output image and counted costs);
* :func:`analytic_launch` — closed-form instruction/traffic profile for
  paper-scale domains (8192^2), cross-checked against the counted execution
  in the test suite.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..convolution.spec import ConvolutionSpec
from ..core.plan import SSAMPlan, plan_convolution
from ..dtypes import resolve_precision
from ..errors import ConfigurationError
from ..gpu.architecture import get_architecture
from ..gpu.block import BlockContext
from ..gpu.counters import KernelCounters
from ..gpu.kernel import Kernel, LaunchResult
from ..gpu.memory import DeviceBuffer, GlobalMemory
from .common import (
    KernelRunResult,
    broadcast_weight,
    check_image,
    clamp,
    load_weights_to_shared,
    make_device_pair,
    require_edge_boundary,
)


def _conv2d_ssam_block(ctx: BlockContext, src: DeviceBuffer, dst: DeviceBuffer,
                       weights: DeviceBuffer, width: int, height: int,
                       filter_width: int, filter_height: int,
                       outputs_per_thread: int, anchor_x: int, anchor_y: int,
                       block_rows: int = 1) -> None:
    """Listing 1, executed for one thread block (or a whole batch of blocks).

    Written against the broadcast contract shared by
    :class:`~repro.gpu.block.BlockContext` and
    :class:`~repro.gpu.batch.BatchedBlockContext`: block indices are scalars
    on the legacy path and ``(num_blocks, 1)`` columns on the batched path,
    so every index expression broadcasts to the context's register shape.

    ``block_rows`` (R) selects the block shape: R=1 lays every warp along x
    (the paper's scheme, kept branch-for-branch identical here); R>1 splits
    the block's warps into R bands covering consecutive P-row strips.  The
    band arithmetic is pure integer math on the warp id, so it vectorises
    in the batched engine and records into the trace IR unchanged.
    """
    m_extent, n_extent, p_extent = filter_width, filter_height, outputs_per_thread
    cache_rows = n_extent + p_extent - 1
    warp_size = ctx.warp_size
    valid_x = warp_size - m_extent + 1

    # (i) stage the filter weights in shared memory (Listing 1, lines 7-12)
    smem = load_weights_to_shared(ctx, weights, m_extent * n_extent)

    lane = ctx.lane_id
    warp = ctx.warp_id
    warps_per_block = ctx.num_warps

    # column cached by each thread and the rows of this block's tile
    if block_rows == 1:
        warps_x = warps_per_block
        warp_x = warp
        block_row = ctx.block_idx_y
    else:
        warps_x = warps_per_block // block_rows
        warp_x = warp % warps_x
        block_row = ctx.block_idx_y * block_rows + warp // warps_x
    warp_out_base = (ctx.block_idx_x * warps_x + warp_x) * valid_x
    column = warp_out_base + lane - anchor_x
    column = clamp(column, 0, width - 1)
    row_base = block_row * p_extent - anchor_y

    # (ii) fill the register cache, one coalesced row at a time (lines 13-14)
    register_cache = []
    for j in range(cache_rows):
        row = clamp(row_base + j, 0, height - 1)
        register_cache.append(ctx.load_global(src, row * width + column))

    # (iii)-(v) sliding window over P output rows (lines 16-29)
    out_x = warp_out_base + lane - (m_extent - 1)
    x_mask = (lane >= (m_extent - 1)) & (out_x < width) & (out_x >= 0)
    safe_x = clamp(out_x, 0, width - 1)
    for i in range(p_extent):
        partial = ctx.zeros()
        for m in range(m_extent):
            if m > 0:
                partial = ctx.shfl_up(partial, 1)
            for n in range(n_extent):
                weight = broadcast_weight(ctx, smem, n * m_extent + m)
                partial = ctx.mad(register_cache[i + n], weight, partial)
        # (vi) write the valid results back to global memory (lines 30-31)
        out_y = block_row * p_extent + i
        mask = x_mask & (out_y < height)
        safe_y = np.minimum(out_y, height - 1)
        ctx.store_global(dst, safe_y * width + safe_x, partial, mask=mask)


#: the reusable kernel object wrapping the block function above
CONV2D_SSAM_KERNEL = Kernel(_conv2d_ssam_block, name="ssam_conv2d")


def ssam_convolve2d(image: np.ndarray, spec: ConvolutionSpec,
                    architecture: object = "p100", precision: object = "float32",
                    outputs_per_thread: Optional[int] = None,
                    block_threads: Optional[int] = None,
                    block_rows: Optional[int] = None,
                    plan: Optional[SSAMPlan] = None,
                    max_blocks: Optional[int] = None,
                    batch_size: object = "auto",
                    keep_output: bool = False) -> KernelRunResult:
    """Convolve ``image`` with ``spec`` using the SSAM kernel.

    Launch parameters left as ``None`` resolve through the default chain of
    :mod:`repro.core.launch_defaults` (paper constants P=4, B=128 for a
    direct call like this one).  Pass ``max_blocks`` to sample the grid when
    only cost estimates are needed, and ``batch_size=1`` to force the legacy
    per-block engine.  ``keep_output=True`` returns the (partial) output
    buffer even for sampled runs — the executed blocks' results are exactly
    those of a full run; unexecuted blocks leave zeros.
    """
    image = check_image(image)
    require_edge_boundary(spec.boundary, "the SSAM convolution kernel")
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    if plan is None:
        plan = plan_convolution(spec, arch, prec, outputs_per_thread,
                                block_threads, block_rows)
    height, width = image.shape
    memory, src, dst = make_device_pair(image, prec)
    weights = memory.to_device(spec.weights.astype(prec.numpy_dtype), name="weights",
                               cached=True)
    config = plan.launch_config(width, height)
    anchor_x, anchor_y = spec.anchor
    launch = CONV2D_SSAM_KERNEL.launch(
        config,
        args=(src, dst, weights, width, height, spec.filter_width, spec.filter_height,
              plan.outputs_per_thread, anchor_x, anchor_y, plan.block_rows),
        architecture=arch,
        max_blocks=max_blocks,
        batch_size=batch_size,
    )
    output = dst.to_host() if (max_blocks is None or keep_output) else None
    return KernelRunResult(
        name="ssam",
        output=output,
        launch=launch,
        parameters={
            "M": spec.filter_width,
            "N": spec.filter_height,
            "P": plan.outputs_per_thread,
            "B": plan.block_threads,
            "C": plan.register_cache.cache_values,
            "architecture": arch.name,
            "precision": prec.name,
        },
    )


def ssam_convolve2d_chain(image: np.ndarray, spec: ConvolutionSpec,
                          passes: int = 2,
                          architecture: object = "p100",
                          precision: object = "float32",
                          outputs_per_thread: Optional[int] = None,
                          block_threads: Optional[int] = None,
                          block_rows: Optional[int] = None,
                          fused: bool = False,
                          lead_blocks: Optional[int] = None,
                          batch_size: object = "auto") -> KernelRunResult:
    """Apply ``spec`` ``passes`` times (e.g. a two-pass Gaussian blur).

    ``fused=False`` runs the chain the conventional way: one launch per
    pass, the intermediate image round-tripping through DRAM between them.
    ``fused=True`` runs every pass as one fused launch
    (:func:`repro.trace.fusion.fused_launch`): producer blocks stay a
    halo's worth of rows ahead of consumer blocks, the intermediates are
    held on chip, and their DRAM writes and re-reads disappear from the
    traffic counters.  Outputs are bit-identical either way.
    """
    if passes < 2:
        raise ConfigurationError("a convolution chain needs at least 2 passes")
    image = check_image(image)
    require_edge_boundary(spec.boundary, "the SSAM convolution kernel")
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    plan = plan_convolution(spec, arch, prec, outputs_per_thread,
                            block_threads, block_rows)
    height, width = image.shape
    config = plan.launch_config(width, height)
    anchor_x, anchor_y = spec.anchor

    memory = GlobalMemory()
    src = memory.to_device(image.astype(prec.numpy_dtype, copy=True),
                           name="src")
    weights = memory.to_device(spec.weights.astype(prec.numpy_dtype),
                               name="weights", cached=True)
    # intermediates of the fused pipeline never leave the cache hierarchy
    bufs = [src]
    for i in range(passes - 1):
        bufs.append(memory.to_device(
            np.zeros((height, width), dtype=prec.numpy_dtype),
            name=f"tmp{i}", cached=fused))
    bufs.append(memory.allocate((height, width), prec, name="dst"))

    def stage_args(i: int):
        return (bufs[i], bufs[i + 1], weights, width, height,
                spec.filter_width, spec.filter_height,
                plan.outputs_per_thread, anchor_x, anchor_y, plan.block_rows)

    if fused:
        from ..trace.fusion import FusedStage, fused_launch

        if lead_blocks is None:
            # a consumer block needs the producer rows covering its
            # bottom halo: ceil((N-1)/(R*P)) block-rows ahead, plus one
            # more block-row so the column halo is covered as well
            grid_x = config.grid_dim[0]
            halo_rows = math.ceil(
                max(0, spec.filter_height - 1)
                / (plan.outputs_per_thread * plan.block_rows))
            lead_blocks = (halo_rows + 1) * grid_x
        launch = fused_launch(
            [FusedStage(CONV2D_SSAM_KERNEL, config, stage_args(i))
             for i in range(passes)],
            architecture=arch, lead_blocks=lead_blocks)
    else:
        launch = CONV2D_SSAM_KERNEL.launch(config, stage_args(0),
                                           architecture=arch,
                                           batch_size=batch_size)
        for i in range(1, passes):
            launch = launch.merged_with(
                CONV2D_SSAM_KERNEL.launch(config, stage_args(i),
                                          architecture=arch,
                                          batch_size=batch_size))
    return KernelRunResult(
        name="ssam_chain_fused" if fused else "ssam_chain",
        output=bufs[-1].to_host(),
        launch=launch,
        parameters={
            "M": spec.filter_width,
            "N": spec.filter_height,
            "P": plan.outputs_per_thread,
            "B": plan.block_threads,
            "passes": passes,
            "fused": fused,
            "architecture": arch.name,
            "precision": prec.name,
        },
    )


def analytic_counters(spec: ConvolutionSpec, width: int, height: int,
                      plan: SSAMPlan) -> KernelCounters:
    """Closed-form warp-instruction / traffic profile of the SSAM kernel.

    The profile mirrors :func:`_conv2d_ssam_block` instruction by
    instruction; ``tests/test_kernels/test_analytic_profiles.py`` checks it
    against the counted execution on small domains.
    """
    blocking = plan.blocking
    prec = plan.precision
    m_extent, n_extent = spec.filter_width, spec.filter_height
    p_extent = plan.outputs_per_thread
    cache_rows = blocking.cache_values
    grid_x, grid_y, _ = blocking.grid_dim(width, height)
    blocks = grid_x * grid_y
    warps_per_block = blocking.warps_per_block
    total_warps = blocks * warps_per_block

    counters = KernelCounters()
    counters.blocks_executed = blocks
    counters.warps_executed = total_warps

    # weight staging: each participating warp issues one load + one store
    # per 32 staged weights, then the block synchronises once
    staging_warp_ops = math.ceil(m_extent * n_extent / 32)
    counters.gmem_load += staging_warp_ops * blocks
    counters.smem_store += staging_warp_ops * blocks
    counters.sync += warps_per_block * blocks

    # register-cache fill: C coalesced row loads per warp
    counters.gmem_load += cache_rows * total_warps
    sectors_per_row = math.ceil(32 * prec.itemsize / 128)
    counters.gmem_load_transactions += (cache_rows * total_warps) * sectors_per_row
    counters.gmem_load_transactions += staging_warp_ops * blocks

    # main loop: P x M x N FMAs + broadcast weight reads, P x (M-1) shuffles
    inner = p_extent * m_extent * n_extent
    counters.fma += inner * total_warps
    counters.smem_broadcast += inner * total_warps
    counters.shfl += p_extent * (m_extent - 1) * total_warps

    # stores: P per warp (partial warps near the right edge still issue)
    counters.gmem_store += p_extent * total_warps
    counters.gmem_store_transactions += p_extent * total_warps * sectors_per_row

    # DRAM traffic: tile + halo per block (perfect intra-block reuse);
    # with R>1 the block's bands tile R*P rows, overlapping by N-1, so the
    # unique footprint is (R*P + N - 1) rows by (WarpsX*ValidX + M - 1)
    # columns — degenerating to cache_rows x (WarpCount*ValidX + M - 1)
    # at the paper's R=1
    unique_columns = blocking.warps_x * blocking.valid_outputs_x + (m_extent - 1)
    unique_rows = blocking.rows_per_block + n_extent - 1
    read_bytes_per_block = unique_rows * unique_columns * prec.itemsize
    counters.dram_read_bytes += read_bytes_per_block * blocks
    counters.dram_write_bytes += width * height * prec.itemsize
    counters.cache_read_bytes += (cache_rows * 32 * total_warps) * prec.itemsize
    counters.smem_read_bytes += inner * total_warps * 32 * prec.itemsize
    counters.smem_write_bytes += m_extent * n_extent * blocks * prec.itemsize
    return counters


def analytic_launch(spec: ConvolutionSpec, width: int, height: int,
                    architecture: object = "p100", precision: object = "float32",
                    outputs_per_thread: Optional[int] = None,
                    block_threads: Optional[int] = None,
                    block_rows: Optional[int] = None) -> KernelRunResult:
    """Paper-scale cost estimate of the SSAM convolution without execution."""
    arch = get_architecture(architecture)
    prec = resolve_precision(precision)
    plan = plan_convolution(spec, arch, prec, outputs_per_thread,
                            block_threads, block_rows)
    counters = analytic_counters(spec, width, height, plan)
    config = plan.launch_config(width, height)
    launch = LaunchResult(
        kernel_name="ssam_conv2d_analytic",
        config=config,
        architecture=arch,
        counters=counters,
        blocks_executed=0,
        sampled=True,
        sample_fraction=0.0,
    )
    return KernelRunResult(
        name="ssam",
        output=None,
        launch=launch,
        parameters={
            "M": spec.filter_width,
            "N": spec.filter_height,
            "P": plan.outputs_per_thread,
            "B": plan.block_threads,
            "width": width,
            "height": height,
            "architecture": arch.name,
            "precision": prec.name,
            "analytic": True,
        },
    )
