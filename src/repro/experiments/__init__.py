"""Experiment harnesses that regenerate every table and figure of the paper."""

from . import figure4, figure5, figure6, model_validation, table1, table2, table3
from .runner import run_experiment

__all__ = [
    "figure4",
    "figure5",
    "figure6",
    "model_validation",
    "table1",
    "table2",
    "table3",
    "run_experiment",
]
