"""Experiment pipeline regenerating every table and figure of the paper.

Layered as data → execution → presentation:

* :mod:`~repro.experiments.results` — typed results (``Measurement``,
  ``ExperimentResult``) with lossless JSON artifacts;
* :mod:`~repro.experiments.jobs` / :mod:`~repro.experiments.parallel` —
  independent simulation jobs executed inline or across a process pool;
* :mod:`~repro.experiments.cache` — persistent on-disk memoisation of
  simulation payloads keyed by spec/config fingerprints + code version;
* the per-experiment modules (``table1`` ... ``model_validation``) each
  provide ``jobs``/``assemble``/``render`` plus their legacy ``run``/
  ``report`` surface;
* :mod:`~repro.experiments.runner` — the ``ssam-repro`` CLI.
"""

from . import (
    cache,
    figure4,
    figure5,
    figure6,
    jobs,
    model_validation,
    parallel,
    results,
    runner,
    table1,
    table2,
    table3,
)
from .cache import SimulationCache
from .results import ExperimentResult, Measurement, load_result
from .runner import run_experiment, run_experiment_results

__all__ = [
    "cache",
    "figure4",
    "figure5",
    "figure6",
    "jobs",
    "model_validation",
    "parallel",
    "results",
    "runner",
    "table1",
    "table2",
    "table3",
    "SimulationCache",
    "ExperimentResult",
    "Measurement",
    "load_result",
    "run_experiment",
    "run_experiment_results",
]
