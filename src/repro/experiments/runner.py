"""Command-line entry point that regenerates every table and figure.

Installed as the ``ssam-repro`` console script::

    ssam-repro --experiment table1
    ssam-repro --experiment figure4
    ssam-repro --experiment all --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from . import figure4, figure5, figure6, model_validation, table1, table2, table3

#: benchmark subset used by --quick runs
QUICK_FIGURE5 = ("2d5pt", "2d9pt", "2d25pt", "3d7pt", "poisson")
QUICK_FILTER_SIZES = (3, 5, 9, 13, 17, 20)


def _figure4_report(quick: bool) -> str:
    return figure4.report(QUICK_FILTER_SIZES if quick else figure4.FILTER_SIZES)


def _figure5_report(quick: bool) -> str:
    return figure5.report(QUICK_FIGURE5 if quick else figure5.FIGURE5_BENCHMARKS)


def _figure6_report(quick: bool) -> str:
    return figure6.report()


EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "table1": lambda quick: table1.report(),
    "table2": lambda quick: table2.report(),
    "table3": lambda quick: table3.report(),
    "figure4": _figure4_report,
    "figure5": _figure5_report,
    "figure6": _figure6_report,
    "model": lambda quick: model_validation.report(),
}


def run_experiment(name: str, quick: bool = False) -> str:
    """Run one named experiment and return its formatted report."""
    if name == "all":
        return "\n\n".join(EXPERIMENTS[key](quick) for key in EXPERIMENTS)
    if name not in EXPERIMENTS:
        raise SystemExit(f"unknown experiment {name!r}; choose from "
                         f"{sorted(EXPERIMENTS) + ['all']}")
    return EXPERIMENTS[name](quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the SSAM paper's tables and figures on the simulated GPUs")
    parser.add_argument("--experiment", "-e", default="all",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced sweeps for a fast smoke run")
    args = parser.parse_args(argv)
    print(run_experiment(args.experiment, quick=args.quick))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
