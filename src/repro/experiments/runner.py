"""Command-line entry point that regenerates every table and figure.

Installed as the ``ssam-repro`` console script::

    ssam-repro --experiment table1
    ssam-repro --experiment figure4
    ssam-repro --experiment all --quick --jobs 4 --output-dir results
    ssam-repro --experiment sweep --matrix paper   # Section 5 model engine,
                                                   # paper scale, closed form
    ssam-repro --experiment model                  # claims + cross-engine
                                                   # validation error bounds
    ssam-repro --experiment tune                   # Section 7.1 launch-config
                                                   # design-space autotuner

The runner is a thin orchestrator over the structured experiment pipeline:
each experiment contributes independent simulation jobs
(:mod:`repro.experiments.jobs`), the executor shards them across worker
processes and memoises their payloads in the persistent simulation cache
(:mod:`repro.experiments.parallel`, :mod:`repro.experiments.cache`), and
the typed results (:mod:`repro.experiments.results`) are rendered to the
paper's text tables — and optionally saved as JSON artifacts — in a fixed
deterministic order, so the report text is byte-identical for any worker
count or cache state.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from . import figure4, figure5, figure6, model_validation, table1, table2, table3
from .cache import SimulationCache, default_cache_dir
from .parallel import execute_jobs, resolve_workers
from .results import ExperimentResult

#: experiment registry, in report order; every module implements the same
#: pipeline surface (jobs / assemble / render)
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "model": model_validation,
}


def _select(name: str) -> List[str]:
    if name == "all":
        return list(EXPERIMENTS)
    if name not in EXPERIMENTS:
        raise SystemExit(f"unknown experiment {name!r}; choose from "
                         f"{sorted(EXPERIMENTS) + ['all', 'analyze', 'sweep', 'tune']}")
    return [name]


def _sweep_module():
    """The registry-driven sweep engine (imported lazily: it loads every
    kernel and baseline to populate the scenario registry)."""
    from ..scenarios import sweep

    return sweep


def _tuning_module():
    """The launch-configuration autotuner (lazy, like the sweep engine)."""
    from .. import tuning

    return tuning


def _analyze_module():
    """The static kernel verifier (lazy: it populates the registry)."""
    from ..analysis import scenario as analyze

    return analyze


def render_result(name: str, result: ExperimentResult) -> str:
    """Render one experiment result by name (including ``"sweep"``/``"tune"``)."""
    if name == "sweep":
        return _sweep_module().render(result)
    if name == "tune":
        return _tuning_module().render(result)
    if name == "analyze":
        return _analyze_module().render(result)
    return EXPERIMENTS[name].render(result)


def run_experiment_results(name: str = "all", quick: bool = False,
                           jobs: int = 1,
                           cache: Optional[SimulationCache] = None,
                           matrix: Optional[str] = None,
                           tune_stage: str = "full",
                           confirm_engine: str = "batched",
                           search: str = "exhaustive",
                           ) -> Dict[str, ExperimentResult]:
    """Run one or all experiments through the pipeline.

    All selected experiments' jobs are pooled into a single executor pass
    (shared simulations between experiments run once), then each experiment
    assembles its typed result from the keyed payloads.  ``name="sweep"``
    runs the scenario-registry sweep engine instead; ``matrix`` names a
    preset or a JSON matrix file (default ``"smoke"`` under ``--quick``,
    ``"default"`` otherwise).  ``name="tune"`` runs the launch-configuration
    autotuner; ``tune_stage="model"`` stops after the closed-form explore
    stage (the CI smoke path), ``confirm_engine`` picks the simulator the
    confirmation stage runs on (``"batched"`` or ``"replay"``), and
    ``search`` selects the explore strategy (``"exhaustive"`` or the
    budgeted ``"guided"`` local search).
    """
    if name == "sweep":
        sweep = _sweep_module()
        resolved = sweep.load_matrix(
            matrix if matrix is not None else ("smoke" if quick else "default"))
        payloads = execute_jobs(sweep.jobs(resolved), workers=jobs, cache=cache)
        return {"sweep": sweep.assemble(payloads, resolved, quick=quick)}
    if name == "tune":
        tuning = _tuning_module()
        return {"tune": tuning.run_tuning(quick=quick, workers=jobs,
                                          cache=cache,
                                          confirm=tune_stage != "model",
                                          confirm_engine=confirm_engine,
                                          search=search)}
    if name == "analyze":
        analyze = _analyze_module()
        return {"analyze": analyze.run_analyze(quick=quick, workers=jobs,
                                               cache=cache)}
    names = _select(name)
    pending = []
    for key in names:
        pending.extend(EXPERIMENTS[key].jobs(quick))
    payloads = execute_jobs(pending, workers=jobs, cache=cache)
    return {key: EXPERIMENTS[key].assemble(payloads, quick) for key in names}


def run_experiment(name: str, quick: bool = False, jobs: int = 1,
                   cache: Optional[SimulationCache] = None,
                   matrix: Optional[str] = None) -> str:
    """Run one named experiment (or ``"all"``/``"sweep"``); returns the report."""
    results = run_experiment_results(name, quick=quick, jobs=jobs, cache=cache,
                                     matrix=matrix)
    return "\n\n".join(render_result(key, result)
                       for key, result in results.items())


def save_artifacts(results: Dict[str, ExperimentResult],
                   output_dir: str) -> List[str]:
    """Write one JSON artifact per experiment result; returns the paths."""
    return [results[key].save(os.path.join(output_dir, f"{key}.json"))
            for key in results]


def submit_main(argv: Optional[Sequence[str]] = None) -> int:
    """``ssam-repro submit``: client side of the sweep service.

    Submits a sweep (or tune/refresh) to a daemon started with
    ``ssam-repro --experiment serve``, discovered through the
    ``daemon.json`` endpoint file in the shared cache directory (or an
    explicit ``--url``).  ``--wait`` blocks until the run is terminal and
    renders the typed result exactly like the batch CLI would.
    """
    from ..service.client import ServiceClient

    parser = argparse.ArgumentParser(
        prog="ssam-repro submit",
        description="Submit a sweep or tuning run to a running ssam-repro service")
    parser.add_argument("--matrix", default=None, metavar="SPEC",
                        help="sweep matrix preset name or JSON file path")
    parser.add_argument("--tune", action="store_true",
                        help="submit a launch-config tuning run instead of a sweep")
    parser.add_argument("--quick", action="store_true",
                        help="reduced design space (only with --tune)")
    parser.add_argument("--refresh", action="store_true",
                        help="report which cells a code change invalidated "
                             "while re-submitting them")
    parser.add_argument("--priority", type=int, default=0, metavar="N",
                        help="queue priority (lower runs first; default 0)")
    parser.add_argument("--wait", action="store_true",
                        help="block until the run finishes and print the report")
    parser.add_argument("--timeout", type=float, default=600.0, metavar="SEC",
                        help="how long --wait polls before giving up")
    parser.add_argument("--url", default=None, metavar="URL",
                        help="service address (default: discover via the "
                             "daemon.json endpoint file in --cache-dir)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=f"cache directory the daemon was started with "
                             f"(default {default_cache_dir()!r})")
    parser.add_argument("--output-dir", default=None, metavar="DIR",
                        help="with --wait: also save the result as a JSON "
                             "artifact under DIR")
    args = parser.parse_args(argv)
    if args.tune and (args.matrix is not None or args.refresh):
        parser.error("--tune cannot be combined with --matrix/--refresh")
    if args.quick and not args.tune:
        parser.error("--quick requires --tune")
    if args.url is not None:
        client = ServiceClient(args.url)
    else:
        client = ServiceClient.discover(args.cache_dir or default_cache_dir())
    if args.tune:
        run = client.submit_tune({"quick": args.quick},
                                 priority=args.priority)
    elif args.refresh:
        run = client.refresh(args.matrix, priority=args.priority)
    else:
        run = client.submit_sweep(args.matrix, priority=args.priority)
    run_id = run["run_id"]
    print(f"submitted {run_id}: {run.get('cached', 0)} cached, "
          f"{run.get('queued', '?')} queued", file=sys.stderr)
    if run.get("refresh"):
        counts = run["refresh"]
        print(f"refresh: {counts['fresh']} fresh, "
              f"{counts['invalidated']} invalidated, "
              f"{counts['missing']} missing", file=sys.stderr)
    if not args.wait:
        print(run_id)
        return 0
    status = client.wait(run_id, timeout=args.timeout)
    if status["status"] != "done":
        print(f"run {run_id} {status['status']}: "
              f"{status.get('failures')}", file=sys.stderr)
        return 1
    result = ExperimentResult.from_dict(client.results(run_id))
    name = "tune" if run["kind"] == "tune" else "sweep"
    print(render_result(name, result))
    if args.output_dir:
        path = result.save(os.path.join(args.output_dir, f"{run_id}.json"))
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _serve(args, workers: int) -> int:
    """``--experiment serve``: run the daemon until interrupted."""
    from ..service.daemon import run_daemon

    cache = SimulationCache(args.cache_dir)
    return run_daemon(cache, host=args.host, port=args.port,
                      threads=workers, processes=args.serve_processes)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "submit":
        return submit_main(argv[1:])
    parser = argparse.ArgumentParser(
        description="Regenerate the SSAM paper's tables and figures on the simulated GPUs")
    parser.add_argument("--experiment", "-e", default="all",
                        choices=sorted(EXPERIMENTS) + ["all", "analyze",
                                                       "sweep", "tune",
                                                       "serve"],
                        help="which table/figure to regenerate, 'analyze' for "
                             "the static kernel verifier over the scenario "
                             "registry, 'sweep' for a scenario-registry "
                             "sweep, 'tune' for the launch-configuration "
                             "autotuner, or 'serve' to run the sweep service "
                             "daemon")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced sweeps for a fast smoke run")
    parser.add_argument("--matrix", default=None, metavar="SPEC",
                        help="sweep matrix: a preset name or a JSON file with "
                             "scenarios/architectures/precisions/engines/sizes "
                             "axes (only with --experiment sweep)")
    parser.add_argument("--tune-stage", default="full",
                        choices=["full", "model"],
                        help="'model' runs the autotuner's exhaustive "
                             "closed-form stage only, skipping the batched "
                             "confirmation (only with --experiment tune)")
    parser.add_argument("--confirm-engine", default="batched",
                        choices=["batched", "replay"],
                        help="engine for the autotuner's confirmation stage: "
                             "the batched simulator or the compiled "
                             "trace-replay engine (identical counters, "
                             "faster; only with --experiment tune)")
    parser.add_argument("--search", default="exhaustive",
                        choices=["exhaustive", "guided"],
                        help="explore-stage search strategy: evaluate every "
                             "valid design point, or the budgeted guided "
                             "local search seeded at the paper default "
                             "(only with --experiment tune)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the simulation jobs "
                             "(0 = all CPUs; default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent simulation cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=f"simulation cache location "
                             f"(default {default_cache_dir()!r})")
    parser.add_argument("--output-dir", default=None, metavar="DIR",
                        help="also save each experiment result as a JSON "
                             "artifact under DIR")
    parser.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                        help="bind address (only with --experiment serve)")
    parser.add_argument("--port", type=int, default=8037, metavar="PORT",
                        help="bind port, 0 for ephemeral (only with "
                             "--experiment serve)")
    parser.add_argument("--serve-processes", action="store_true",
                        help="shard service cells across a process pool "
                             "(only with --experiment serve)")
    args = parser.parse_args(argv)
    try:
        workers = resolve_workers(args.jobs)
    except Exception as exc:
        parser.error(str(exc))
    if args.matrix is not None and args.experiment != "sweep":
        parser.error("--matrix requires --experiment sweep")
    if args.tune_stage != "full" and args.experiment != "tune":
        parser.error("--tune-stage requires --experiment tune")
    if args.confirm_engine != "batched" and args.experiment != "tune":
        parser.error("--confirm-engine requires --experiment tune")
    if args.search != "exhaustive" and args.experiment != "tune":
        parser.error("--search requires --experiment tune")
    if args.experiment == "serve":
        if args.no_cache:
            parser.error("--experiment serve needs the shared store; drop "
                         "--no-cache")
        return _serve(args, workers)
    cache = None if args.no_cache else SimulationCache(args.cache_dir)
    results = run_experiment_results(args.experiment, quick=args.quick,
                                     jobs=workers, cache=cache,
                                     matrix=args.matrix,
                                     tune_stage=args.tune_stage,
                                     confirm_engine=args.confirm_engine,
                                     search=args.search)
    print("\n\n".join(render_result(key, result)
                      for key, result in results.items()))
    if args.output_dir:
        for path in save_artifacts(results, args.output_dir):
            print(f"wrote {path}", file=sys.stderr)
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses "
              f"({cache.directory})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
