"""Command-line entry point that regenerates every table and figure.

Installed as the ``ssam-repro`` console script::

    ssam-repro --experiment table1
    ssam-repro --experiment figure4
    ssam-repro --experiment all --quick --jobs 4 --output-dir results

The runner is a thin orchestrator over the structured experiment pipeline:
each experiment contributes independent simulation jobs
(:mod:`repro.experiments.jobs`), the executor shards them across worker
processes and memoises their payloads in the persistent simulation cache
(:mod:`repro.experiments.parallel`, :mod:`repro.experiments.cache`), and
the typed results (:mod:`repro.experiments.results`) are rendered to the
paper's text tables — and optionally saved as JSON artifacts — in a fixed
deterministic order, so the report text is byte-identical for any worker
count or cache state.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from . import figure4, figure5, figure6, model_validation, table1, table2, table3
from .cache import SimulationCache, default_cache_dir
from .parallel import execute_jobs, resolve_workers
from .results import ExperimentResult

#: experiment registry, in report order; every module implements the same
#: pipeline surface (jobs / assemble / render)
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "model": model_validation,
}


def _select(name: str) -> List[str]:
    if name == "all":
        return list(EXPERIMENTS)
    if name not in EXPERIMENTS:
        raise SystemExit(f"unknown experiment {name!r}; choose from "
                         f"{sorted(EXPERIMENTS) + ['all']}")
    return [name]


def run_experiment_results(name: str = "all", quick: bool = False,
                           jobs: int = 1,
                           cache: Optional[SimulationCache] = None,
                           ) -> Dict[str, ExperimentResult]:
    """Run one or all experiments through the pipeline.

    All selected experiments' jobs are pooled into a single executor pass
    (shared simulations between experiments run once), then each experiment
    assembles its typed result from the keyed payloads.
    """
    names = _select(name)
    pending = []
    for key in names:
        pending.extend(EXPERIMENTS[key].jobs(quick))
    payloads = execute_jobs(pending, workers=jobs, cache=cache)
    return {key: EXPERIMENTS[key].assemble(payloads, quick) for key in names}


def run_experiment(name: str, quick: bool = False, jobs: int = 1,
                   cache: Optional[SimulationCache] = None) -> str:
    """Run one named experiment (or ``"all"``) and return its report text."""
    results = run_experiment_results(name, quick=quick, jobs=jobs, cache=cache)
    return "\n\n".join(EXPERIMENTS[key].render(result)
                       for key, result in results.items())


def save_artifacts(results: Dict[str, ExperimentResult],
                   output_dir: str) -> List[str]:
    """Write one JSON artifact per experiment result; returns the paths."""
    return [results[key].save(os.path.join(output_dir, f"{key}.json"))
            for key in results]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the SSAM paper's tables and figures on the simulated GPUs")
    parser.add_argument("--experiment", "-e", default="all",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced sweeps for a fast smoke run")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the simulation jobs "
                             "(0 = all CPUs; default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent simulation cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=f"simulation cache location "
                             f"(default {default_cache_dir()!r})")
    parser.add_argument("--output-dir", default=None, metavar="DIR",
                        help="also save each experiment result as a JSON "
                             "artifact under DIR")
    args = parser.parse_args(argv)
    try:
        workers = resolve_workers(args.jobs)
    except Exception as exc:
        parser.error(str(exc))
    cache = None if args.no_cache else SimulationCache(args.cache_dir)
    results = run_experiment_results(args.experiment, quick=args.quick,
                                     jobs=workers, cache=cache)
    print("\n\n".join(EXPERIMENTS[key].render(result)
                      for key, result in results.items()))
    if args.output_dir:
        for path in save_artifacts(results, args.output_dir):
            print(f"wrote {path}", file=sys.stderr)
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses "
              f"({cache.directory})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
