"""Sharded execution of simulation jobs with deterministic results.

``execute_jobs`` is the single entry point: it deduplicates the job list,
serves what it can from the persistent cache, and runs the misses either
inline (``workers=1``) or across a ``ProcessPoolExecutor``.  Results come
back as a ``{job key: payload}`` mapping, so downstream assembly never
depends on completion order — the rendered reports are byte-identical for
any worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .cache import SimulationCache
from .jobs import SimulationJob, dedupe_jobs, execute_job


def resolve_workers(workers: Optional[int]) -> int:
    """Validate/normalise a ``--jobs`` value (``None``/``0`` = cpu count)."""
    if workers in (None, 0):
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {workers}")
    return workers


def execute_jobs(jobs: List[SimulationJob], workers: int = 1,
                 cache: Optional[SimulationCache] = None) -> Dict[str, Dict[str, object]]:
    """Run every job once and return payloads keyed by job key.

    Parameters
    ----------
    jobs:
        Jobs to run; duplicate keys (shared simulations between experiments)
        execute once.
    workers:
        Process count.  ``1`` runs inline in this process (no pool, no
        pickling); larger values shard the cache misses across a
        ``ProcessPoolExecutor``.
    cache:
        Optional persistent cache consulted before execution; fresh
        payloads are stored back after execution.
    """
    workers = resolve_workers(workers)
    unique = dedupe_jobs(list(jobs))
    payloads: Dict[str, Dict[str, object]] = {}
    misses: List[SimulationJob] = []
    for job in unique:
        cached = cache.lookup(job.cache_key()) if cache is not None else None
        if cached is None:
            misses.append(job)
        else:
            payloads[job.key] = cached

    if misses:
        # one execution contract for both paths: execute_job(SimulationJob).
        # A single miss skips the pool on purpose (spawning workers costs
        # more than the job), but it runs through the same contract, so the
        # two paths cannot diverge.
        if workers <= 1 or len(misses) <= 1:
            results = map(execute_job, misses)
        else:
            chunksize = max(1, len(misses) // (4 * workers))
            pool = ProcessPoolExecutor(max_workers=min(workers, len(misses)))
            try:
                results = list(pool.map(execute_job, misses, chunksize=chunksize))
            finally:
                pool.shutdown(wait=True)
        fresh = dict(results)
        if cache is not None:
            for job in misses:
                cache.store(job.cache_key(), fresh[job.key])
        payloads.update(fresh)
    return payloads
