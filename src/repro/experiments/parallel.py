"""Sharded execution of simulation jobs with deterministic results.

``execute_jobs`` is the single entry point: it deduplicates the job list,
serves what it can from the persistent cache, and runs the misses either
inline (``workers=1``) or across a ``ProcessPoolExecutor``.  Results come
back as a ``{job key: payload}`` mapping, so downstream assembly never
depends on completion order — the rendered reports are byte-identical for
any worker count.

When the cache is backed by the shared result store
(:mod:`repro.service.store`), misses are additionally *claimed* before they
run: exactly one process across the whole machine executes each missing
key, and everyone else waits for that process to publish the payload.  The
pre-PR-7 behaviour — every process that missed a key recomputed it, then
raced the store-back — is thereby gone; concurrent sweeps over overlapping
matrices do each simulation once, total.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from .cache import SimulationCache
from .jobs import SimulationJob, dedupe_jobs, execute_job

#: seconds between polls while waiting for another process's result
WAIT_POLL_SECONDS = 0.05

#: a claim-waiter's extra patience beyond the store's claim TTL before it
#: attempts a takeover itself
WAIT_GRACE_SECONDS = 5.0


def resolve_workers(workers: Optional[int]) -> int:
    """Validate/normalise a ``--jobs`` value (``None``/``0`` = cpu count)."""
    if workers in (None, 0):
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {workers}")
    return workers


def _iter_miss_results(misses: List[SimulationJob], workers: int,
                       runner: Optional[Callable[[List[SimulationJob]],
                                                 Iterable[Tuple[str, Dict[str, object]]]]],
                       ) -> Iterable[Tuple[str, Dict[str, object]]]:
    """Yield ``(key, payload)`` per miss as each execution completes.

    Yielding (rather than returning the full batch) is what makes the
    store-back incremental: the caller publishes every payload the moment
    it exists, so a crash mid-batch loses only the in-flight job, and
    concurrent processes waiting on our claims see results as they land.
    """
    if runner is not None:
        yield from runner(misses)
        return
    # one execution contract for both built-in paths:
    # execute_job(SimulationJob).  A single miss skips the pool on purpose
    # (spawning workers costs more than the job), but it runs through the
    # same contract, so the two paths cannot diverge.
    if workers <= 1 or len(misses) <= 1:
        for job in misses:
            yield execute_job(job)
        return
    chunksize = max(1, len(misses) // (4 * workers))
    pool = ProcessPoolExecutor(max_workers=min(workers, len(misses)))
    try:
        yield from pool.map(execute_job, misses, chunksize=chunksize)
    finally:
        pool.shutdown(wait=True)


def _await_claimed(waits: List[SimulationJob], cache: SimulationCache,
                   ) -> Dict[str, Dict[str, object]]:
    """Wait for keys claimed by other processes to be published.

    Polls the store without touching the miss counter; each satisfied wait
    counts as a hit (the payload was served from the shared store).  If a
    claim goes stale — its owner died before publishing — this process
    takes the lease over and executes the job itself, so a crashed worker
    elsewhere can never wedge the pipeline.
    """
    payloads: Dict[str, Dict[str, object]] = {}
    pending = list(waits)
    store = cache.result_store()
    ttl = getattr(store, "claim_ttl", 300.0)
    deadline = time.monotonic() + ttl + WAIT_GRACE_SECONDS
    while pending:
        # leases of SIGKILLed local processes are released eagerly, so a
        # crash elsewhere costs one poll interval, not the whole TTL
        if hasattr(store, "reap_dead_claims"):
            store.reap_dead_claims()
        still_pending: List[SimulationJob] = []
        for job in pending:
            payload = cache.peek(job.cache_key())
            if payload is not None:
                cache.hits += 1
                payloads[job.key] = payload
            elif cache.claim(job.cache_key()):
                # the original claimant died: execute here and publish
                key, payload = execute_job(job)
                cache.store(job.cache_key(), payload, job_key=job.key)
                payloads[key] = payload
            else:
                still_pending.append(job)
        pending = still_pending
        if pending:
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"timed out waiting for {len(pending)} claimed job(s) "
                    f"to be published (first: {pending[0].key!r})")
            time.sleep(WAIT_POLL_SECONDS)
    return payloads


def execute_jobs(jobs: List[SimulationJob], workers: int = 1,
                 cache: Optional[SimulationCache] = None,
                 runner: Optional[Callable[[List[SimulationJob]],
                                           Iterable[Tuple[str, Dict[str, object]]]]] = None,
                 ) -> Dict[str, Dict[str, object]]:
    """Run every job once and return payloads keyed by job key.

    Parameters
    ----------
    jobs:
        Jobs to run; duplicate keys (shared simulations between experiments)
        execute once.
    workers:
        Process count.  ``1`` runs inline in this process (no pool, no
        pickling); larger values shard the cache misses across a
        ``ProcessPoolExecutor``.
    cache:
        Optional persistent cache consulted before execution; fresh
        payloads are stored back after execution.  A claim-capable cache
        (the store-backed :class:`~repro.experiments.cache.SimulationCache`)
        additionally guarantees exactly-once execution across concurrent
        processes: unclaimed misses wait for the claimant's result instead
        of recomputing it.
    runner:
        Optional override executing the claimed misses, as
        ``runner(jobs) -> iterable of (key, payload)``.  The service daemon
        injects its sharded worker pool here so queued cells and CLI runs
        share one execution path.
    """
    workers = resolve_workers(workers)
    unique = dedupe_jobs(list(jobs))
    payloads: Dict[str, Dict[str, object]] = {}
    misses: List[SimulationJob] = []
    waits: List[SimulationJob] = []
    claiming = (cache is not None and cache.enabled
                and hasattr(cache, "claim"))
    for job in unique:
        cached = cache.lookup(job.cache_key()) if cache is not None else None
        if cached is not None:
            payloads[job.key] = cached
        elif claiming and not cache.claim(job.cache_key()):
            waits.append(job)
        else:
            misses.append(job)

    if misses:
        by_key = {job.key: job for job in misses}
        fresh: Dict[str, Dict[str, object]] = {}
        try:
            for key, payload in _iter_miss_results(misses, workers, runner):
                fresh[key] = payload
                if cache is not None:
                    cache.store(by_key[key].cache_key(), payload,
                                job_key=key)
        except BaseException:
            if claiming:
                # don't wedge concurrent waiters on our now-orphaned
                # leases (published results released theirs via upsert)
                for job in misses:
                    if job.key not in fresh:
                        cache.release_claim(job.cache_key())
            raise
        payloads.update(fresh)
    if waits:
        payloads.update(_await_claimed(waits, cache))
    return payloads
