"""Validation of the Section 5 analytical performance model.

Checks the two paper claims (Sections 5.2 and 5.3):

* ``Dif_smem_reg = M*N*T_smem_read - (M-1)*T_shfl >> 0`` for M, N >= 2 on
  both architectures (the register-cache scheme always saves latency per
  output element);
* the halo-overhead-adjusted advantage ``AvgDif`` grows with the filter size
  and is positive for all practically relevant filters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.tables import format_table
from ..core.performance_model import (
    advantage_table,
    average_advantage,
    latency_advantage,
)

FILTER_SIZES = (2, 3, 5, 7, 9, 11, 15, 20)


def run(architectures: Sequence[str] = ("p100", "v100"),
        filter_sizes: Sequence[int] = FILTER_SIZES,
        outputs_per_thread: int = 4) -> List[Dict[str, object]]:
    """Evaluate the Section 5 quantities over a sweep of filter sizes."""
    rows: List[Dict[str, object]] = []
    for arch in architectures:
        for row in advantage_table(arch, filter_sizes, outputs_per_thread):
            rows.append({"architecture": arch, **row,
                         "eq5_positive": row["dif_cycles"] > 0})
    return rows


def claims(architectures: Sequence[str] = ("p100", "v100")) -> Dict[str, bool]:
    """The boolean claims the paper makes about the model."""
    eq5 = all(
        latency_advantage(arch, m, n) > 0
        for arch in architectures for m in range(2, 21) for n in range(2, 21)
    )
    growth = all(
        average_advantage(arch, size + 1, size + 1, 4) > average_advantage(arch, size, size, 4)
        for arch in architectures for size in range(2, 20)
    )
    large_filters_positive = all(
        average_advantage(arch, size, size, 4) > 0
        for arch in architectures for size in range(5, 21)
    )
    return {
        "eq5_advantage_positive_for_all_M_N_ge_2": eq5,
        "halo_adjusted_advantage_grows_with_filter": growth,
        "halo_adjusted_advantage_positive_for_M_ge_5": large_filters_positive,
    }


def report() -> str:
    """Formatted model-validation report."""
    return ("Section 5 performance-model validation\n"
            + format_table(run()) + "\n\nclaims: " + str(claims()))
