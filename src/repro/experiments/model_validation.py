"""Validation of the Section 5 analytical performance model.

Checks the two paper claims (Sections 5.2 and 5.3):

* ``Dif_smem_reg = M*N*T_smem_read - (M-1)*T_shfl >> 0`` for M, N >= 2 on
  both architectures (the register-cache scheme always saves latency per
  output element);
* the halo-overhead-adjusted advantage ``AvgDif`` grows with the filter size
  and is positive for all practically relevant filters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.tables import format_table
from ..core.performance_model import (
    advantage_table,
    average_advantage,
    latency_advantage,
)
from .jobs import SimulationJob
from .results import ExperimentResult, Measurement

TITLE = "Section 5 performance-model validation"
FILTER_SIZES = (2, 3, 5, 7, 9, 11, 15, 20)
#: reduced sweep used by --quick runs
QUICK_FILTER_SIZES = (2, 5, 9, 20)
ARCHITECTURES = ("p100", "v100")
#: the exhaustive M/N extent of the full claim checks; --quick uses the
#: reduced extent (the claims are monotone, so the booleans are unchanged)
CLAIM_MAX_EXTENT = 21
QUICK_CLAIM_MAX_EXTENT = 9


def run(architectures: Sequence[str] = ARCHITECTURES,
        filter_sizes: Sequence[int] = FILTER_SIZES,
        outputs_per_thread: int = 4) -> List[Dict[str, object]]:
    """Evaluate the Section 5 quantities over a sweep of filter sizes."""
    rows: List[Dict[str, object]] = []
    for arch in architectures:
        rows.extend(_measure_advantage(arch, list(filter_sizes),
                                       outputs_per_thread)["rows"])
    return rows


def claims(architectures: Sequence[str] = ARCHITECTURES,
           max_extent: int = CLAIM_MAX_EXTENT) -> Dict[str, bool]:
    """The boolean claims the paper makes about the model."""
    eq5 = all(
        latency_advantage(arch, m, n) > 0
        for arch in architectures
        for m in range(2, max_extent) for n in range(2, max_extent)
    )
    growth = all(
        average_advantage(arch, size + 1, size + 1, 4) > average_advantage(arch, size, size, 4)
        for arch in architectures for size in range(2, max_extent - 1)
    )
    large_filters_positive = all(
        average_advantage(arch, size, size, 4) > 0
        for arch in architectures for size in range(5, max_extent)
    )
    return {
        "eq5_advantage_positive_for_all_M_N_ge_2": eq5,
        "halo_adjusted_advantage_grows_with_filter": growth,
        "halo_adjusted_advantage_positive_for_M_ge_5": large_filters_positive,
    }


def _measure_advantage(architecture: str, filter_sizes: List[int],
                       outputs_per_thread: int = 4) -> Dict[str, object]:
    """Worker: the Section 5 advantage sweep on one architecture."""
    rows = [
        {"architecture": architecture, **row, "eq5_positive": row["dif_cycles"] > 0}
        for row in advantage_table(architecture, filter_sizes, outputs_per_thread)
    ]
    return {"rows": rows}


def _measure_claims(architectures: List[str], max_extent: int) -> Dict[str, object]:
    """Worker: the boolean paper claims over the given extent."""
    return {"claims": claims(tuple(architectures), max_extent)}


# --------------------------------------------------------------- pipeline

def jobs(quick: bool = False) -> List[SimulationJob]:
    """One advantage-sweep job per architecture plus one claims job."""
    sizes = list(QUICK_FILTER_SIZES if quick else FILTER_SIZES)
    max_extent = QUICK_CLAIM_MAX_EXTENT if quick else CLAIM_MAX_EXTENT
    out = [
        SimulationJob(
            key=f"model:advantage:{arch}:{'-'.join(map(str, sizes))}",
            func="repro.experiments.model_validation:_measure_advantage",
            params={"architecture": arch, "filter_sizes": sizes,
                    "outputs_per_thread": 4},
            cache_fields={"kernel": "performance_model:advantage",
                          "architecture": arch, "engine": "closed_form"},
        )
        for arch in ARCHITECTURES
    ]
    out.append(SimulationJob(
        key=f"model:claims:m{max_extent}",
        func="repro.experiments.model_validation:_measure_claims",
        params={"architectures": list(ARCHITECTURES), "max_extent": max_extent},
        cache_fields={"kernel": "performance_model:claims",
                      "engine": "closed_form"},
    ))
    return out


def assemble(payloads: Dict[str, Dict[str, object]],
             quick: bool = False) -> ExperimentResult:
    sizes = list(QUICK_FILTER_SIZES if quick else FILTER_SIZES)
    max_extent = QUICK_CLAIM_MAX_EXTENT if quick else CLAIM_MAX_EXTENT
    measurements = []
    for arch in ARCHITECTURES:
        key = f"model:advantage:{arch}:{'-'.join(map(str, sizes))}"
        for row in payloads[key]["rows"]:
            measurements.append(Measurement(
                kernel="register_cache_advantage", architecture=arch,
                workload=str(row.get("filter", row.get("M", ""))),
                config={"outputs_per_thread": 4},
                value=row.get("dif_cycles"), unit="cycles", extra=row))
    claims_payload = payloads[f"model:claims:m{max_extent}"]["claims"]
    return ExperimentResult(
        experiment="model", title=TITLE, quick=quick,
        measurements=measurements,
        metadata={"claims": claims_payload, "claim_max_extent": max_extent})


def render(result: ExperimentResult) -> str:
    return (f"{TITLE}\n" + format_table(result.rows())
            + "\n\nclaims: " + str(result.metadata["claims"]))


def report(quick: bool = False) -> str:
    """Formatted model-validation report."""
    from .parallel import execute_jobs

    return render(assemble(execute_jobs(jobs(quick)), quick))
