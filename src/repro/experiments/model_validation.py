"""Validation of the Section 5 analytical performance model.

Two layers of validation:

* **Paper claims** (Sections 5.2 and 5.3) — ``Dif_smem_reg = M*N*T_smem_read
  - (M-1)*T_shfl >> 0`` for M, N >= 2 on both architectures, and the
  halo-overhead-adjusted advantage ``AvgDif`` grows with the filter size and
  is positive for all practically relevant filters.
* **Cross-engine validation** — now that the model is a first-class
  execution engine (``engine="model"``), every registered scenario that
  supports both the model and a functional engine is run through *both* at
  a functional problem size, and the per-kernel prediction error bounds
  (``model / simulated`` time ratios) are reported.  The simulation cells
  reuse the sweep engine's workers and cache keys, so a sweep that already
  ran leaves this experiment with only the closed-form halves to compute.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.metrics import error_bounds, relative_error
from ..analysis.tables import format_table
from ..core.performance_model import (
    advantage_table,
    average_advantage,
    latency_advantage,
)
from .jobs import SimulationJob
from .results import ExperimentResult, Measurement

TITLE = "Section 5 performance-model validation"
FILTER_SIZES = (2, 3, 5, 7, 9, 11, 15, 20)
#: reduced sweep used by --quick runs
QUICK_FILTER_SIZES = (2, 5, 9, 20)
ARCHITECTURES = ("p100", "v100", "a100", "h100")
#: the parts the paper's boolean claims are stated for.  The halo-adjusted
#: positivity claim does NOT extrapolate to Hopper: its much larger
#: global-memory latency makes halo reloads dominate at M = 5, so the
#: modern parts carry their own claim with the shifted threshold below.
CLAIM_ARCHITECTURES = ("p100", "v100")
MODERN_CLAIM_ARCHITECTURES = ("a100", "h100")
#: smallest square filter with a positive halo-adjusted advantage on every
#: modern part (H100 turns positive at M = 6, A100 already at M = 2)
MODERN_POSITIVE_MIN_EXTENT = 6
#: the exhaustive M/N extent of the full claim checks; --quick uses the
#: reduced extent (the claims are monotone, so the booleans are unchanged)
CLAIM_MAX_EXTENT = 21
QUICK_CLAIM_MAX_EXTENT = 9

#: functional engine the model predictions are validated against (the
#: scalar engine is bit-identical, so one reference suffices)
REFERENCE_ENGINE = "batched"
#: problem size of the cross-engine cells; --quick shrinks it
CROSS_SIZE = "small"
QUICK_CROSS_SIZE = "tiny"


def run(architectures: Sequence[str] = ARCHITECTURES,
        filter_sizes: Sequence[int] = FILTER_SIZES,
        outputs_per_thread: int = 4) -> List[Dict[str, object]]:
    """Evaluate the Section 5 quantities over a sweep of filter sizes."""
    rows: List[Dict[str, object]] = []
    for arch in architectures:
        rows.extend(_measure_advantage(arch, list(filter_sizes),
                                       outputs_per_thread)["rows"])
    return rows


def claims(architectures: Sequence[str] = CLAIM_ARCHITECTURES,
           max_extent: int = CLAIM_MAX_EXTENT) -> Dict[str, bool]:
    """The boolean claims the paper makes about the model.

    The first three entries are the paper's claims, evaluated on the parts
    the paper evaluates (``CLAIM_ARCHITECTURES`` by default).  The modern
    claim re-states the positivity property for Ampere/Hopper with the
    threshold shifted to ``MODERN_POSITIVE_MIN_EXTENT`` — at M = 5 the
    H100's global-memory latency makes the halo reloads outweigh the
    scratchpad savings, so the paper's M >= 5 form is genuinely false there.
    """
    eq5 = all(
        latency_advantage(arch, m, n) > 0
        for arch in architectures
        for m in range(2, max_extent) for n in range(2, max_extent)
    )
    growth = all(
        average_advantage(arch, size + 1, size + 1, 4) > average_advantage(arch, size, size, 4)
        for arch in architectures for size in range(2, max_extent - 1)
    )
    large_filters_positive = all(
        average_advantage(arch, size, size, 4) > 0
        for arch in architectures for size in range(5, max_extent)
    )
    modern_positive = all(
        average_advantage(arch, size, size, 4) > 0
        for arch in MODERN_CLAIM_ARCHITECTURES
        for size in range(MODERN_POSITIVE_MIN_EXTENT, max_extent)
    )
    return {
        "eq5_advantage_positive_for_all_M_N_ge_2": eq5,
        "halo_adjusted_advantage_grows_with_filter": growth,
        "halo_adjusted_advantage_positive_for_M_ge_5": large_filters_positive,
        "halo_adjusted_advantage_positive_for_M_ge_6_on_modern": modern_positive,
    }


def _measure_advantage(architecture: str, filter_sizes: List[int],
                       outputs_per_thread: int = 4) -> Dict[str, object]:
    """Worker: the Section 5 advantage sweep on one architecture."""
    rows = [
        {"architecture": architecture, **row, "eq5_positive": row["dif_cycles"] > 0}
        for row in advantage_table(architecture, filter_sizes, outputs_per_thread)
    ]
    return {"rows": rows}


def _measure_claims(architectures: List[str], max_extent: int) -> Dict[str, object]:
    """Worker: the boolean paper claims over the given extent."""
    return {"claims": claims(tuple(architectures), max_extent)}


# ------------------------------------------------------- cross-engine cells

def cross_validation_cases(quick: bool = False) -> List[Tuple[object, object]]:
    """(simulated case, model case) pairs for every model-capable scenario.

    Derived entirely from the registry envelopes: a scenario contributes
    when it supports both the reference engine and the model engine at the
    validation size, on each evaluated architecture and every precision it
    declares.  Registering a new kernel therefore extends this experiment
    with no edits here.
    """
    from ..scenarios import all_scenarios
    from ..scenarios.registry import ScenarioCase

    size = QUICK_CROSS_SIZE if quick else CROSS_SIZE
    pairs: List[Tuple[object, object]] = []
    for scenario in all_scenarios():
        for arch in ARCHITECTURES:
            for precision in scenario.precisions:
                if not (scenario.supports(arch, precision, REFERENCE_ENGINE, size)
                        and scenario.supports(arch, precision, "model", size)):
                    continue
                pairs.append((
                    ScenarioCase(scenario.name, arch, precision,
                                 REFERENCE_ENGINE, size),
                    ScenarioCase(scenario.name, arch, precision, "model", size),
                ))
    return pairs


def _cross_jobs(quick: bool) -> List[SimulationJob]:
    """One sweep-engine job per cross-validation cell (cache-shared)."""
    from ..scenarios.sweep import case_cache_fields, case_job_key

    jobs: List[SimulationJob] = []
    for pair in cross_validation_cases(quick):
        for case in pair:
            jobs.append(SimulationJob(
                key=case_job_key(case),
                func="repro.scenarios.sweep:_measure_case",
                params=case.to_dict(),
                cache_fields=case_cache_fields(case),
            ))
    return jobs


# --------------------------------------------------------------- pipeline

def jobs(quick: bool = False) -> List[SimulationJob]:
    """Advantage sweeps + claim checks + the cross-engine cell matrix."""
    sizes = list(QUICK_FILTER_SIZES if quick else FILTER_SIZES)
    max_extent = QUICK_CLAIM_MAX_EXTENT if quick else CLAIM_MAX_EXTENT
    out = [
        SimulationJob(
            key=f"model:advantage:{arch}:{'-'.join(map(str, sizes))}",
            func="repro.experiments.model_validation:_measure_advantage",
            params={"architecture": arch, "filter_sizes": sizes,
                    "outputs_per_thread": 4},
            cache_fields={"kernel": "performance_model:advantage",
                          "architecture": arch, "engine": "closed_form"},
        )
        for arch in ARCHITECTURES
    ]
    out.append(SimulationJob(
        key=f"model:claims:m{max_extent}",
        func="repro.experiments.model_validation:_measure_claims",
        params={"architectures": list(CLAIM_ARCHITECTURES),
                "max_extent": max_extent},
        cache_fields={"kernel": "performance_model:claims",
                      "engine": "closed_form"},
    ))
    out.extend(_cross_jobs(quick))
    return out


def assemble(payloads: Dict[str, Dict[str, object]],
             quick: bool = False) -> ExperimentResult:
    from ..scenarios.sweep import case_job_key

    sizes = list(QUICK_FILTER_SIZES if quick else FILTER_SIZES)
    max_extent = QUICK_CLAIM_MAX_EXTENT if quick else CLAIM_MAX_EXTENT
    measurements = []
    for arch in ARCHITECTURES:
        key = f"model:advantage:{arch}:{'-'.join(map(str, sizes))}"
        for row in payloads[key]["rows"]:
            measurements.append(Measurement(
                kernel="register_cache_advantage", architecture=arch,
                workload=str(row.get("filter", row.get("M", ""))),
                config={"outputs_per_thread": 4},
                value=row.get("dif_cycles"), unit="cycles", extra=row))
    claims_payload = payloads[f"model:claims:m{max_extent}"]["claims"]

    # cross-engine validation: one measurement per (simulated, model) pair
    ratios_by_kernel: Dict[str, List[float]] = {}
    for sim_case, model_case in cross_validation_cases(quick):
        simulated = payloads[case_job_key(sim_case)]["milliseconds"]
        predicted = payloads[case_job_key(model_case)]["milliseconds"]
        ratio = predicted / simulated
        ratios_by_kernel.setdefault(sim_case.scenario, []).append(ratio)
        measurements.append(Measurement(
            kernel=sim_case.scenario,
            architecture=sim_case.architecture,
            workload=f"{sim_case.size}/{sim_case.precision}",
            value=ratio, unit="x",
            extra={
                "kind": "cross_engine",
                "scenario": sim_case.scenario,
                "architecture": sim_case.architecture,
                "precision": sim_case.precision,
                "size": sim_case.size,
                "simulated_ms": simulated,
                "model_ms": predicted,
                "ratio": ratio,
                "relative_error": relative_error(predicted, simulated),
            }))
    bounds = {kernel: {"cases": len(ratios), **error_bounds(ratios)}
              for kernel, ratios in sorted(ratios_by_kernel.items())}
    return ExperimentResult(
        experiment="model", title=TITLE, quick=quick,
        measurements=measurements,
        metadata={"claims": claims_payload, "claim_max_extent": max_extent,
                  "cross_engine": {
                      "reference_engine": REFERENCE_ENGINE,
                      "size": QUICK_CROSS_SIZE if quick else CROSS_SIZE,
                      "bounds": bounds,
                  }})


def render(result: ExperimentResult) -> str:
    advantage_rows = result.rows(kernel="register_cache_advantage")
    text = f"{TITLE}\n" + format_table(advantage_rows)
    text += "\n\nclaims: " + str(result.metadata["claims"])
    cross = result.metadata.get("cross_engine") or {}
    bounds = cross.get("bounds") or {}
    if bounds:
        rows = [
            {"kernel": kernel,
             "cases": entry["cases"],
             "ratio_min": entry["min"],
             "ratio_max": entry["max"],
             "ratio_geomean": entry["geomean"]}
            for kernel, entry in bounds.items()
        ]
        text += ("\n\ncross-engine validation — model vs "
                 f"{cross.get('reference_engine')} engine at size "
                 f"{cross.get('size')!r} (ratio = model/simulated, 1.0 = exact)\n")
        text += format_table(rows)
    return text


def report(quick: bool = False) -> str:
    """Formatted model-validation report."""
    from .parallel import execute_jobs

    return render(assemble(execute_jobs(jobs(quick)), quick))
