"""Persistent on-disk memoisation of simulation jobs.

Every experiment decomposes into simulation jobs (:mod:`repro.experiments.jobs`)
whose payloads — :class:`~repro.gpu.counters.KernelCounters` dictionaries and
modelled times — are pure functions of the job's parameters and of the
simulator's code.  The cache keys each payload by a stable hash of

* the job's kernel/function identity,
* the problem spec fingerprint and launch parameters
  (specs, plans and launch configs are hashable-serialisable for exactly
  this purpose),
* the architecture, precision and engine/mode,
* a code-version digest over ``src/repro`` so editing the simulator
  invalidates every stale entry automatically.

Entries are one JSON file each under a two-level shard directory; writes go
through a temp file + ``os.replace`` so concurrent runs never observe a
partial entry.  The default location honours ``$SSAM_REPRO_CACHE_DIR`` and
``$XDG_CACHE_HOME`` and can be overridden per run (``--cache-dir``) or
disabled entirely (``--no-cache``).
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from typing import Dict, Mapping, Optional

from ..serialization import atomic_write_json, stable_digest

#: environment variable overriding the default cache directory
CACHE_DIR_ENV = "SSAM_REPRO_CACHE_DIR"
#: bumped when the entry layout changes incompatibly
CACHE_FORMAT = 1


def default_cache_dir() -> str:
    """Default persistent cache location (XDG-style, env-overridable)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "ssam-repro")


def _relative_identity(path: str, root: str) -> str:
    """Path component of a file's digest identity, always ``/``-separated.

    ``os.path.relpath`` yields the native separator, so hashing it verbatim
    would give the same tree a different digest per platform — silently
    splitting (and invalidating) caches shared across machines.  Both
    separators are normalised so the identity is platform-independent.
    """
    rel = os.path.relpath(path, root)
    return rel.replace(os.sep, "/").replace("\\", "/")


def digest_source_tree(root: str) -> str:
    """Digest of every Python source file under ``root`` (path + content).

    Uncached: callers that need memoisation (the per-process
    :func:`code_version`) wrap it themselves, and tests digest throwaway
    trees to check sensitivity to edits, additions and renames.
    """
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            hasher.update(_relative_identity(path, root).encode())
            with open(path, "rb") as handle:
                hasher.update(handle.read())
    return hasher.hexdigest()[:16]


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every Python source file under ``src/repro``.

    Any edit to the simulator, kernels or experiment definitions changes
    this digest and therefore invalidates all cached simulations — the
    cache can never serve results from a different code state.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return digest_source_tree(package_root)


class SimulationCache:
    """Content-addressed store of simulation-job payloads.

    ``lookup``/``store`` operate on (key mapping, payload mapping) pairs;
    the key mapping is hashed with :func:`repro.serialization.stable_digest`
    after the code-version digest is folded in.  ``hits``/``misses``/
    ``stores`` counters make cache behaviour observable to tests and to the
    runner's ``--verbose`` summary.
    """

    def __init__(self, directory: Optional[str] = None, enabled: bool = True) -> None:
        self.directory = directory or default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ---------------------------------------------------------------
    def entry_path(self, key: Mapping[str, object]) -> str:
        digest = stable_digest({"code_version": code_version(), **key}, length=40)
        return os.path.join(self.directory, f"v{CACHE_FORMAT}",
                            digest[:2], f"{digest}.json")

    # -- operations ---------------------------------------------------------
    def lookup(self, key: Mapping[str, object]) -> Optional[Dict[str, object]]:
        """Return the cached payload for ``key`` or ``None`` on a miss."""
        if not self.enabled:
            return None
        path = self.entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            entry = None
        payload = entry.get("payload") if isinstance(entry, dict) else None
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: Mapping[str, object], payload: Mapping[str, object]) -> None:
        """Persist ``payload`` under ``key`` (atomic; no-op when disabled)."""
        if not self.enabled:
            return
        entry = {"format": CACHE_FORMAT, "key": dict(key), "payload": dict(payload)}
        atomic_write_json(self.entry_path(key), entry)
        self.stores += 1

    # -- maintenance ---------------------------------------------------------
    def entry_count(self) -> int:
        """Number of entries currently stored (all format versions)."""
        count = 0
        for _, _, filenames in os.walk(self.directory):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
