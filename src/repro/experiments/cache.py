"""Persistent memoisation of simulation jobs, backed by the shared store.

Every experiment decomposes into simulation jobs (:mod:`repro.experiments.jobs`)
whose payloads — :class:`~repro.gpu.counters.KernelCounters` dictionaries and
modelled times — are pure functions of the job's parameters and of the
simulator's code.  The cache keys each payload by a stable hash of

* the job's kernel/function identity,
* the problem spec fingerprint and launch parameters
  (specs, plans and launch configs are hashable-serialisable for exactly
  this purpose),
* the architecture, precision and engine/mode,
* a code-version digest over ``src/repro`` so editing the simulator
  invalidates every stale entry automatically.

Since PR 7 the backing storage is the concurrency-safe sqlite/WAL
:class:`~repro.service.store.ResultStore` rather than one JSON file per
entry.  The directory layout of PR 2–6 (``v1/<2-hex>/<digest>.json``) was
atomic per entry but unsafe as a *shared* cache: two processes that missed
the same key both executed the job, and the lookup-then-store sequence in
the executor was an unlocked read-modify-write on the cache state.  The
store closes both windows — :meth:`SimulationCache.claim` hands exactly one
process the right to execute a missing key, and store-back is a
first-writer-wins atomic upsert.  Legacy directory trees found next to the
database are imported once, keeping their entries addressable (the file
digest and the store digest are byte-identical).

The default location honours ``$SSAM_REPRO_CACHE_DIR`` and
``$XDG_CACHE_HOME`` and can be overridden per run (``--cache-dir``) or
disabled entirely (``--no-cache``).
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from typing import Dict, Mapping, Optional

from ..serialization import stable_digest

#: environment variable overriding the default cache directory
CACHE_DIR_ENV = "SSAM_REPRO_CACHE_DIR"
#: version of the *legacy* one-JSON-per-entry layout (still recognised by
#: the migration importer; new entries go to the sqlite store)
CACHE_FORMAT = 1
#: filename of the sqlite result store inside the cache directory
STORE_FILENAME = "results.sqlite"


def default_cache_dir() -> str:
    """Default persistent cache location (XDG-style, env-overridable)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "ssam-repro")


def _relative_identity(path: str, root: str) -> str:
    """Path component of a file's digest identity, always ``/``-separated.

    ``os.path.relpath`` yields the native separator, so hashing it verbatim
    would give the same tree a different digest per platform — silently
    splitting (and invalidating) caches shared across machines.  Both
    separators are normalised so the identity is platform-independent.
    """
    rel = os.path.relpath(path, root)
    return rel.replace(os.sep, "/").replace("\\", "/")


def digest_source_tree(root: str) -> str:
    """Digest of every Python source file under ``root`` (path + content).

    Uncached: callers that need memoisation (the per-process
    :func:`code_version`) wrap it themselves, and tests digest throwaway
    trees to check sensitivity to edits, additions and renames.
    """
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            hasher.update(_relative_identity(path, root).encode())
            with open(path, "rb") as handle:
                hasher.update(handle.read())
    return hasher.hexdigest()[:16]


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every Python source file under ``src/repro``.

    Any edit to the simulator, kernels or experiment definitions changes
    this digest and therefore invalidates all cached simulations — the
    cache can never serve results from a different code state.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return digest_source_tree(package_root)


class SimulationCache:
    """Content-addressed store of simulation-job payloads.

    ``lookup``/``store`` operate on (key mapping, payload mapping) pairs;
    the key mapping is hashed with :func:`repro.serialization.stable_digest`
    after the code-version digest is folded in.  ``hits``/``misses``/
    ``stores`` counters make cache behaviour observable to tests and to the
    runner's ``--verbose`` summary.

    All instances pointing at one directory share one sqlite database, so
    any number of concurrent processes (sweep workers, the service daemon,
    ad-hoc CLI runs) see a single result set.  :meth:`claim` exposes the
    store's execution leases; the executor uses them to guarantee each
    missing key is computed by exactly one process.
    """

    def __init__(self, directory: Optional[str] = None, enabled: bool = True,
                 claim_ttl: Optional[float] = None) -> None:
        self.directory = directory or default_cache_dir()
        self.enabled = enabled
        self.claim_ttl = claim_ttl
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._store = None

    # -- backing store -------------------------------------------------------
    @property
    def store_path(self) -> str:
        return os.path.join(self.directory, STORE_FILENAME)

    def result_store(self):
        """The backing :class:`~repro.service.store.ResultStore` (lazy).

        First open also imports any legacy one-JSON-per-entry tree sitting
        in the same directory, so pre-PR-7 caches keep their contents.  The
        code-version callable is late-bound through this module so tests
        that monkeypatch :func:`code_version` affect the store too.
        """
        if self._store is None:
            from ..service.store import ResultStore

            kwargs = {}
            if self.claim_ttl is not None:
                kwargs["claim_ttl"] = self.claim_ttl
            self._store = ResultStore(
                self.store_path, code_version=lambda: code_version(), **kwargs)
            legacy_root = os.path.join(self.directory, f"v{CACHE_FORMAT}")
            if os.path.isdir(legacy_root):
                self._store.migrate_directory_entries(legacy_root)
        return self._store

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    # -- keys ---------------------------------------------------------------
    def entry_path(self, key: Mapping[str, object]) -> str:
        """Where the *legacy* directory layout kept this key's entry.

        New entries live in the sqlite store under the same digest; this
        path exists so tests and the migration importer can fabricate
        pre-PR-7 trees.
        """
        digest = stable_digest({"code_version": code_version(), **key},
                               length=40)
        return os.path.join(self.directory, f"v{CACHE_FORMAT}",
                            digest[:2], f"{digest}.json")

    # -- operations ---------------------------------------------------------
    def lookup(self, key: Mapping[str, object]) -> Optional[Dict[str, object]]:
        """Return the cached payload for ``key`` or ``None`` on a miss."""
        if not self.enabled:
            return None
        payload = self.result_store().get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def peek(self, key: Mapping[str, object]) -> Optional[Dict[str, object]]:
        """Like :meth:`lookup` but without touching the hit/miss counters.

        The executor polls with ``peek`` while waiting for another process
        to publish a claimed key, so a wait does not inflate the miss count.
        """
        if not self.enabled:
            return None
        return self.result_store().get(key)

    def store(self, key: Mapping[str, object],
              payload: Mapping[str, object],
              job_key: Optional[str] = None) -> bool:
        """Persist ``payload`` under ``key`` (atomic; no-op when disabled).

        Returns ``True`` when this call published the entry, ``False`` when
        a concurrent writer got there first (first writer wins — the racing
        payloads are byte-identical by construction, being pure functions
        of the key).
        """
        if not self.enabled:
            return False
        won = self.result_store().upsert(key, payload, job_key=job_key)
        self.stores += 1
        return won

    # -- exactly-once execution ----------------------------------------------
    def claim(self, key: Mapping[str, object]) -> bool:
        """Acquire the execution lease for a missing key (see the store)."""
        if not self.enabled:
            return True  # no shared state: every process computes its own
        return self.result_store().claim(key)

    def release_claim(self, key: Mapping[str, object]) -> None:
        if self.enabled:
            self.result_store().release_claim(key)

    # -- maintenance ---------------------------------------------------------
    def entry_count(self) -> int:
        """Number of results currently stored (all code versions)."""
        if not self.enabled or (self._store is None
                                and not os.path.exists(self.store_path)):
            return 0
        return self.result_store().entry_count()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
