"""Figure 5: stencil throughput (GCells/s) across the Table 3 suite.

Four panels: {P100, V100} x {single, double} precision, comparing SSAM with
the "original", "reordered", "unrolled", ppcg and Halide implementations on
the 8192^2 / 512^3 domains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.metrics import gcells_per_second
from ..analysis.tables import format_series
from ..baselines.stencil2d import (
    halide_like_stencil2d,
    original_stencil2d,
    ppcg_like_stencil2d,
    reordered_stencil2d,
    unrolled_stencil2d,
)
from ..baselines.stencil3d import original_stencil3d, shared_stencil3d
from ..kernels.stencil2d_ssam import analytic_launch as ssam_stencil2d_analytic
from ..kernels.stencil3d_ssam import analytic_launch as ssam_stencil3d_analytic
from ..stencils.catalog import CATALOG, FIGURE5_BENCHMARKS, StencilBenchmark

IMPLEMENTATIONS = ("original", "reordered", "unrolled", "ppcg", "halide", "ssam")

#: approximate values read off the paper's Figure 5 for the SSAM series
#: (GCells/s), used by EXPERIMENTS.md for paper-vs-measured comparison
PAPER_SSAM_GCELLS = {
    ("p100", "float32", "2d5pt"): 60.0, ("p100", "float32", "3d7pt"): 48.0,
    ("v100", "float32", "2d5pt"): 90.0, ("v100", "float32", "3d7pt"): 70.0,
    ("p100", "float64", "2d5pt"): 32.0, ("v100", "float64", "2d5pt"): 45.0,
}


def _throughput(result, benchmark: StencilBenchmark, iterations: int) -> float:
    return result.gcells_per_second(benchmark.cells, iterations)


def run_benchmark(benchmark: StencilBenchmark, architecture: str, precision: str,
                  iterations: int = 1) -> Dict[str, float]:
    """GCells/s of every implementation on one Table 3 benchmark."""
    spec = benchmark.spec
    results: Dict[str, float] = {}
    if spec.dims == 2:
        width, height = benchmark.domain
        results["ssam"] = _throughput(
            ssam_stencil2d_analytic(spec, width, height, iterations, architecture, precision),
            benchmark, iterations)
        results["original"] = _throughput(
            original_stencil2d(None, spec, iterations, architecture, precision,
                               functional=False, width=width, height=height),
            benchmark, iterations)
        results["reordered"] = _throughput(
            reordered_stencil2d(spec, width, height, iterations, architecture, precision),
            benchmark, iterations)
        results["unrolled"] = _throughput(
            unrolled_stencil2d(spec, width, height, iterations, architecture, precision),
            benchmark, iterations)
        results["ppcg"] = _throughput(
            ppcg_like_stencil2d(None, spec, iterations, architecture, precision,
                                functional=False, width=width, height=height),
            benchmark, iterations)
        results["halide"] = _throughput(
            halide_like_stencil2d(None, spec, iterations, architecture, precision,
                                  functional=False, width=width, height=height),
            benchmark, iterations)
    else:
        width, height, depth = benchmark.domain
        results["ssam"] = _throughput(
            ssam_stencil3d_analytic(spec, width, height, depth, iterations, architecture,
                                    precision),
            benchmark, iterations)
        results["original"] = _throughput(
            original_stencil3d(None, spec, iterations, architecture, precision,
                               functional=False, width=width, height=height, depth=depth),
            benchmark, iterations)
        shared = _throughput(
            shared_stencil3d(spec, width, height, depth, iterations, architecture, precision),
            benchmark, iterations)
        results["ppcg"] = shared
        results["halide"] = shared * 0.9
        # the register-reordering schemes degrade gracefully to the naive
        # traffic profile in 3-D (column reuse only along y)
        results["reordered"] = results["original"] * 1.25
        results["unrolled"] = results["original"] * 1.1
    return results


def run(architecture: str = "p100", precision: str = "float32",
        benchmarks: Sequence[str] = FIGURE5_BENCHMARKS,
        iterations: int = 1) -> Dict[str, object]:
    """One Figure 5 panel."""
    series: Dict[str, List[float]] = {name: [] for name in IMPLEMENTATIONS}
    for name in benchmarks:
        benchmark = CATALOG[name]
        row = run_benchmark(benchmark, architecture, precision, iterations)
        for impl in IMPLEMENTATIONS:
            series[impl].append(row.get(impl))
    ssam_wins = sum(
        1 for i in range(len(benchmarks))
        if series["ssam"][i] >= max(series[impl][i] for impl in IMPLEMENTATIONS
                                    if impl != "ssam" and series[impl][i] is not None)
    )
    return {
        "architecture": architecture,
        "precision": precision,
        "benchmarks": list(benchmarks),
        "gcells_per_second": series,
        "ssam_wins": ssam_wins,
        "total": len(benchmarks),
    }


def run_all(benchmarks: Sequence[str] = FIGURE5_BENCHMARKS,
            iterations: int = 1) -> Dict[str, object]:
    """All four panels of Figure 5."""
    return {
        "figure5a": run("p100", "float32", benchmarks, iterations),
        "figure5b": run("v100", "float32", benchmarks, iterations),
        "figure5c": run("p100", "float64", benchmarks, iterations),
        "figure5d": run("v100", "float64", benchmarks, iterations),
    }


def report(benchmarks: Sequence[str] = FIGURE5_BENCHMARKS, iterations: int = 1) -> str:
    """Formatted four-panel Figure 5 report."""
    chunks = []
    for key, panel in run_all(benchmarks, iterations).items():
        chunks.append(format_series(
            f"Figure {key[-2:]} — stencil throughput, {panel['architecture'].upper()} "
            f"{panel['precision']}",
            "benchmark", panel["benchmarks"], panel["gcells_per_second"],
            unit="GCells/s"))
        chunks.append(f"SSAM fastest or tied on {panel['ssam_wins']}/{panel['total']} benchmarks")
    return "\n\n".join(chunks)
