"""Figure 5: stencil throughput (GCells/s) across the Table 3 suite.

Four panels: {P100, V100} x {single, double} precision, comparing SSAM with
the "original", "reordered", "unrolled", ppcg and Halide implementations on
the 8192^2 / 512^3 domains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.metrics import gcells_per_second
from ..analysis.tables import format_series
from ..baselines.stencil2d import (
    halide_like_stencil2d,
    original_stencil2d,
    ppcg_like_stencil2d,
    reordered_stencil2d,
    unrolled_stencil2d,
)
from ..baselines.stencil3d import original_stencil3d, shared_stencil3d
from ..kernels.stencil2d_ssam import analytic_launch as ssam_stencil2d_analytic
from ..kernels.stencil3d_ssam import analytic_launch as ssam_stencil3d_analytic
from ..stencils.catalog import CATALOG, FIGURE5_BENCHMARKS, StencilBenchmark
from .jobs import SimulationJob
from .results import ExperimentResult, Measurement

IMPLEMENTATIONS = ("original", "reordered", "unrolled", "ppcg", "halide", "ssam")
#: benchmark subset used by ``--quick`` runs
QUICK_BENCHMARKS = ("2d5pt", "2d9pt", "2d25pt", "3d7pt", "poisson")
#: the four panels of the figure
PANELS = (("figure5a", "p100", "float32"), ("figure5b", "v100", "float32"),
          ("figure5c", "p100", "float64"), ("figure5d", "v100", "float64"))

#: approximate values read off the paper's Figure 5 for the SSAM series
#: (GCells/s), used by EXPERIMENTS.md for paper-vs-measured comparison
PAPER_SSAM_GCELLS = {
    ("p100", "float32", "2d5pt"): 60.0, ("p100", "float32", "3d7pt"): 48.0,
    ("v100", "float32", "2d5pt"): 90.0, ("v100", "float32", "3d7pt"): 70.0,
    ("p100", "float64", "2d5pt"): 32.0, ("v100", "float64", "2d5pt"): 45.0,
}


def _throughput(result, benchmark: StencilBenchmark, iterations: int) -> float:
    return result.gcells_per_second(benchmark.cells, iterations)


def run_benchmark(benchmark: StencilBenchmark, architecture: str, precision: str,
                  iterations: int = 1) -> Dict[str, float]:
    """GCells/s of every implementation on one Table 3 benchmark."""
    spec = benchmark.spec
    results: Dict[str, float] = {}
    if spec.dims == 2:
        width, height = benchmark.domain
        results["ssam"] = _throughput(
            ssam_stencil2d_analytic(spec, width, height, iterations, architecture, precision),
            benchmark, iterations)
        results["original"] = _throughput(
            original_stencil2d(None, spec, iterations, architecture, precision,
                               functional=False, width=width, height=height),
            benchmark, iterations)
        results["reordered"] = _throughput(
            reordered_stencil2d(spec, width, height, iterations, architecture, precision),
            benchmark, iterations)
        results["unrolled"] = _throughput(
            unrolled_stencil2d(spec, width, height, iterations, architecture, precision),
            benchmark, iterations)
        results["ppcg"] = _throughput(
            ppcg_like_stencil2d(None, spec, iterations, architecture, precision,
                                functional=False, width=width, height=height),
            benchmark, iterations)
        results["halide"] = _throughput(
            halide_like_stencil2d(None, spec, iterations, architecture, precision,
                                  functional=False, width=width, height=height),
            benchmark, iterations)
    else:
        width, height, depth = benchmark.domain
        results["ssam"] = _throughput(
            ssam_stencil3d_analytic(spec, width, height, depth, iterations, architecture,
                                    precision),
            benchmark, iterations)
        results["original"] = _throughput(
            original_stencil3d(None, spec, iterations, architecture, precision,
                               functional=False, width=width, height=height, depth=depth),
            benchmark, iterations)
        shared = _throughput(
            shared_stencil3d(spec, width, height, depth, iterations, architecture, precision),
            benchmark, iterations)
        results["ppcg"] = shared
        results["halide"] = shared * 0.9
        # the register-reordering schemes degrade gracefully to the naive
        # traffic profile in 3-D (column reuse only along y)
        results["reordered"] = results["original"] * 1.25
        results["unrolled"] = results["original"] * 1.1
    return results


def _measure_benchmark(benchmark: str, architecture: str, precision: str,
                       iterations: int) -> Dict[str, float]:
    """Worker: GCells/s of every implementation on one benchmark."""
    row = run_benchmark(CATALOG[benchmark], architecture, precision, iterations)
    return {"gcells_per_second": row}


# --------------------------------------------------------------- pipeline

def jobs(quick: bool = False, benchmarks: Optional[Sequence[str]] = None,
         iterations: int = 1) -> List[SimulationJob]:
    """One independent job per (panel, benchmark)."""
    names = tuple(benchmarks if benchmarks is not None
                  else (QUICK_BENCHMARKS if quick else FIGURE5_BENCHMARKS))
    out: List[SimulationJob] = []
    for _, arch, precision in PANELS:
        for name in names:
            spec = CATALOG[name].spec
            out.append(SimulationJob(
                key=f"figure5:{arch}:{precision}:{name}:i{iterations}",
                func="repro.experiments.figure5:_measure_benchmark",
                params={"benchmark": name, "architecture": arch,
                        "precision": precision, "iterations": iterations},
                cache_fields={"kernel": "stencil_suite",
                              "spec": spec.fingerprint(),
                              "architecture": arch, "precision": precision,
                              "engine": "analytic",
                              "domain": list(CATALOG[name].domain)},
            ))
    return out


def assemble(payloads: Dict[str, Dict[str, object]], quick: bool = False,
             benchmarks: Optional[Sequence[str]] = None,
             iterations: int = 1) -> ExperimentResult:
    """Fold per-benchmark payloads into the typed four-panel result."""
    names = tuple(benchmarks if benchmarks is not None
                  else (QUICK_BENCHMARKS if quick else FIGURE5_BENCHMARKS))
    measurements: List[Measurement] = []
    panels: Dict[str, Dict[str, object]] = {}
    for panel_key, arch, precision in PANELS:
        series: Dict[str, List[Optional[float]]] = {impl: [] for impl in IMPLEMENTATIONS}
        for name in names:
            key = f"figure5:{arch}:{precision}:{name}:i{iterations}"
            row = payloads[key]["gcells_per_second"]
            for impl in IMPLEMENTATIONS:
                value = row.get(impl)
                series[impl].append(value)
                measurements.append(Measurement(
                    kernel=impl, architecture=f"{arch}:{precision}",
                    workload=name,
                    config={"iterations": iterations,
                            "domain": list(CATALOG[name].domain)},
                    value=value, unit="GCells/s"))
        ssam_wins = sum(
            1 for i in range(len(names))
            if series["ssam"][i] >= max(series[impl][i] for impl in IMPLEMENTATIONS
                                        if impl != "ssam" and series[impl][i] is not None)
        )
        panels[panel_key] = {
            "architecture": arch,
            "precision": precision,
            "benchmarks": list(names),
            "ssam_wins": ssam_wins,
            "total": len(names),
        }
    return ExperimentResult(
        experiment="figure5",
        title="Figure 5 — stencil throughput across the Table 3 suite",
        quick=quick,
        measurements=measurements,
        metadata={"panels": panels, "iterations": iterations,
                  "implementations": list(IMPLEMENTATIONS)},
    )


def render(result: ExperimentResult) -> str:
    """Format the four-panel report from the typed result (pure view)."""
    chunks = []
    for panel_key, panel in result.metadata["panels"].items():
        arch, precision = panel["architecture"], panel["precision"]
        series = {
            impl: [result.series_value(impl, f"{arch}:{precision}", name)
                   for name in panel["benchmarks"]]
            for impl in result.metadata["implementations"]
        }
        chunks.append(format_series(
            f"Figure {panel_key[-2:]} — stencil throughput, {arch.upper()} "
            f"{precision}",
            "benchmark", panel["benchmarks"], series, unit="GCells/s"))
        chunks.append(f"SSAM fastest or tied on {panel['ssam_wins']}/{panel['total']} benchmarks")
    return "\n\n".join(chunks)


# --------------------------------------------------------- legacy surface

def run(architecture: str = "p100", precision: str = "float32",
        benchmarks: Sequence[str] = FIGURE5_BENCHMARKS,
        iterations: int = 1) -> Dict[str, object]:
    """One Figure 5 panel."""
    series: Dict[str, List[float]] = {name: [] for name in IMPLEMENTATIONS}
    for name in benchmarks:
        benchmark = CATALOG[name]
        row = run_benchmark(benchmark, architecture, precision, iterations)
        for impl in IMPLEMENTATIONS:
            series[impl].append(row.get(impl))
    ssam_wins = sum(
        1 for i in range(len(benchmarks))
        if series["ssam"][i] >= max(series[impl][i] for impl in IMPLEMENTATIONS
                                    if impl != "ssam" and series[impl][i] is not None)
    )
    return {
        "architecture": architecture,
        "precision": precision,
        "benchmarks": list(benchmarks),
        "gcells_per_second": series,
        "ssam_wins": ssam_wins,
        "total": len(benchmarks),
    }


def run_all(benchmarks: Sequence[str] = FIGURE5_BENCHMARKS,
            iterations: int = 1) -> Dict[str, object]:
    """All four panels of Figure 5."""
    return {
        panel_key: run(arch, precision, benchmarks, iterations)
        for panel_key, arch, precision in PANELS
    }


def report(benchmarks: Sequence[str] = FIGURE5_BENCHMARKS, iterations: int = 1) -> str:
    """Formatted four-panel Figure 5 report (serial, in-process)."""
    from .parallel import execute_jobs

    job_list = jobs(benchmarks=benchmarks, iterations=iterations)
    payloads = execute_jobs(job_list)
    return render(assemble(payloads, benchmarks=benchmarks, iterations=iterations))
