"""Simulation jobs: the unit of parallelism and caching in the pipeline.

Each experiment decomposes its tables/figures into independent
:class:`SimulationJob` records — pure, picklable descriptions of one
simulation (worker function + JSON parameters).  The executor in
:mod:`repro.experiments.parallel` runs them inline or across a process
pool, memoising payloads through :mod:`repro.experiments.cache`; the
experiment's ``assemble`` step then folds the keyed payloads back into a
typed :class:`~repro.experiments.results.ExperimentResult` in a fixed
order, so the rendered report is byte-identical regardless of worker count
or cache state.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from ..errors import ConfigurationError
from ..serialization import jsonify


@dataclass(frozen=True)
class SimulationJob:
    """One independent simulation of an experiment.

    Attributes
    ----------
    key:
        Deterministic unique identifier, e.g. ``"figure4:p100:ssam:9"``;
        payloads are collected under this key.
    func:
        Worker function as ``"module.path:function"``; resolved lazily so
        jobs pickle cheaply into worker processes.
    params:
        JSON-serialisable keyword arguments of the worker.
    cache_fields:
        Extra cache-key fields beyond ``func``/``params``: kernel id, spec
        and launch-config fingerprints, engine/mode.
    """

    key: str
    func: str
    params: Mapping[str, object] = field(default_factory=dict)
    cache_fields: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", jsonify(self.params))
        object.__setattr__(self, "cache_fields", jsonify(self.cache_fields))

    def cache_key(self) -> Dict[str, object]:
        """The stable identity this job's payload is memoised under."""
        return {"func": self.func, "params": dict(self.params),
                **dict(self.cache_fields)}


def resolve_worker(path: str) -> Callable[..., Mapping[str, object]]:
    """Import the worker function named by a ``"module:function"`` path."""
    module_name, _, func_name = path.partition(":")
    if not module_name or not func_name:
        raise ConfigurationError(f"malformed worker path {path!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError as exc:
        raise ConfigurationError(
            f"worker {func_name!r} not found in {module_name!r}") from exc


def execute_job(job: SimulationJob) -> Tuple[str, Dict[str, object]]:
    """Run one job and return ``(key, payload)``.

    This is the single execution contract: both the inline path and the
    process-pool path of :func:`repro.experiments.parallel.execute_jobs`
    call it with a :class:`SimulationJob` (the dataclass holds only JSON
    types, so it pickles cheaply into worker processes).  The payload is
    normalised to JSON types so a payload served from the on-disk cache is
    indistinguishable from a freshly computed one.
    """
    if not isinstance(job, SimulationJob):
        raise ConfigurationError(
            f"execute_job expects a SimulationJob, got {type(job).__name__}")
    payload = resolve_worker(job.func)(**dict(job.params))
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"job {job.key!r} worker returned {type(payload).__name__}, "
            f"expected a mapping")
    return job.key, jsonify(payload)


def dedupe_jobs(jobs: List[SimulationJob]) -> List[SimulationJob]:
    """Drop duplicate job keys, keeping first occurrences (stable order)."""
    seen: Dict[str, SimulationJob] = {}
    unique: List[SimulationJob] = []
    for job in jobs:
        previous = seen.get(job.key)
        if previous is None:
            seen[job.key] = job
            unique.append(job)
        elif previous.func != job.func or dict(previous.params) != dict(job.params):
            raise ConfigurationError(
                f"conflicting definitions for job key {job.key!r}")
    return unique
