"""Figure 6: comparison with temporal/spatial blocking libraries.

Four panels ({P100, V100} x {single, double}) over the benchmarks 2d5pt,
2d9pt, 3d7pt, 3d13pt and poisson, comparing SSAM (register temporal
blocking) with StencilGen-style shared-memory temporal blocking and the
published Diffusion / Bricks numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.tables import format_series
from ..baselines.temporal import (
    published_reference,
    ssam_temporal_stencil,
    stencilgen_like_stencil,
)
from ..stencils.catalog import CATALOG, FIGURE6_BENCHMARKS
from .jobs import SimulationJob
from .results import ExperimentResult, Measurement

IMPLEMENTATIONS = ("stencilgen", "ssam", "diffusion", "bricks")
#: number of fused/total time steps used for the throughput evaluation
TIME_STEPS = 64
#: the four panels of the figure
PANELS = (("figure6a", "p100", "float32"), ("figure6b", "p100", "float64"),
          ("figure6c", "v100", "float32"), ("figure6d", "v100", "float64"))


def _measure_benchmark(benchmark: str, architecture: str, precision: str,
                       time_steps: int) -> Dict[str, object]:
    """Worker: temporal-blocking throughputs on one benchmark.

    The ``diffusion``/``bricks`` series are published reference numbers
    (table lookups, only reported for 3d7pt) and ride along in the payload
    so the panel is complete.
    """
    bench = CATALOG[benchmark]
    spec = bench.spec
    if spec.dims == 2:
        width, height = bench.domain
        depth = 1
    else:
        width, height, depth = bench.domain
    sg = stencilgen_like_stencil(spec, width, height, depth, time_steps=time_steps,
                                 architecture=architecture, precision=precision)
    ss = ssam_temporal_stencil(spec, width, height, depth, time_steps=time_steps,
                               architecture=architecture, precision=precision)
    published = benchmark == "3d7pt"
    return {
        "gcells_per_second": {
            "stencilgen": sg.gcells_per_second(bench.cells, time_steps),
            "ssam": ss.gcells_per_second(bench.cells, time_steps),
            "diffusion": published_reference("diffusion", architecture, precision)
            if published else None,
            "bricks": published_reference("bricks", architecture, precision)
            if published else None,
        },
    }


# --------------------------------------------------------------- pipeline

def jobs(quick: bool = False, benchmarks: Optional[Sequence[str]] = None,
         time_steps: int = TIME_STEPS) -> List[SimulationJob]:
    """One independent job per (panel, benchmark).

    Figure 6's benchmark list is already small (5 entries), so ``--quick``
    keeps the full sweep and only the shared time-step count applies.
    """
    names = tuple(benchmarks if benchmarks is not None else FIGURE6_BENCHMARKS)
    out: List[SimulationJob] = []
    for _, arch, precision in PANELS:
        for name in names:
            out.append(SimulationJob(
                key=f"figure6:{arch}:{precision}:{name}:t{time_steps}",
                func="repro.experiments.figure6:_measure_benchmark",
                params={"benchmark": name, "architecture": arch,
                        "precision": precision, "time_steps": time_steps},
                cache_fields={"kernel": "temporal_blocking",
                              "spec": CATALOG[name].spec.fingerprint(),
                              "architecture": arch, "precision": precision,
                              "engine": "analytic",
                              "domain": list(CATALOG[name].domain)},
            ))
    return out


def assemble(payloads: Dict[str, Dict[str, object]], quick: bool = False,
             benchmarks: Optional[Sequence[str]] = None,
             time_steps: int = TIME_STEPS) -> ExperimentResult:
    """Fold per-benchmark payloads into the typed four-panel result."""
    names = tuple(benchmarks if benchmarks is not None else FIGURE6_BENCHMARKS)
    measurements: List[Measurement] = []
    panels: Dict[str, Dict[str, object]] = {}
    for panel_key, arch, precision in PANELS:
        for name in names:
            key = f"figure6:{arch}:{precision}:{name}:t{time_steps}"
            row = payloads[key]["gcells_per_second"]
            for impl in IMPLEMENTATIONS:
                measurements.append(Measurement(
                    kernel=impl, architecture=f"{arch}:{precision}",
                    workload=name,
                    config={"time_steps": time_steps,
                            "domain": list(CATALOG[name].domain)},
                    value=row.get(impl), unit="GCells/s"))
        panels[panel_key] = {
            "architecture": arch,
            "precision": precision,
            "benchmarks": list(names),
        }
    return ExperimentResult(
        experiment="figure6",
        title="Figure 6 — temporal blocking comparison",
        quick=quick,
        measurements=measurements,
        metadata={"panels": panels, "time_steps": time_steps,
                  "implementations": list(IMPLEMENTATIONS)},
    )


def render(result: ExperimentResult) -> str:
    """Format the four-panel report from the typed result (pure view)."""
    chunks = []
    for panel_key, panel in result.metadata["panels"].items():
        arch, precision = panel["architecture"], panel["precision"]
        series = {
            impl: [result.series_value(impl, f"{arch}:{precision}", name)
                   for name in panel["benchmarks"]]
            for impl in result.metadata["implementations"]
        }
        chunks.append(format_series(
            f"Figure {panel_key[-2:]} — temporal blocking, {arch.upper()} "
            f"{precision}",
            "benchmark", panel["benchmarks"], series, unit="GCells/s"))
    return "\n\n".join(chunks)


# --------------------------------------------------------- legacy surface

def run(architecture: str = "p100", precision: str = "float32",
        benchmarks: Sequence[str] = FIGURE6_BENCHMARKS,
        time_steps: int = TIME_STEPS) -> Dict[str, object]:
    """One Figure 6 panel (GCells/s per implementation per benchmark)."""
    series: Dict[str, List[Optional[float]]] = {name: [] for name in IMPLEMENTATIONS}
    for name in benchmarks:
        row = _measure_benchmark(name, architecture, precision, time_steps)
        for impl in IMPLEMENTATIONS:
            series[impl].append(row["gcells_per_second"].get(impl))
    return {
        "architecture": architecture,
        "precision": precision,
        "benchmarks": list(benchmarks),
        "gcells_per_second": series,
        "time_steps": time_steps,
    }


def run_all(benchmarks: Sequence[str] = FIGURE6_BENCHMARKS,
            time_steps: int = TIME_STEPS) -> Dict[str, object]:
    """All four panels of Figure 6."""
    return {
        panel_key: run(arch, precision, benchmarks, time_steps)
        for panel_key, arch, precision in PANELS
    }


def report(benchmarks: Sequence[str] = FIGURE6_BENCHMARKS,
           time_steps: int = TIME_STEPS) -> str:
    """Formatted four-panel Figure 6 report (serial, in-process)."""
    from .parallel import execute_jobs

    job_list = jobs(benchmarks=benchmarks, time_steps=time_steps)
    payloads = execute_jobs(job_list)
    return render(assemble(payloads, benchmarks=benchmarks, time_steps=time_steps))
