"""Figure 6: comparison with temporal/spatial blocking libraries.

Four panels ({P100, V100} x {single, double}) over the benchmarks 2d5pt,
2d9pt, 3d7pt, 3d13pt and poisson, comparing SSAM (register temporal
blocking) with StencilGen-style shared-memory temporal blocking and the
published Diffusion / Bricks numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.tables import format_series
from ..baselines.temporal import (
    published_reference,
    ssam_temporal_stencil,
    stencilgen_like_stencil,
)
from ..stencils.catalog import CATALOG, FIGURE6_BENCHMARKS

IMPLEMENTATIONS = ("stencilgen", "ssam", "diffusion", "bricks")
#: number of fused/total time steps used for the throughput evaluation
TIME_STEPS = 64


def run(architecture: str = "p100", precision: str = "float32",
        benchmarks: Sequence[str] = FIGURE6_BENCHMARKS,
        time_steps: int = TIME_STEPS) -> Dict[str, object]:
    """One Figure 6 panel (GCells/s per implementation per benchmark)."""
    series: Dict[str, List[Optional[float]]] = {name: [] for name in IMPLEMENTATIONS}
    for name in benchmarks:
        benchmark = CATALOG[name]
        spec = benchmark.spec
        if spec.dims == 2:
            width, height = benchmark.domain
            depth = 1
        else:
            width, height, depth = benchmark.domain
        cells = benchmark.cells
        sg = stencilgen_like_stencil(spec, width, height, depth, time_steps=time_steps,
                                     architecture=architecture, precision=precision)
        ss = ssam_temporal_stencil(spec, width, height, depth, time_steps=time_steps,
                                   architecture=architecture, precision=precision)
        series["stencilgen"].append(sg.gcells_per_second(cells, time_steps))
        series["ssam"].append(ss.gcells_per_second(cells, time_steps))
        series["diffusion"].append(
            published_reference("diffusion", architecture, precision) if name == "3d7pt" else None)
        series["bricks"].append(
            published_reference("bricks", architecture, precision) if name == "3d7pt" else None)
    return {
        "architecture": architecture,
        "precision": precision,
        "benchmarks": list(benchmarks),
        "gcells_per_second": series,
        "time_steps": time_steps,
    }


def run_all(benchmarks: Sequence[str] = FIGURE6_BENCHMARKS,
            time_steps: int = TIME_STEPS) -> Dict[str, object]:
    """All four panels of Figure 6."""
    return {
        "figure6a": run("p100", "float32", benchmarks, time_steps),
        "figure6b": run("p100", "float64", benchmarks, time_steps),
        "figure6c": run("v100", "float32", benchmarks, time_steps),
        "figure6d": run("v100", "float64", benchmarks, time_steps),
    }


def report(benchmarks: Sequence[str] = FIGURE6_BENCHMARKS,
           time_steps: int = TIME_STEPS) -> str:
    """Formatted four-panel Figure 6 report."""
    chunks = []
    for key, panel in run_all(benchmarks, time_steps).items():
        chunks.append(format_series(
            f"Figure {key[-2:]} — temporal blocking, {panel['architecture'].upper()} "
            f"{panel['precision']}",
            "benchmark", panel["benchmarks"], panel["gcells_per_second"],
            unit="GCells/s"))
    return "\n\n".join(chunks)
