"""Table 1: shared memory and register files on the evaluated GPUs."""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import format_table
from ..gpu.architecture import table1_rows

#: the values printed in the paper's Table 1, for comparison
PAPER_TABLE1 = {
    "Tesla K40": {"shared_memory_per_sm_kib": 48, "registers_per_sm": 65536, "sm_count": 15},
    "Tesla M40": {"shared_memory_per_sm_kib": 96, "registers_per_sm": 65536, "sm_count": 24},
    "Tesla P100": {"shared_memory_per_sm_kib": 64, "registers_per_sm": 65536, "sm_count": 56},
    "Tesla V100": {"shared_memory_per_sm_kib": 96, "registers_per_sm": 65536, "sm_count": 80},
}


def run() -> List[Dict[str, object]]:
    """Regenerate Table 1 from the architecture presets."""
    rows = []
    for row in table1_rows():
        paper = PAPER_TABLE1[row["gpu"]]
        rows.append({**row, "matches_paper": all(row[k] == v for k, v in paper.items())})
    return rows


def report() -> str:
    """Formatted Table 1 report."""
    return "Table 1 — Shared memory and register files on GPUs\n" + format_table(run())
