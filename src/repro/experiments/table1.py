"""Table 1: shared memory and register files on the evaluated GPUs."""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import format_table
from ..gpu.architecture import table1_rows
from .jobs import SimulationJob
from .results import ExperimentResult, Measurement

TITLE = "Table 1 — Shared memory and register files on GPUs"

#: the values printed in the paper's Table 1, for comparison
PAPER_TABLE1 = {
    "Tesla K40": {"shared_memory_per_sm_kib": 48, "registers_per_sm": 65536, "sm_count": 15},
    "Tesla M40": {"shared_memory_per_sm_kib": 96, "registers_per_sm": 65536, "sm_count": 24},
    "Tesla P100": {"shared_memory_per_sm_kib": 64, "registers_per_sm": 65536, "sm_count": 56},
    "Tesla V100": {"shared_memory_per_sm_kib": 96, "registers_per_sm": 65536, "sm_count": 80},
}


def run() -> List[Dict[str, object]]:
    """Regenerate Table 1 from the architecture presets."""
    rows = []
    for row in table1_rows():
        paper = PAPER_TABLE1[row["gpu"]]
        rows.append({**row, "matches_paper": all(row[k] == v for k, v in paper.items())})
    return rows


def _measure_rows() -> Dict[str, object]:
    """Worker: the Table 1 rows (architecture presets vs. paper values)."""
    return {"rows": run()}


# --------------------------------------------------------------- pipeline

def jobs(quick: bool = False) -> List[SimulationJob]:
    """Single job — the table is static preset metadata, so ``quick`` has
    no work to trim (the flag is still threaded through for uniformity)."""
    return [SimulationJob(
        key="table1:rows",
        func="repro.experiments.table1:_measure_rows",
        cache_fields={"kernel": "table1_presets", "engine": "preset"},
    )]


def assemble(payloads: Dict[str, Dict[str, object]],
             quick: bool = False) -> ExperimentResult:
    rows = payloads["table1:rows"]["rows"]
    measurements = [
        Measurement(kernel="table1", architecture=row["gpu"],
                    workload=row["gpu"], extra=row)
        for row in rows
    ]
    return ExperimentResult(experiment="table1", title=TITLE, quick=quick,
                            measurements=measurements)


def render(result: ExperimentResult) -> str:
    return f"{TITLE}\n" + format_table(result.rows())


def report(quick: bool = False) -> str:
    """Formatted Table 1 report."""
    from .parallel import execute_jobs

    return render(assemble(execute_jobs(jobs(quick)), quick))
