"""Table 2: measured operation latencies (cycles/warp) on P100 and V100."""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import format_table
from ..gpu.architecture import get_architecture
from ..gpu.microbench import TABLE2_OPERATIONS, measure_latency
from .jobs import SimulationJob
from .results import ExperimentResult, Measurement

TITLE = "Table 2 — Latency of operations (cycles/warp), micro-benchmarked"
#: dependent-chain length of the full micro-benchmark
CHAIN_LENGTH = 512
#: shorter chain used by --quick runs (latency = cycles / length, so the
#: measured value is identical; only the functional warm-up loop shrinks)
QUICK_CHAIN_LENGTH = 128
ARCHITECTURES = ("p100", "v100")

#: the paper's measured values, cycles per warp
PAPER_TABLE2 = {
    ("Tesla P100", "shfl_up_sync"): 33.0,
    ("Tesla P100", "add, sub, mad"): 6.0,
    ("Tesla P100", "smem_read"): 33.0,
    ("Tesla V100", "shfl_up_sync"): 22.0,
    ("Tesla V100", "add, sub, mad"): 4.0,
    ("Tesla V100", "smem_read"): 27.0,
}


def _measure_latency(architecture: str, operation: str,
                     chain_length: int) -> Dict[str, object]:
    """Worker: one (GPU, operation) dependent-chain micro-benchmark."""
    arch = get_architecture(architecture)
    return {"gpu": arch.name,
            "latency_cycles": measure_latency(arch, operation, chain_length)}


def _compare_row(gpu: str, label: str, latency: float) -> Dict[str, object]:
    paper = PAPER_TABLE2[(gpu, label)]
    return {"gpu": gpu, "operation": label, "latency_cycles": latency,
            "paper_cycles": paper, "matches_paper": abs(latency - paper) < 1e-6}


def run(chain_length: int = CHAIN_LENGTH) -> List[Dict[str, object]]:
    """Regenerate Table 2 with the dependent-chain micro-benchmarks."""
    rows = []
    for arch in ARCHITECTURES:
        for label, op in TABLE2_OPERATIONS:
            payload = _measure_latency(arch, op, chain_length)
            rows.append(_compare_row(payload["gpu"], label,
                                     payload["latency_cycles"]))
    return rows


# --------------------------------------------------------------- pipeline

def jobs(quick: bool = False) -> List[SimulationJob]:
    """One job per (GPU, operation) chain measurement."""
    chain_length = QUICK_CHAIN_LENGTH if quick else CHAIN_LENGTH
    out: List[SimulationJob] = []
    for arch in ARCHITECTURES:
        for label, op in TABLE2_OPERATIONS:
            out.append(SimulationJob(
                key=f"table2:{arch}:{op}:n{chain_length}",
                func="repro.experiments.table2:_measure_latency",
                params={"architecture": arch, "operation": op,
                        "chain_length": chain_length},
                cache_fields={"kernel": f"microbench:{op}",
                              "architecture": arch, "engine": "dependent_chain"},
            ))
    return out


def assemble(payloads: Dict[str, Dict[str, object]],
             quick: bool = False) -> ExperimentResult:
    chain_length = QUICK_CHAIN_LENGTH if quick else CHAIN_LENGTH
    measurements = []
    for arch in ARCHITECTURES:
        for label, op in TABLE2_OPERATIONS:
            payload = payloads[f"table2:{arch}:{op}:n{chain_length}"]
            row = _compare_row(payload["gpu"], label, payload["latency_cycles"])
            measurements.append(Measurement(
                kernel=label, architecture=row["gpu"], workload=op,
                config={"chain_length": chain_length},
                value=row["latency_cycles"], unit="cycles/warp", extra=row))
    return ExperimentResult(experiment="table2", title=TITLE, quick=quick,
                            measurements=measurements,
                            metadata={"chain_length": chain_length})


def render(result: ExperimentResult) -> str:
    return f"{TITLE}\n" + format_table(result.rows())


def report(quick: bool = False) -> str:
    """Formatted Table 2 report."""
    from .parallel import execute_jobs

    return render(assemble(execute_jobs(jobs(quick)), quick))
