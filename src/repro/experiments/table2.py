"""Table 2: measured operation latencies (cycles/warp) on P100 and V100."""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import format_table
from ..gpu.microbench import run_table2

#: the paper's measured values, cycles per warp
PAPER_TABLE2 = {
    ("Tesla P100", "shfl_up_sync"): 33.0,
    ("Tesla P100", "add, sub, mad"): 6.0,
    ("Tesla P100", "smem_read"): 33.0,
    ("Tesla V100", "shfl_up_sync"): 22.0,
    ("Tesla V100", "add, sub, mad"): 4.0,
    ("Tesla V100", "smem_read"): 27.0,
}


def run(chain_length: int = 512) -> List[Dict[str, object]]:
    """Regenerate Table 2 with the dependent-chain micro-benchmarks."""
    rows = []
    for row in run_table2(chain_length=chain_length):
        paper = PAPER_TABLE2[(row["gpu"], row["operation"])]
        rows.append({**row, "paper_cycles": paper,
                     "matches_paper": abs(row["latency_cycles"] - paper) < 1e-6})
    return rows


def report() -> str:
    """Formatted Table 2 report."""
    return ("Table 2 — Latency of operations (cycles/warp), micro-benchmarked\n"
            + format_table(run()))
