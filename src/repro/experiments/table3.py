"""Table 3: the stencil benchmark suite (order k and FLOPs per point)."""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import format_table
from ..stencils.catalog import CATALOG, DOMAIN_2D, DOMAIN_3D, table3_rows

#: (k, FPP) from the paper's Table 3
PAPER_TABLE3 = {
    "2d5pt": (1, 9), "2d9pt": (2, 17), "2d13pt": (3, 25), "2d17pt": (4, 33),
    "2d21pt": (5, 41), "2ds25pt": (6, 49), "2d25pt": (2, 33), "2d64pt": (4, 73),
    "2d81pt": (4, 95), "2d121pt": (5, 241), "3d7pt": (1, 13), "3d13pt": (2, 25),
    "3d27pt": (1, 30), "3d125pt": (2, 130), "poisson": (1, 21),
}


def run() -> List[Dict[str, object]]:
    """Regenerate Table 3 from the stencil catalog."""
    rows = []
    for row in table3_rows():
        name = row["benchmark"]
        paper_k, paper_fpp = PAPER_TABLE3[name]
        bench = CATALOG[name]
        rows.append({
            **row,
            "points": bench.spec.num_points,
            "domain": "x".join(str(d) for d in bench.domain),
            "paper_k": paper_k,
            "paper_fpp": paper_fpp,
            "matches_paper": (row["k"] == paper_k and row["fpp"] == paper_fpp),
        })
    return rows


def report() -> str:
    """Formatted Table 3 report."""
    header = (f"Table 3 — Stencil benchmarks (2-D domain {DOMAIN_2D[0]}^2, "
              f"3-D domain {DOMAIN_3D[0]}^3)\n")
    return header + format_table(run())
