"""Table 3: the stencil benchmark suite (order k and FLOPs per point)."""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import format_table
from ..stencils.catalog import CATALOG, DOMAIN_2D, DOMAIN_3D, table3_rows
from .jobs import SimulationJob
from .results import ExperimentResult, Measurement

TITLE = (f"Table 3 — Stencil benchmarks (2-D domain {DOMAIN_2D[0]}^2, "
         f"3-D domain {DOMAIN_3D[0]}^3)")

#: (k, FPP) from the paper's Table 3
PAPER_TABLE3 = {
    "2d5pt": (1, 9), "2d9pt": (2, 17), "2d13pt": (3, 25), "2d17pt": (4, 33),
    "2d21pt": (5, 41), "2ds25pt": (6, 49), "2d25pt": (2, 33), "2d64pt": (4, 73),
    "2d81pt": (4, 95), "2d121pt": (5, 241), "3d7pt": (1, 13), "3d13pt": (2, 25),
    "3d27pt": (1, 30), "3d125pt": (2, 130), "poisson": (1, 21),
}


def run() -> List[Dict[str, object]]:
    """Regenerate Table 3 from the stencil catalog."""
    rows = []
    for row in table3_rows():
        name = row["benchmark"]
        paper_k, paper_fpp = PAPER_TABLE3[name]
        bench = CATALOG[name]
        rows.append({
            **row,
            "points": bench.spec.num_points,
            "domain": "x".join(str(d) for d in bench.domain),
            "paper_k": paper_k,
            "paper_fpp": paper_fpp,
            "matches_paper": (row["k"] == paper_k and row["fpp"] == paper_fpp),
        })
    return rows


def _measure_rows() -> Dict[str, object]:
    """Worker: the Table 3 rows (stencil catalog vs. paper values)."""
    return {"rows": run()}


# --------------------------------------------------------------- pipeline

def jobs(quick: bool = False) -> List[SimulationJob]:
    """Single job — catalog metadata only, no simulation to trim under
    ``quick`` (the flag is still threaded through for uniformity)."""
    return [SimulationJob(
        key="table3:rows",
        func="repro.experiments.table3:_measure_rows",
        cache_fields={"kernel": "table3_catalog", "engine": "catalog",
                      "specs": sorted(CATALOG[name].spec.fingerprint()
                                      for name in CATALOG)},
    )]


def assemble(payloads: Dict[str, Dict[str, object]],
             quick: bool = False) -> ExperimentResult:
    rows = payloads["table3:rows"]["rows"]
    measurements = [
        Measurement(kernel="table3", workload=row["benchmark"], extra=row)
        for row in rows
    ]
    return ExperimentResult(experiment="table3", title=TITLE, quick=quick,
                            measurements=measurements)


def render(result: ExperimentResult) -> str:
    return f"{TITLE}\n" + format_table(result.rows())


def report(quick: bool = False) -> str:
    """Formatted Table 3 report."""
    from .parallel import execute_jobs

    return render(assemble(execute_jobs(jobs(quick)), quick))
