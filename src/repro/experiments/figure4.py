"""Figure 4: 2-D convolution runtime vs. filter size on P100 and V100.

The paper sweeps square filters from 2x2 to 20x20 over an 8192^2 single
precision image (P=4, B=128) and compares SSAM against ArrayFire, NPP,
cuFFT, Halide and cuDNN.  This module regenerates both panels from the
kernels' cost profiles on the simulated architectures.

Structure (shared by every experiment module):

* ``_measure_cell`` — the simulation worker: one (implementation,
  filter size, architecture) point, returning a JSON payload;
* ``jobs``/``assemble``/``render`` — the pipeline surface used by the
  runner: independent jobs, deterministic folding of their payloads into a
  typed :class:`~repro.experiments.results.ExperimentResult`, and the pure
  text view over that result;
* ``run``/``run_both``/``report`` — the legacy in-process API, now thin
  wrappers over the same worker.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from ..analysis.metrics import geometric_mean, speedup
from ..analysis.tables import format_series
from ..baselines.conv2d import ARRAYFIRE_MAX_FILTER
from ..convolution.spec import ConvolutionSpec
from ..scenarios import get_scenario
from .jobs import SimulationJob
from .results import ExperimentResult, Measurement

#: evaluation parameters from Section 6.2
IMAGE_WIDTH = 8192
IMAGE_HEIGHT = 8192
FILTER_SIZES = tuple(range(2, 21))
#: reduced sweep used by ``--quick`` runs
QUICK_FILTER_SIZES = (3, 5, 9, 13, 17, 20)
IMPLEMENTATIONS = ("ssam", "arrayfire", "npp", "halide", "cudnn", "cufft")
#: the two panels of the figure
PANELS = (("figure4a", "p100"), ("figure4b", "v100"))

def _scenario_name(implementation: str) -> str:
    """Map a figure series name onto its registered conv2d scenario."""
    return "conv2d" if implementation == "ssam" else f"conv2d-{implementation}"


def _measure_impl(implementation: str, filter_size: int, architecture: str,
                  precision: str, width: int, height: int):
    """Simulate one implementation at one filter size (or ``None`` if the
    implementation does not support the size, like ArrayFire above 16).

    Implementations are looked up in the scenario registry and evaluated
    through their registered analytic engine.
    """
    if implementation == "arrayfire" and filter_size > ARRAYFIRE_MAX_FILTER:
        return None
    spec = ConvolutionSpec.gaussian(filter_size)
    scenario = get_scenario(_scenario_name(implementation))
    return scenario.run_analytic(spec, {"width": width, "height": height},
                                 architecture, precision)


def _measure_cell(implementation: str, filter_size: int, architecture: str,
                  precision: str, width: int, height: int) -> Dict[str, object]:
    """Worker: payload of one Figure 4 cell (time + counters + config)."""
    result = _measure_impl(implementation, filter_size, architecture,
                           precision, width, height)
    if result is None:
        return {"milliseconds": None}
    return {
        "milliseconds": result.milliseconds,
        "counters": result.launch.counters.as_dict(),
        "config": result.launch.config.to_dict(),
        "kernel_name": result.launch.kernel_name,
    }


# --------------------------------------------------------------- pipeline

@lru_cache(maxsize=None)
def _spec_fingerprint(filter_size: int) -> str:
    """Fingerprint of the Gaussian sweep spec at one size (job cache keys)."""
    return ConvolutionSpec.gaussian(filter_size).fingerprint()


def jobs(quick: bool = False, filter_sizes: Optional[Sequence[int]] = None,
         width: int = IMAGE_WIDTH, height: int = IMAGE_HEIGHT) -> List[SimulationJob]:
    """One independent job per (panel, implementation, filter size)."""
    sizes = tuple(filter_sizes if filter_sizes is not None
                  else (QUICK_FILTER_SIZES if quick else FILTER_SIZES))
    out: List[SimulationJob] = []
    for _, arch in PANELS:
        for impl in IMPLEMENTATIONS:
            for size in sizes:
                out.append(SimulationJob(
                    key=f"figure4:{arch}:float32:{impl}:{size}:{width}x{height}",
                    func="repro.experiments.figure4:_measure_cell",
                    params={"implementation": impl, "filter_size": size,
                            "architecture": arch, "precision": "float32",
                            "width": width, "height": height},
                    cache_fields={"kernel": f"conv2d:{impl}",
                                  "spec": _spec_fingerprint(size),
                                  "architecture": arch, "precision": "float32",
                                  "engine": "analytic",
                                  "domain": [height, width]},
                ))
    return out


def assemble(payloads: Dict[str, Dict[str, object]], quick: bool = False,
             filter_sizes: Optional[Sequence[int]] = None,
             width: int = IMAGE_WIDTH, height: int = IMAGE_HEIGHT) -> ExperimentResult:
    """Fold cell payloads into the typed two-panel result (fixed order)."""
    sizes = tuple(filter_sizes if filter_sizes is not None
                  else (QUICK_FILTER_SIZES if quick else FILTER_SIZES))
    measurements: List[Measurement] = []
    panels: Dict[str, Dict[str, object]] = {}
    for panel_key, arch in PANELS:
        series: Dict[str, List[Optional[float]]] = {}
        for impl in IMPLEMENTATIONS:
            values: List[Optional[float]] = []
            for size in sizes:
                payload = payloads[
                    f"figure4:{arch}:float32:{impl}:{size}:{width}x{height}"]
                ms = payload.get("milliseconds")
                values.append(ms)
                measurements.append(Measurement(
                    kernel=impl, architecture=arch, workload=f"{size}x{size}",
                    config=payload.get("config") or {},
                    counters=payload.get("counters"),
                    milliseconds=ms, value=ms, unit="ms"))
            series[impl] = values
        panels[panel_key] = {
            "architecture": arch,
            "precision": "float32",
            "filter_sizes": list(sizes),
            "summary": summarize(series),
        }
    return ExperimentResult(
        experiment="figure4",
        title="Figure 4 — 2D convolution runtime vs. filter size",
        quick=quick,
        measurements=measurements,
        metadata={"panels": panels, "width": width, "height": height,
                  "implementations": list(IMPLEMENTATIONS)},
    )


def render(result: ExperimentResult) -> str:
    """Format the two-panel report from the typed result (pure view)."""
    width = result.metadata["width"]
    height = result.metadata["height"]
    chunks = []
    for panel_key, panel in result.metadata["panels"].items():
        arch = panel["architecture"]
        sizes = panel["filter_sizes"]
        labels = [f"{s}x{s}" for s in sizes]
        series = {
            impl: [result.series_value(impl, arch, f"{s}x{s}") for s in sizes]
            for impl in result.metadata["implementations"]
        }
        chunks.append(format_series(
            f"Figure {panel_key[-2:]} — 2D convolution runtime, {arch.upper()} "
            f"({panel['precision']}, {width}x{height})",
            "filter", labels, series, unit="ms"))
        chunks.append(f"summary: {panel['summary']}")
    return "\n\n".join(chunks)


# --------------------------------------------------------- legacy surface

def run(architecture: str = "p100", precision: str = "float32",
        filter_sizes: Sequence[int] = FILTER_SIZES,
        width: int = IMAGE_WIDTH, height: int = IMAGE_HEIGHT) -> Dict[str, object]:
    """One Figure 4 panel: runtime (ms) per implementation per filter size."""
    series: Dict[str, List[Optional[float]]] = {name: [] for name in IMPLEMENTATIONS}
    for size in filter_sizes:
        for impl in IMPLEMENTATIONS:
            result = _measure_impl(impl, size, architecture, precision, width, height)
            series[impl].append(None if result is None else result.milliseconds)
    return {
        "architecture": architecture,
        "precision": precision,
        "filter_sizes": list(filter_sizes),
        "milliseconds": series,
        "summary": summarize(series),
    }


def summarize(series: Dict[str, List[Optional[float]]]) -> Dict[str, object]:
    """Headline comparisons: SSAM speedup over NPP/ArrayFire, win counts."""
    ssam = series["ssam"]
    npp_speedups = [speedup(n, s) for n, s in zip(series["npp"], ssam) if n and s]
    af_speedups = [speedup(a, s) for a, s in zip(series["arrayfire"], ssam) if a and s]
    wins = 0
    total = 0
    for i, value in enumerate(ssam):
        competitors = {name: series[name][i] for name in series
                       if name != "ssam" and series[name][i] is not None}
        if not competitors:
            continue
        total += 1
        if value <= min(competitors.values()):
            wins += 1
    return {
        "ssam_vs_npp_geomean_speedup": geometric_mean(npp_speedups) if npp_speedups else None,
        "ssam_vs_arrayfire_geomean_speedup": geometric_mean(af_speedups) if af_speedups else None,
        "ssam_fastest_fraction": wins / total if total else None,
    }


def run_both(filter_sizes: Sequence[int] = FILTER_SIZES,
             width: int = IMAGE_WIDTH, height: int = IMAGE_HEIGHT) -> Dict[str, object]:
    """Both panels (Figure 4a on P100, Figure 4b on V100)."""
    return {
        panel_key: run(arch, "float32", filter_sizes, width, height)
        for panel_key, arch in PANELS
    }


def report(filter_sizes: Sequence[int] = FILTER_SIZES,
           width: int = IMAGE_WIDTH, height: int = IMAGE_HEIGHT) -> str:
    """Formatted two-panel Figure 4 report (serial, in-process)."""
    from .parallel import execute_jobs

    job_list = jobs(filter_sizes=filter_sizes, width=width, height=height)
    payloads = execute_jobs(job_list)
    return render(assemble(payloads, filter_sizes=filter_sizes,
                           width=width, height=height))
