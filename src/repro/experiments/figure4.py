"""Figure 4: 2-D convolution runtime vs. filter size on P100 and V100.

The paper sweeps square filters from 2x2 to 20x20 over an 8192^2 single
precision image (P=4, B=128) and compares SSAM against ArrayFire, NPP,
cuFFT, Halide and cuDNN.  This module regenerates both panels from the
kernels' cost profiles on the simulated architectures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.metrics import geometric_mean, speedup, winner
from ..analysis.tables import format_series
from ..baselines.conv2d import (
    ARRAYFIRE_MAX_FILTER,
    arrayfire_like_convolve2d,
    cudnn_like_convolve2d,
    cufft_like_convolve2d,
    halide_like_convolve2d,
    npp_like_convolve2d,
)
from ..convolution.spec import ConvolutionSpec
from ..kernels.conv2d_ssam import analytic_launch as ssam_analytic_launch

#: evaluation parameters from Section 6.2
IMAGE_WIDTH = 8192
IMAGE_HEIGHT = 8192
FILTER_SIZES = tuple(range(2, 21))
IMPLEMENTATIONS = ("ssam", "arrayfire", "npp", "halide", "cudnn", "cufft")


def run(architecture: str = "p100", precision: str = "float32",
        filter_sizes: Sequence[int] = FILTER_SIZES,
        width: int = IMAGE_WIDTH, height: int = IMAGE_HEIGHT) -> Dict[str, object]:
    """One Figure 4 panel: runtime (ms) per implementation per filter size."""
    series: Dict[str, List[Optional[float]]] = {name: [] for name in IMPLEMENTATIONS}
    for size in filter_sizes:
        spec = ConvolutionSpec.gaussian(size)
        series["ssam"].append(
            ssam_analytic_launch(spec, width, height, architecture, precision).milliseconds)
        if size <= ARRAYFIRE_MAX_FILTER:
            series["arrayfire"].append(
                arrayfire_like_convolve2d(None, spec, architecture, precision,
                                          functional=False, width=width,
                                          height=height).milliseconds)
        else:
            series["arrayfire"].append(None)
        series["npp"].append(
            npp_like_convolve2d(None, spec, architecture, precision, functional=False,
                                width=width, height=height).milliseconds)
        series["halide"].append(
            halide_like_convolve2d(None, spec, architecture, precision, functional=False,
                                   width=width, height=height).milliseconds)
        series["cudnn"].append(
            cudnn_like_convolve2d(None, spec, architecture, precision, functional=False,
                                  width=width, height=height).milliseconds)
        series["cufft"].append(
            cufft_like_convolve2d(None, spec, architecture, precision, functional=False,
                                  width=width, height=height).milliseconds)
    return {
        "architecture": architecture,
        "precision": precision,
        "filter_sizes": list(filter_sizes),
        "milliseconds": series,
        "summary": summarize(series),
    }


def summarize(series: Dict[str, List[Optional[float]]]) -> Dict[str, object]:
    """Headline comparisons: SSAM speedup over NPP/ArrayFire, win counts."""
    ssam = series["ssam"]
    npp_speedups = [speedup(n, s) for n, s in zip(series["npp"], ssam) if n and s]
    af_speedups = [speedup(a, s) for a, s in zip(series["arrayfire"], ssam) if a and s]
    wins = 0
    total = 0
    for i, value in enumerate(ssam):
        competitors = {name: series[name][i] for name in series
                       if name != "ssam" and series[name][i] is not None}
        if not competitors:
            continue
        total += 1
        if value <= min(competitors.values()):
            wins += 1
    return {
        "ssam_vs_npp_geomean_speedup": geometric_mean(npp_speedups) if npp_speedups else None,
        "ssam_vs_arrayfire_geomean_speedup": geometric_mean(af_speedups) if af_speedups else None,
        "ssam_fastest_fraction": wins / total if total else None,
    }


def run_both(filter_sizes: Sequence[int] = FILTER_SIZES,
             width: int = IMAGE_WIDTH, height: int = IMAGE_HEIGHT) -> Dict[str, object]:
    """Both panels (Figure 4a on P100, Figure 4b on V100)."""
    return {
        "figure4a": run("p100", "float32", filter_sizes, width, height),
        "figure4b": run("v100", "float32", filter_sizes, width, height),
    }


def report(filter_sizes: Sequence[int] = FILTER_SIZES,
           width: int = IMAGE_WIDTH, height: int = IMAGE_HEIGHT) -> str:
    """Formatted two-panel Figure 4 report."""
    chunks = []
    for key, panel in run_both(filter_sizes, width, height).items():
        labels = [f"{s}x{s}" for s in panel["filter_sizes"]]
        chunks.append(format_series(
            f"Figure {key[-2:]} — 2D convolution runtime, {panel['architecture'].upper()} "
            f"({panel['precision']}, {width}x{height})",
            "filter", labels, panel["milliseconds"], unit="ms"))
        chunks.append(f"summary: {panel['summary']}")
    return "\n\n".join(chunks)
