"""Typed experiment results: the data layer of the experiment pipeline.

Every table and figure is now produced in two stages: simulation jobs yield
:class:`Measurement` records (one per simulated kernel / benchmark cell),
an experiment-specific ``assemble`` step collects them into an
:class:`ExperimentResult`, and the text report is a pure view rendered from
that result via :mod:`repro.analysis.tables`.  Results serialise to JSON
artifacts (``ssam-repro --output-dir``) and load back losslessly, so
downstream analyses never have to re-parse formatted tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import ConfigurationError
from ..serialization import atomic_write_json, jsonify

#: bumped when the artifact layout changes incompatibly
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Measurement:
    """One measured/simulated data point of a table or figure.

    Attributes
    ----------
    kernel:
        Implementation or operation identifier (``"ssam"``, ``"npp"``,
        ``"shfl_up_sync"``...).
    architecture:
        Architecture the point was simulated on (preset name or full GPU
        name); empty for architecture-independent rows.
    workload:
        The x-axis identity: benchmark name, filter-size label, ...
    config:
        Launch/problem configuration that produced the point (JSON types).
    counters:
        ``KernelCounters.as_dict()`` of the simulated launch, when the
        producing job counted one (``None`` for metadata-only rows).
    milliseconds:
        Modelled kernel time, when the point is a timed simulation.
    value:
        The headline metric plotted/tabulated (ms, GCells/s, cycles...).
    unit:
        Unit of ``value``.
    extra:
        Remaining report columns (paper comparisons, derived fields).
    """

    kernel: str
    architecture: str = ""
    workload: str = ""
    config: Mapping[str, object] = field(default_factory=dict)
    counters: Optional[Mapping[str, float]] = None
    milliseconds: Optional[float] = None
    value: Optional[float] = None
    unit: str = ""
    extra: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # normalise eagerly so equality survives a JSON round-trip
        object.__setattr__(self, "config", jsonify(self.config))
        object.__setattr__(self, "extra", jsonify(self.extra))
        if self.counters is not None:
            object.__setattr__(self, "counters", jsonify(self.counters))

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "architecture": self.architecture,
            "workload": self.workload,
            "config": self.config,
            "counters": self.counters,
            "milliseconds": self.milliseconds,
            "value": self.value,
            "unit": self.unit,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Measurement":
        return cls(
            kernel=data["kernel"],
            architecture=data.get("architecture", ""),
            workload=data.get("workload", ""),
            config=data.get("config") or {},
            counters=data.get("counters"),
            milliseconds=data.get("milliseconds"),
            value=data.get("value"),
            unit=data.get("unit", ""),
            extra=data.get("extra") or {},
        )


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one experiment produced, independent of presentation.

    ``metadata`` carries the per-experiment structure the renderer needs to
    rebuild the exact report text (panel order, series order, summaries),
    so rendering is a pure function of the result.
    """

    experiment: str
    title: str
    quick: bool
    measurements: List[Measurement] = field(default_factory=list)
    metadata: Mapping[str, object] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "measurements", list(self.measurements))
        object.__setattr__(self, "metadata", jsonify(self.metadata))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentResult):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:  # pragma: no cover - unused, required by eq
        return hash((self.experiment, self.schema_version, len(self.measurements)))

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "title": self.title,
            "quick": self.quick,
            "measurements": [m.to_dict() for m in self.measurements],
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported result schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})")
        return cls(
            experiment=data["experiment"],
            title=data.get("title", data["experiment"]),
            quick=bool(data.get("quick", False)),
            measurements=[Measurement.from_dict(m)
                          for m in data.get("measurements", [])],
            metadata=data.get("metadata") or {},
        )

    # -- convenience accessors used by renderers --------------------------
    def series_value(self, kernel: str, architecture: str = "",
                     workload: str = "") -> Optional[float]:
        """The value of the first measurement matching the given identity.

        Backed by a lazily built index so figure renders stay linear in
        the measurement count.
        """
        index = self.__dict__.get("_series_index")
        if index is None:
            index = {}
            for m in self.measurements:
                index.setdefault((m.kernel, m.architecture, m.workload), m.value)
            object.__setattr__(self, "_series_index", index)
        return index.get((kernel, architecture, workload))

    def rows(self, kernel: Optional[str] = None) -> List[Dict[str, object]]:
        """The ``extra`` payload of every measurement, in order.

        Table-style experiments store their report columns in ``extra``, so
        this is exactly the row list :func:`repro.analysis.tables.format_table`
        renders.  ``kernel`` filters to one measurement series — experiments
        that mix row schemas (e.g. the model validation's advantage sweep
        next to its cross-engine cells) render each series separately.
        """
        return [dict(m.extra) for m in self.measurements
                if kernel is None or m.kernel == kernel]

    # -- persistence -------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the result as a JSON artifact; returns the path written."""
        return atomic_write_json(path, self.to_dict(), indent=2)


def load_result(path: str) -> ExperimentResult:
    """Load one experiment result artifact written by :meth:`~ExperimentResult.save`."""
    with open(path, "r", encoding="utf-8") as handle:
        return ExperimentResult.from_dict(json.load(handle))
