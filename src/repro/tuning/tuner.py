"""Model-guided two-stage launch-configuration search.

Stage 1 (**explore**) searches the valid design-space points of every
tuning cell (kernel x architecture x precision) closed-form on the Section 5
model engine at the paper-scale problem size.  *How* the space is walked is
a pluggable :class:`~repro.tuning.search.SearchStrategy` — exhaustive
enumeration (the default, and the correctness oracle) or the budgeted
guided search, which reaches the same best point on a fraction of the
evaluations.  Stage 2 (**confirm**) re-runs the explore stage's
top-k candidates (plus the paper default) on the batched simulator at a
functional problem size and reports whether the counted simulation agrees
with the model's ranking.  The winning configuration of every cell is
persisted to the shared result store's ``tuned_configs`` table, where the
planners' default-resolution chain
(:func:`repro.core.launch_defaults.resolve_launch_defaults`) picks it up.

Every evaluation in both stages is an ordinary scenario-sweep cell — built
with :func:`repro.scenarios.sweep.case_job_key` /
:func:`~repro.scenarios.sweep.case_cache_fields` and executed by
:func:`repro.experiments.parallel.execute_jobs` — so tuning runs shard
across ``--jobs`` workers, share the persistent simulation cache with plain
sweeps, and rerun warm with 100% cache hits::

    ssam-repro --experiment tune --jobs 4 --output-dir results
    ssam-repro --experiment tune --quick          # reduced space, golden-pinned

The rendered report states, per cell, the best-found configuration against
the paper's default (P=4, B=128); because the default is always one of the
evaluated points, the best-found predicted time can never exceed it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.launch_defaults import clear_lookup_cache
from ..errors import ConfigurationError
from ..experiments.jobs import SimulationJob
from ..experiments.results import ExperimentResult, Measurement
from ..serialization import stable_digest
from ..scenarios.registry import Scenario, ScenarioCase, all_scenarios, get_scenario
from ..scenarios.sweep import case_cache_fields, case_job_key
from .search import SearchStrategy, get_strategy, point_key
from .space import (
    FULL_SPACE,
    QUICK_SPACE,
    DesignSpace,
    paper_default_for,
    point_is_valid,
    valid_points,
)

#: the architectures and precisions the design-space study covers: the two
#: paper parts plus the post-paper Ampere/Hopper scenario axis
TUNE_ARCHITECTURES: Tuple[str, ...] = ("p100", "v100", "a100", "h100")
TUNE_PRECISIONS: Tuple[str, ...] = ("float32", "float64")

#: problem sizes: explore closed-form at paper scale, confirm functionally
MODEL_SIZE = "paper"
CONFIRM_SIZE = "small"
QUICK_CONFIRM_SIZE = "tiny"

#: how many model-stage candidates the simulator re-checks per cell
TOP_K = 3
QUICK_TOP_K = 2


@dataclass(frozen=True)
class TuneCell:
    """One tuning cell: a kernel on one architecture at one precision."""

    scenario: str
    architecture: str
    precision: str

    @property
    def cell_id(self) -> str:
        return f"{self.scenario}:{self.architecture}:{self.precision}"


def config_label(plan_kwargs: Mapping[str, object]) -> str:
    """Compact human label of an override set, e.g. ``"P4,B128"``.

    The block shape appends only when it is non-trivial (``"P4,B128,R2"``);
    single-row points keep their historical two-part label.
    """
    parts = []
    kwargs = dict(plan_kwargs)
    if "outputs_per_thread" in kwargs:
        parts.append(f"P{kwargs['outputs_per_thread']}")
    if "block_threads" in kwargs:
        parts.append(f"B{kwargs['block_threads']}")
    if int(kwargs.get("block_rows", 1)) != 1:
        parts.append(f"R{kwargs['block_rows']}")
    return ",".join(parts) if parts else "default"


def tune_cells(scenarios: Optional[Sequence[str]] = None,
               architectures: Optional[Sequence[str]] = None,
               precisions: Optional[Sequence[str]] = None,
               model_size: str = MODEL_SIZE) -> List[TuneCell]:
    """The tuning cells: every tunable SSAM kernel x architecture x precision.

    Cells whose scenario cannot evaluate ``engine="model"`` at the explore
    size are skipped (nothing to search), as are scenarios with no declared
    tunables (nothing to tune).
    """
    if scenarios is None:
        chosen: List[Scenario] = all_scenarios(role="ssam")
    else:
        chosen = [get_scenario(name) for name in scenarios]
    archs = TUNE_ARCHITECTURES if architectures is None else tuple(architectures)
    precs = TUNE_PRECISIONS if precisions is None else tuple(precisions)
    cells: List[TuneCell] = []
    for scenario in chosen:
        if not scenario.tunables:
            continue
        for arch in archs:
            for prec in precs:
                if scenario.supports(arch, prec, "model", model_size):
                    cells.append(TuneCell(scenario.name, arch, prec))
    if not cells:
        raise ConfigurationError("the tuning selection expands to zero cells")
    return cells


def _case_job(case: ScenarioCase) -> SimulationJob:
    """A sweep-pipeline job for one scenario case (shared keys and cache)."""
    return SimulationJob(
        key=case_job_key(case),
        func="repro.scenarios.sweep:_measure_case",
        params=case.to_dict(),
        cache_fields=case_cache_fields(case),
    )


def explore_points(cells: Sequence[TuneCell], space: DesignSpace,
                   model_size: str = MODEL_SIZE) -> Dict[str, List[Dict[str, int]]]:
    """The pre-filtered design-space points of every cell, enumerated once.

    Validity (plan construction + occupancy per point) is the expensive
    part of the search bookkeeping, so every downstream consumer — job
    construction, ranking, confirmation, assembly — works from this single
    enumeration.
    """
    return {cell.cell_id: valid_points(get_scenario(cell.scenario), model_size,
                                       cell.architecture, cell.precision, space)
            for cell in cells}


def explore_stage(cells: Sequence[TuneCell],
                  points_by_cell: Mapping[str, Sequence[Mapping[str, int]]],
                  strategy: SearchStrategy, executor, workers: int, cache,
                  model_size: str = MODEL_SIZE):
    """Stage 1: walk every cell's candidate space with the search strategy.

    Each round gathers the proposals of *all* cells into one executor batch
    (cells in order, each cell's points in proposal order), so an
    exhaustive strategy — whose single round proposes every point — builds
    the byte-identical job list the pre-strategy tuner did, and a guided
    strategy still shards across ``--jobs`` workers round by round.
    Returns ``(sessions, payloads)``: the finished per-cell sessions and
    every model payload by job key.
    """
    sessions = {}
    for cell in cells:
        scenario = get_scenario(cell.scenario)
        seed = paper_default_for(scenario, model_size, cell.architecture,
                                 cell.precision)
        sessions[cell.cell_id] = strategy.session(
            points_by_cell[cell.cell_id], seed=seed)
    payloads: Dict[str, Mapping[str, object]] = {}
    while True:
        proposals = [(cell, sessions[cell.cell_id].propose())
                     for cell in cells]
        round_jobs: List[SimulationJob] = []
        for cell, points in proposals:
            for point in points:
                round_jobs.append(_case_job(ScenarioCase(
                    cell.scenario, cell.architecture, cell.precision,
                    "model", model_size, point)))
        if not round_jobs:
            break
        round_payloads = executor(round_jobs, workers=workers, cache=cache)
        payloads.update(round_payloads)
        for cell, points in proposals:
            if not points:
                continue
            times = {}
            for point in points:
                case = ScenarioCase(cell.scenario, cell.architecture,
                                    cell.precision, "model", model_size,
                                    point)
                times[point_key(point)] = float(
                    round_payloads[case_job_key(case)]["milliseconds"])
            sessions[cell.cell_id].observe(times)
    return sessions, payloads


def _ranked_points(cell: TuneCell, points: Sequence[Mapping[str, int]],
                   model_size: str,
                   payloads: Mapping[str, Mapping[str, object]],
                   ) -> List[Dict[str, object]]:
    """Stage-1 outcome of one cell: points sorted by predicted time.

    Ties break on the (sorted) parameter values, so the ranking — and with
    it the stage-2 job list — is identical for any worker count and cache
    state.
    """
    rows: List[Dict[str, object]] = []
    for point in points:
        case = ScenarioCase(cell.scenario, cell.architecture, cell.precision,
                            "model", model_size, point)
        payload = payloads[case_job_key(case)]
        rows.append({
            "plan_kwargs": dict(point),
            "label": config_label(point),
            "model_ms": float(payload["milliseconds"]),
            "config": payload.get("config") or {},
        })
    rows.sort(key=lambda row: (row["model_ms"],
                               tuple(sorted(row["plan_kwargs"].items()))))
    return rows


def _confirm_points(cell: TuneCell, scenario: Scenario,
                    ranked: Sequence[Mapping[str, object]], top_k: int,
                    confirm_size: str,
                    confirm_engine: str = "batched") -> List[Dict[str, int]]:
    """The top-k model candidates plus the paper default, re-validated at
    the confirmation size (filter extents can differ between sizes)."""
    if not scenario.supports(cell.architecture, cell.precision,
                             confirm_engine, confirm_size):
        return []
    candidates = [dict(row["plan_kwargs"]) for row in ranked[:max(1, top_k)]]
    default = paper_default_for(scenario, confirm_size, cell.architecture,
                                cell.precision)
    if default not in candidates:
        candidates.append(default)
    return [point for point in candidates
            if point_is_valid(scenario, confirm_size, cell.architecture,
                              cell.precision, point)]


def confirm_jobs(cells: Sequence[TuneCell],
                 candidates_by_cell: Mapping[str, Sequence[Mapping[str, int]]],
                 confirm_size: str = CONFIRM_SIZE,
                 confirm_engine: str = "batched") -> List[SimulationJob]:
    """Stage 2: simulator jobs for each cell's confirm candidates.

    ``confirm_engine`` selects the executing engine: ``"batched"`` (the
    default) or ``"replay"`` — the compiled trace-replay engine produces
    bit-identical counters, so the confirmation verdicts are the same, only
    faster.  Cells with no candidates (the scenario cannot run the engine
    at the confirmation size) contribute no jobs; the report then shows the
    model stage only for them.
    """
    jobs: List[SimulationJob] = []
    for cell in cells:
        for point in candidates_by_cell.get(cell.cell_id, ()):
            jobs.append(_case_job(ScenarioCase(
                cell.scenario, cell.architecture, cell.precision,
                confirm_engine, confirm_size, point)))
    return jobs


# ------------------------------------------------------------------ pipeline

def run_tuning(quick: bool = False, workers: int = 1, cache=None,
               scenarios: Optional[Sequence[str]] = None,
               architectures: Optional[Sequence[str]] = None,
               precisions: Optional[Sequence[str]] = None,
               space: Optional[DesignSpace] = None,
               top_k: Optional[int] = None,
               model_size: str = MODEL_SIZE,
               confirm_size: Optional[str] = None,
               confirm: bool = True,
               confirm_engine: str = "batched",
               search: "str | SearchStrategy" = "exhaustive",
               executor=None) -> ExperimentResult:
    """Run the two-stage search end to end through the job pipeline.

    ``search`` selects the explore-stage strategy: ``"exhaustive"`` (the
    default and the correctness oracle) evaluates every valid point,
    ``"guided"`` runs the budgeted coordinate descent of
    :class:`repro.tuning.search.GuidedSearch`.  ``confirm=False`` stops
    after the model stage (the CI smoke path): the report then shows the
    closed-form ranking only.  ``confirm_engine="replay"`` confirms on the
    compiled trace-replay engine instead of the batched simulator
    (identical verdicts, faster).  ``executor`` substitutes the job
    executor — same signature as
    :func:`repro.experiments.parallel.execute_jobs` — which is how the
    sweep service routes tuning stages through its priority-ordered worker
    pool instead of a private process pool.  When a persistent cache backs
    the run, every cell's winning configuration is upserted into the
    store's ``tuned_configs`` table, where the planners' default-resolution
    chain finds it.
    """
    from ..experiments.parallel import execute_jobs

    if executor is None:
        executor = execute_jobs

    strategy = get_strategy(search)
    resolved_space = space if space is not None else (QUICK_SPACE if quick
                                                      else FULL_SPACE)
    resolved_top_k = top_k if top_k is not None else (QUICK_TOP_K if quick
                                                      else TOP_K)
    resolved_confirm = confirm_size if confirm_size is not None else (
        QUICK_CONFIRM_SIZE if quick else CONFIRM_SIZE)
    cells = tune_cells(scenarios, architectures, precisions, model_size)
    points_by_cell = explore_points(cells, resolved_space, model_size)
    sessions, model_payloads = explore_stage(
        cells, points_by_cell, strategy, executor, workers, cache,
        model_size)
    rankings = {cell.cell_id: _ranked_points(
                    cell, sessions[cell.cell_id].evaluated_points(),
                    model_size, model_payloads)
                for cell in cells}
    evaluations = {cell.cell_id: {
                       "evaluated": sessions[cell.cell_id].evaluations,
                       "space": len(points_by_cell[cell.cell_id])}
                   for cell in cells}
    candidates_by_cell: Dict[str, List[Dict[str, int]]] = {}
    confirm_payloads: Dict[str, Mapping[str, object]] = {}
    if confirm:
        candidates_by_cell = {
            cell.cell_id: _confirm_points(cell, get_scenario(cell.scenario),
                                          rankings[cell.cell_id],
                                          resolved_top_k, resolved_confirm,
                                          confirm_engine)
            for cell in cells}
        confirm_payloads = executor(
            confirm_jobs(cells, candidates_by_cell, resolved_confirm,
                         confirm_engine),
            workers=workers, cache=cache)
    result = assemble(cells, resolved_space, rankings, candidates_by_cell,
                      confirm_payloads, quick=quick, top_k=resolved_top_k,
                      model_size=model_size,
                      confirm_size=resolved_confirm if confirm else None,
                      confirm_engine=confirm_engine,
                      search=strategy.name, evaluations=evaluations)
    if cache is not None and getattr(cache, "enabled", True):
        store_tuned_configs(result, cache.result_store())
    return result


def store_tuned_configs(result: ExperimentResult, store) -> int:
    """Persist every cell's winning configuration into ``tuned_configs``.

    Rows are keyed by (scenario, architecture, precision, size-class,
    code-version, design-space): the explored space is part of the key, so
    a ``--quick`` (reduced-space) run writes its own rows and can never
    clobber a full-space recommendation — lookups serve the best row of a
    cell.  Re-running the tuner over the same space refreshes its rows
    (last writer wins — unlike simulation payloads, a tuned default is a
    recommendation, not a pure function being memoised).  The
    launch-defaults lookup cache is cleared afterwards so planners in this
    process see the new rows.
    """
    meta = result.metadata
    written = 0
    for m in result.measurements:
        extra = m.extra
        best = extra.get("best_plan_kwargs")
        if best is None:
            continue
        scenario, architecture, precision = extra["cell_id"].split(":")
        store.put_tuned_config(
            scenario=scenario, architecture=architecture,
            precision=precision, size_class=meta["model_size"],
            plan_kwargs=best, model_ms=extra["best_model_ms"],
            default_model_ms=extra["default_model_ms"],
            speedup=extra["model_speedup"],
            search=meta.get("search", "exhaustive"),
            confirmed=extra.get("confirm_agrees"),
            tune_digest=meta["tune_digest"],
            space=meta["space"])
        written += 1
    clear_lookup_cache()
    return written


def assemble(cells: Sequence[TuneCell], space: DesignSpace,
             rankings: Mapping[str, Sequence[Mapping[str, object]]],
             candidates_by_cell: Mapping[str, Sequence[Mapping[str, int]]],
             confirm_payloads: Mapping[str, Mapping[str, object]],
             quick: bool = False, top_k: int = TOP_K,
             model_size: str = MODEL_SIZE,
             confirm_size: "str | None" = CONFIRM_SIZE,
             confirm_engine: str = "batched",
             search: str = "exhaustive",
             evaluations: Optional[Mapping[str, Mapping[str, int]]] = None,
             ) -> ExperimentResult:
    """Fold both stages into the typed tuning result (cell order)."""
    measurements: List[Measurement] = []
    cell_records: List[Dict[str, object]] = []
    evaluations = dict(evaluations or {})
    for cell in cells:
        scenario = get_scenario(cell.scenario)
        ranked = rankings[cell.cell_id]
        default_kwargs = paper_default_for(scenario, model_size,
                                           cell.architecture, cell.precision)
        # the default is normally always evaluated (valid_points appends
        # it); a scenario whose paper default is itself invalid at the
        # explore size reports the best-found configuration without a
        # baseline rather than failing the whole tune run
        default_row = next((row for row in ranked
                            if row["plan_kwargs"] == default_kwargs), None)
        best_row = ranked[0]
        if default_row is None:
            speedup = None
        else:
            speedup = (default_row["model_ms"] / best_row["model_ms"]
                       if best_row["model_ms"] > 0 else float("inf"))

        confirmed: List[Dict[str, object]] = []
        confirm_candidates = ([] if confirm_size is None else
                              candidates_by_cell.get(cell.cell_id, ()))
        for point in confirm_candidates:
            case = ScenarioCase(cell.scenario, cell.architecture,
                                cell.precision, confirm_engine, confirm_size,
                                point)
            payload = confirm_payloads.get(case_job_key(case))
            if payload is None:
                continue
            confirmed.append({
                "plan_kwargs": dict(point),
                "label": config_label(point),
                "simulated_ms": float(payload["milliseconds"]),
                "oracle_max_abs_error": payload.get("oracle_max_abs_error"),
            })
        confirmed.sort(key=lambda row: (row["simulated_ms"],
                                        tuple(sorted(row["plan_kwargs"].items()))))
        confirm_best = confirmed[0] if confirmed else None
        agree = (confirm_best is not None
                 and confirm_best["plan_kwargs"] == best_row["plan_kwargs"])

        counts = evaluations.get(cell.cell_id, {})
        extra = {
            "cell_id": cell.cell_id,
            "precision": cell.precision,
            "points": len(ranked),
            "space_points": counts.get("space", len(ranked)),
            "evaluated": counts.get("evaluated", len(ranked)),
            "default": (config_label(default_kwargs) if default_row is None
                        else default_row["label"]),
            "default_plan_kwargs": dict(default_kwargs),
            "default_model_ms": (None if default_row is None
                                 else default_row["model_ms"]),
            "best": best_row["label"],
            "best_plan_kwargs": dict(best_row["plan_kwargs"]),
            "best_model_ms": best_row["model_ms"],
            "model_speedup": speedup,
            "confirm_best": None if confirm_best is None else confirm_best["label"],
            "confirm_agrees": None if confirm_best is None else agree,
        }
        measurements.append(Measurement(
            kernel=cell.scenario,
            architecture=cell.architecture,
            workload=cell.precision,
            config=best_row["config"],
            milliseconds=best_row["model_ms"],
            value=speedup,
            unit="x",
            extra=extra,
        ))
        cell_records.append({
            "cell": cell.cell_id,
            "tunables": list(scenario.tunables),
            "explored": ranked,
            "confirmed": confirmed,
        })
    return ExperimentResult(
        experiment="tune",
        title="Launch-configuration autotuner — Section 7.1 design space",
        quick=quick,
        measurements=measurements,
        metadata={
            "space": space.describe(),
            "model_size": model_size,
            "confirm_size": confirm_size,
            "confirm_engine": confirm_engine,
            "top_k": top_k,
            "search": search,
            "evaluations": {
                "cells": evaluations,
                "evaluated": sum(m.extra["evaluated"] for m in measurements),
                "space": sum(m.extra["space_points"] for m in measurements),
            },
            "cells": cell_records,
            "tune_digest": stable_digest(
                [[m.extra["cell_id"], m.extra["best"],
                  m.extra["best_model_ms"]] for m in measurements]),
        },
    )


def render(result: ExperimentResult) -> str:
    """Fixed-width tuning report (pure view over the typed result)."""
    meta = result.metadata
    confirm_text = ("confirm stage skipped (model stage only)"
                    if meta["confirm_size"] is None else
                    f"confirm: engine={meta.get('confirm_engine', 'batched')} "
                    f"at size {meta['confirm_size']!r} "
                    f"(top-{meta['top_k']} + default)")
    evals = meta.get("evaluations") or {}
    search_text = meta.get("search", "exhaustive")
    if evals:
        search_text += f" ({evals['evaluated']}/{evals['space']} points)"
    lines = [result.title,
             f"explore: engine=model search={search_text} "
             f"at size {meta['model_size']!r} "
             f"({'x'.join(str(len(v)) for v in meta['space'].values())} grid); "
             f"{confirm_text}"]
    header = (f"{'cell':<26} {'pts':>4} {'default':>8} {'default_ms':>12} "
              f"{'best':>8} {'best_ms':>12} {'speedup':>8} "
              f"{'confirmed':>9} {'agree':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    for m in result.measurements:
        e = m.extra
        agree = e.get("confirm_agrees")
        default_ms = ("-" if e["default_model_ms"] is None
                      else f"{e['default_model_ms']:.6f}")
        speedup = ("-" if e["model_speedup"] is None
                   else f"{e['model_speedup']:.3f}x")
        lines.append(
            f"{e['cell_id']:<26} {e['points']:>4} {e['default']:>8} "
            f"{default_ms:>12} {e['best']:>8} "
            f"{e['best_model_ms']:>12.6f} {speedup:>8} "
            f"{(e['confirm_best'] or '-'):>9} "
            f"{('-' if agree is None else 'yes' if agree else 'no'):>6}")
    better = sum(1 for m in result.measurements
                 if m.extra["best"] != m.extra["default"])
    lines.append(f"{better}/{len(result.measurements)} cells found a "
                 f"configuration faster than the paper default")
    lines.append(f"tune digest: {meta['tune_digest']}")
    return "\n".join(lines)
