"""The declarative launch-parameter design space of Section 7.1.

A :class:`DesignSpace` is a plain Cartesian grid over the tunable launch
parameters — the sliding-window depth P (``outputs_per_thread``) and the
CUDA block size B (``block_threads``).  Candidate points are projected onto
each scenario's declared tunable envelope and then pre-filtered by *launch
validity* on the target architecture:

* the block size must be positive, a warp-size multiple and within
  ``max_threads_per_block`` (:func:`repro.gpu.occupancy.validate_block_threads`);
* a register-cache plan built with the requested P must not clamp — a
  clamped request resolves to the identical plan as the smaller request, so
  keeping it would only duplicate a point;
* the resulting plan must keep at least one block resident per SM
  (occupancy validity: a configuration whose register/shared footprint
  leaves zero resident blocks cannot launch).

The filtered point list is deterministic (sorted by parameter values), so
tuning runs enumerate — and cache — the same jobs in the same order on every
machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.plan import DEFAULT_BLOCK_THREADS, DEFAULT_OUTPUTS_PER_THREAD
from ..errors import ConfigurationError, ResourceExhaustedError
from ..gpu.architecture import get_architecture
from ..gpu.occupancy import validate_block_threads
from ..scenarios.registry import Scenario

#: the Section 7.1 sweep of the sliding-window depth P
DEFAULT_OUTPUTS_PER_THREAD_RANGE: Tuple[int, ...] = tuple(range(1, 9))
#: the Section 7.1 sweep of the CUDA block size B
DEFAULT_BLOCK_THREADS_CHOICES: Tuple[int, ...] = (64, 128, 256, 512)

#: the paper's evaluation configuration (Section 6.2): P=4, B=128
PAPER_DEFAULT: Dict[str, int] = {
    "outputs_per_thread": DEFAULT_OUTPUTS_PER_THREAD,
    "block_threads": DEFAULT_BLOCK_THREADS,
}


@dataclass(frozen=True)
class DesignSpace:
    """A Cartesian grid over the tunable launch parameters."""

    outputs_per_thread: Tuple[int, ...] = DEFAULT_OUTPUTS_PER_THREAD_RANGE
    block_threads: Tuple[int, ...] = DEFAULT_BLOCK_THREADS_CHOICES

    def __post_init__(self) -> None:
        object.__setattr__(self, "outputs_per_thread",
                           tuple(sorted(set(int(p) for p in self.outputs_per_thread))))
        object.__setattr__(self, "block_threads",
                           tuple(sorted(set(int(b) for b in self.block_threads))))
        if not self.outputs_per_thread or not self.block_threads:
            raise ConfigurationError("a design space needs at least one value per axis")

    @property
    def size(self) -> int:
        return len(self.outputs_per_thread) * len(self.block_threads)

    def describe(self) -> Dict[str, object]:
        return {"outputs_per_thread": list(self.outputs_per_thread),
                "block_threads": list(self.block_threads)}

    def candidates(self, tunables: Sequence[str]) -> List[Dict[str, int]]:
        """Candidate override mappings projected onto a tunable envelope.

        Axes the scenario does not tune are dropped (not fixed at a value:
        the kernel's own default applies), and the projection deduplicates,
        so a B-only kernel sees each block size exactly once.
        """
        axes: List[List[Tuple[str, int]]] = []
        if "outputs_per_thread" in tunables:
            axes.append([("outputs_per_thread", p) for p in self.outputs_per_thread])
        if "block_threads" in tunables:
            axes.append([("block_threads", b) for b in self.block_threads])
        if not axes:
            return [{}]
        points: List[Dict[str, int]] = [{}]
        for axis in axes:
            points = [dict(point, **{key: value})
                      for point in points for key, value in axis]
        return points


#: the full Section 7.1 grid (up to 32 points per cell)
FULL_SPACE = DesignSpace()
#: reduced grid for ``--quick`` runs and golden fixtures (4 points per cell)
QUICK_SPACE = DesignSpace(outputs_per_thread=(2, 4), block_threads=(128, 256))


def paper_default_for(scenario: Scenario) -> Dict[str, int]:
    """The paper's default configuration projected onto a scenario's envelope."""
    return {key: value for key, value in PAPER_DEFAULT.items()
            if key in scenario.tunables}


def point_is_valid(scenario: Scenario, size: str, architecture: str,
                   precision: str, plan_kwargs: Dict[str, int]) -> bool:
    """Launch validity of one candidate point (see the module docstring)."""
    arch = get_architecture(architecture)
    block = int(plan_kwargs.get("block_threads", DEFAULT_BLOCK_THREADS))
    try:
        validate_block_threads(arch, block)
    except ConfigurationError:
        return False
    try:
        plan = scenario.build_plan(size, architecture, precision, plan_kwargs)
    except (ConfigurationError, ResourceExhaustedError):
        return False
    if plan is not None:
        requested = plan_kwargs.get("outputs_per_thread")
        if requested is not None and plan.outputs_per_thread != int(requested):
            return False  # clamped: duplicates the resolved smaller point
        if plan.occupancy().active_blocks_per_sm < 1:
            return False
    return True


def valid_points(scenario: Scenario, size: str, architecture: str,
                 precision: str, space: DesignSpace = FULL_SPACE,
                 ) -> List[Dict[str, int]]:
    """The pre-filtered candidate list of one tuning cell, paper default included.

    The paper's default configuration is always part of the evaluated set
    (even for reduced spaces) so every tuning report can state "best found
    vs. paper default" from points that went through the identical pipeline.
    """
    points = [point for point in space.candidates(scenario.tunables)
              if point_is_valid(scenario, size, architecture, precision, point)]
    default = paper_default_for(scenario)
    if default not in points and point_is_valid(scenario, size, architecture,
                                                precision, default):
        points.append(default)
    points.sort(key=lambda kw: tuple(sorted(kw.items())))
    return points
