"""The declarative launch-parameter design space of Section 7.1.

A :class:`DesignSpace` is a plain Cartesian grid over the tunable launch
parameters — the sliding-window depth P (``outputs_per_thread``) and the
CUDA block size B (``block_threads``).  Candidate points are projected onto
each scenario's declared tunable envelope and then pre-filtered by *launch
validity* on the target architecture:

* the block size must be positive, a warp-size multiple and within
  ``max_threads_per_block`` (:func:`repro.gpu.occupancy.validate_block_threads`);
* a register-cache plan built with the requested P must not clamp — a
  clamped request resolves to the identical plan as the smaller request, so
  keeping it would only duplicate a point;
* the resulting plan must keep at least one block resident per SM
  (occupancy validity: a configuration whose register/shared footprint
  leaves zero resident blocks cannot launch).

The filtered point list is deterministic (sorted by parameter values), so
tuning runs enumerate — and cache — the same jobs in the same order on every
machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.launch_defaults import paper_default
from ..errors import ConfigurationError, ResourceExhaustedError
from ..gpu.architecture import get_architecture
from ..gpu.occupancy import validate_block_threads
from ..scenarios.registry import Scenario

#: the Section 7.1 sweep of the sliding-window depth P
DEFAULT_OUTPUTS_PER_THREAD_RANGE: Tuple[int, ...] = tuple(range(1, 9))
#: the Section 7.1 sweep of the CUDA block size B
DEFAULT_BLOCK_THREADS_CHOICES: Tuple[int, ...] = (64, 128, 256, 512)
#: the extended per-dimension block-shape sweep (warp rows per block)
EXTENDED_BLOCK_ROWS_CHOICES: Tuple[int, ...] = (1, 2, 4)
#: the extended (denser) block-size menu
EXTENDED_BLOCK_THREADS_CHOICES: Tuple[int, ...] = (64, 128, 192, 256, 384, 512)

#: the paper's evaluation configuration (Section 6.2): P=4, B=128.  The
#: block shape R=1 is canonically *absent* — candidate points never spell
#: out ``block_rows=1`` (see :meth:`DesignSpace.candidates`), so the default
#: point stays identical to its historical two-key form.
PAPER_DEFAULT: Dict[str, int] = {
    "outputs_per_thread": paper_default("outputs_per_thread"),
    "block_threads": paper_default("block_threads"),
}


@dataclass(frozen=True)
class DesignSpace:
    """A Cartesian grid over the tunable launch parameters."""

    outputs_per_thread: Tuple[int, ...] = DEFAULT_OUTPUTS_PER_THREAD_RANGE
    block_threads: Tuple[int, ...] = DEFAULT_BLOCK_THREADS_CHOICES
    block_rows: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "outputs_per_thread",
                           tuple(sorted(set(int(p) for p in self.outputs_per_thread))))
        object.__setattr__(self, "block_threads",
                           tuple(sorted(set(int(b) for b in self.block_threads))))
        object.__setattr__(self, "block_rows",
                           tuple(sorted(set(int(r) for r in self.block_rows))))
        if (not self.outputs_per_thread or not self.block_threads
                or not self.block_rows):
            raise ConfigurationError("a design space needs at least one value per axis")
        if any(r < 1 for r in self.block_rows):
            raise ConfigurationError("block_rows values must be positive")

    @property
    def size(self) -> int:
        return (len(self.outputs_per_thread) * len(self.block_threads)
                * len(self.block_rows))

    def describe(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "outputs_per_thread": list(self.outputs_per_thread),
            "block_threads": list(self.block_threads)}
        if self.block_rows != (1,):
            out["block_rows"] = list(self.block_rows)
        return out

    def candidates(self, tunables: Sequence[str]) -> List[Dict[str, int]]:
        """Candidate override mappings projected onto a tunable envelope.

        Axes the scenario does not tune are dropped (not fixed at a value:
        the kernel's own default applies), and the projection deduplicates,
        so a B-only kernel sees each block size exactly once.  Points are
        canonical: ``block_rows=1`` — the implicit default block shape — is
        never spelled out, so the R axis leaves single-row points (and with
        them every historical case id and cache key) untouched.
        """
        axes: List[List[Tuple[str, int]]] = []
        if "outputs_per_thread" in tunables:
            axes.append([("outputs_per_thread", p) for p in self.outputs_per_thread])
        if "block_threads" in tunables:
            axes.append([("block_threads", b) for b in self.block_threads])
        if "block_rows" in tunables and self.block_rows != (1,):
            axes.append([("block_rows", r) for r in self.block_rows])
        if not axes:
            return [{}]
        points: List[Dict[str, int]] = [{}]
        for axis in axes:
            points = [dict(point, **{key: value})
                      for point in points for key, value in axis]
        return [canonical_point(point) for point in points]


def canonical_point(plan_kwargs: Dict[str, int]) -> Dict[str, int]:
    """Canonical form of an override point: ``block_rows=1`` is dropped."""
    return {key: value for key, value in plan_kwargs.items()
            if not (key == "block_rows" and int(value) == 1)}


#: the full Section 7.1 grid (up to 32 points per cell)
FULL_SPACE = DesignSpace()
#: reduced grid for ``--quick`` runs and golden fixtures (4 points per cell)
QUICK_SPACE = DesignSpace(outputs_per_thread=(2, 4), block_threads=(128, 256))
#: the post-paper extended grid: denser B menu plus the per-dimension block
#: shape R on 2-D kernels (up to 144 points per cell before filtering)
EXTENDED_SPACE = DesignSpace(block_threads=EXTENDED_BLOCK_THREADS_CHOICES,
                             block_rows=EXTENDED_BLOCK_ROWS_CHOICES)


def paper_default_for(scenario: Scenario, size: "str | None" = None,
                      architecture: "str | None" = None,
                      precision: "str | None" = None) -> Dict[str, int]:
    """The paper's default configuration projected onto a scenario's envelope.

    With a concrete cell (``size``/``architecture``/``precision``) the
    default is additionally *clamped* through the same validity filter as
    candidate points: where the requested P=4 cannot hold (the register
    budget caps the window), the default resolves to the plan's actual P —
    the same point the kernel would silently execute — instead of an
    unevaluable phantom configuration.
    """
    default = {key: value for key, value in PAPER_DEFAULT.items()
               if key in scenario.tunables}
    if size is None or architecture is None or precision is None:
        return default
    return clamp_point(scenario, size, architecture, precision, default)


def clamp_point(scenario: Scenario, size: str, architecture: str,
                precision: str, plan_kwargs: Dict[str, int]) -> Dict[str, int]:
    """Project a requested point through plan construction, like candidates.

    A point whose P clamps resolves to the identical plan as the smaller
    request; returning that smaller point keeps the search seeded on a
    configuration that actually exists in the filtered candidate list.
    Points that fail to build at all are returned unchanged (the caller's
    validity filter rejects them downstream).
    """
    point = canonical_point(plan_kwargs)
    if point_is_valid(scenario, size, architecture, precision, point):
        return point
    try:
        plan = scenario.build_plan(size, architecture, precision, point)
    except (ConfigurationError, ResourceExhaustedError):
        return point
    if plan is None or "outputs_per_thread" not in point:
        return point
    clamped = dict(point, outputs_per_thread=plan.outputs_per_thread)
    if point_is_valid(scenario, size, architecture, precision, clamped):
        return clamped
    return point


def point_is_valid(scenario: Scenario, size: str, architecture: str,
                   precision: str, plan_kwargs: Dict[str, int]) -> bool:
    """Launch validity of one candidate point (see the module docstring)."""
    arch = get_architecture(architecture)
    block = int(plan_kwargs.get("block_threads", paper_default("block_threads")))
    try:
        validate_block_threads(arch, block)
    except ConfigurationError:
        return False
    try:
        plan = scenario.build_plan(size, architecture, precision, plan_kwargs)
    except (ConfigurationError, ResourceExhaustedError):
        return False
    if plan is not None:
        requested = plan_kwargs.get("outputs_per_thread")
        if requested is not None and plan.outputs_per_thread != int(requested):
            return False  # clamped: duplicates the resolved smaller point
        if plan.occupancy().active_blocks_per_sm < 1:
            return False
    return True


def valid_points(scenario: Scenario, size: str, architecture: str,
                 precision: str, space: DesignSpace = FULL_SPACE,
                 ) -> List[Dict[str, int]]:
    """The pre-filtered candidate list of one tuning cell, paper default included.

    The paper's default configuration is always part of the evaluated set
    (even for reduced spaces) so every tuning report can state "best found
    vs. paper default" from points that went through the identical pipeline.
    """
    points = [point for point in space.candidates(scenario.tunables)
              if point_is_valid(scenario, size, architecture, precision, point)]
    default = paper_default_for(scenario, size, architecture, precision)
    if default not in points and point_is_valid(scenario, size, architecture,
                                                precision, default):
        points.append(default)
    points.sort(key=lambda kw: tuple(sorted(kw.items())))
    return points
