"""Search strategies over the launch-parameter design space.

The tuner used to hard-code one search shape: enumerate every valid point
of every cell, evaluate all of them on the model engine, rank.  That stays
— exhaustive search is cheap on small spaces and is the correctness oracle
for everything else — but it is now one of two :class:`SearchStrategy`
implementations behind a common round-based protocol:

* :class:`ExhaustiveSearch` proposes every point in a single round, in the
  exact (sorted) order the old code enumerated, so job construction, cache
  keys and ``--jobs`` sharding are byte-identical to the pre-strategy tuner.
* :class:`GuidedSearch` is a budgeted local search seeded at the clamped
  paper default: it sweeps one axis at a time (coordinate descent — the
  model's response to P and B is close to separable), keeps the best point
  seen, and repeats until a full cycle brings no improvement or the
  per-cell budget (``budget_fraction`` of the space) is exhausted.  Small
  spaces (``exhaust_threshold`` points or fewer) fall back to exhaustive
  enumeration — a guided pass over four points saves nothing.

A strategy hands out one *session* per tuning cell.  Sessions speak a
two-call protocol — :meth:`~SearchSession.propose` returns the next batch
of unevaluated points, :meth:`~SearchSession.observe` feeds the modelled
times back — so the tuner can gather one round's proposals across *all*
cells into a single executor batch (sharded, cached, deterministic) instead
of searching cell by cell.

Determinism: proposals depend only on the candidate list and the observed
model times (themselves pure functions of the cell), rounds are batched in
cell order, and ties break on the sorted parameter values — the same best
point falls out for any worker count and any cache state.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: fixed axis order of the coordinate-descent sweeps
AXIS_ORDER: Tuple[str, ...] = ("outputs_per_thread", "block_threads",
                               "block_rows")

#: canonical hashable identity of one candidate point
PointKey = Tuple[Tuple[str, int], ...]


def point_key(plan_kwargs: Mapping[str, int]) -> PointKey:
    """Canonical hashable identity of an override point."""
    return tuple(sorted((str(k), int(v)) for k, v in dict(plan_kwargs).items()))


def _coordinate(point: Mapping[str, int], axis: str) -> Optional[int]:
    """A point's coordinate on one axis; absent axes read as constants.

    Candidate points are canonical — ``block_rows=1`` is never spelled out
    — so two points differing only in an elided R=1 still compare equal on
    every other axis.  An axis a scenario does not tune at all (a B-only
    kernel has no P coordinate) reads as ``None`` on every point: one
    value, so it is never treated as a searchable axis.
    """
    if axis in point:
        return int(point[axis])
    if axis == "block_rows":
        return 1
    return None


class SearchSession:
    """Per-cell search state behind the propose/observe protocol.

    The base class implements the bookkeeping every strategy needs — the
    candidate list, the observed times, the best-so-far point with
    deterministic tie-breaking — and leaves :meth:`_next_batch` to the
    strategy.
    """

    def __init__(self, points: Sequence[Mapping[str, int]],
                 seed: Optional[Mapping[str, int]] = None) -> None:
        self.points: List[Dict[str, int]] = [dict(p) for p in points]
        self._by_key: Dict[PointKey, Dict[str, int]] = {
            point_key(p): dict(p) for p in self.points}
        self.seed: Optional[Dict[str, int]] = (
            dict(seed) if seed is not None and point_key(seed) in self._by_key
            else (dict(self.points[0]) if self.points else None))
        self.observed: Dict[PointKey, float] = {}
        self.order: List[PointKey] = []   # evaluation order
        self._pending: List[PointKey] = []

    # -- protocol ------------------------------------------------------------
    def propose(self) -> List[Dict[str, int]]:
        """The next batch of points to evaluate (empty when converged)."""
        if self._pending:
            raise ConfigurationError(
                "propose() called with observations outstanding")
        batch = [key for key in self._next_batch()
                 if key in self._by_key and key not in self.observed]
        # preserve first-proposal order while deduplicating within the batch
        seen = set()
        self._pending = [k for k in batch
                         if not (k in seen or seen.add(k))]
        return [dict(self._by_key[k]) for k in self._pending]

    def observe(self, times: Mapping[PointKey, float]) -> None:
        """Feed back the modelled time of every point of the last batch."""
        for key in self._pending:
            if key not in times:
                raise ConfigurationError(
                    f"no observation for proposed point {dict(key)!r}")
            self.observed[key] = float(times[key])
            self.order.append(key)
        self._pending = []

    # -- state ---------------------------------------------------------------
    @property
    def evaluations(self) -> int:
        return len(self.observed)

    def best(self) -> Optional[Tuple[Dict[str, int], float]]:
        """Best observed (point, model_ms); ties break on parameter values."""
        if not self.observed:
            return None
        key = min(self.observed, key=lambda k: (self.observed[k], k))
        return dict(self._by_key[key]), self.observed[key]

    def evaluated_points(self) -> List[Dict[str, int]]:
        """Every evaluated point, in deterministic (sorted-key) order."""
        return [dict(self._by_key[k]) for k in sorted(self.observed)]

    # -- strategy hook -------------------------------------------------------
    def _next_batch(self) -> List[PointKey]:
        raise NotImplementedError


class _ExhaustiveSession(SearchSession):
    """Every candidate point, one round, enumeration order."""

    def _next_batch(self) -> List[PointKey]:
        if self.observed:
            return []
        return [point_key(p) for p in self.points]


class _GuidedSession(SearchSession):
    """Budgeted coordinate descent seeded at the clamped paper default."""

    def __init__(self, points: Sequence[Mapping[str, int]],
                 seed: Optional[Mapping[str, int]] = None,
                 budget_fraction: float = 0.4,
                 exhaust_threshold: int = 8) -> None:
        super().__init__(points, seed)
        n = len(self.points)
        self.exhaust = n <= exhaust_threshold
        self.budget = n if self.exhaust else max(1, int(budget_fraction * n))
        self._axes = [axis for axis in AXIS_ORDER
                      if len({_coordinate(p, axis) for p in self.points}) > 1]
        self._axis_index = 0
        self._anchor: Optional[PointKey] = None   # best when the cycle began
        self._improved_this_cycle = True

    def _axis_sweep(self, axis: str, centre: Dict[str, int]) -> List[PointKey]:
        """All candidates differing from ``centre`` only on ``axis``."""
        keys = []
        for p in sorted(self.points,
                        key=lambda q: _coordinate(q, axis)):
            if all(_coordinate(p, other) == _coordinate(centre, other)
                   for other in AXIS_ORDER if other != axis):
                keys.append(point_key(p))
        return keys

    def _next_batch(self) -> List[PointKey]:
        if self.exhaust:
            return [] if self.observed else [point_key(p) for p in self.points]
        if not self.points or self.seed is None:
            return []
        remaining = self.budget - self.evaluations
        if remaining <= 0:
            return []
        if not self.observed:
            # first round: sweep the first axis through the seed; the seed
            # leads the batch so the budget truncation can never cut it off
            batch = self._axis_sweep(self._axes[0] if self._axes else
                                     AXIS_ORDER[0], self.seed)
            seed_key = point_key(self.seed)
            batch = [seed_key] + [k for k in batch if k != seed_key]
            self._axis_index = 1
            return batch[:remaining]
        best = self.best()
        assert best is not None
        centre, _ = best
        while True:
            if self._axis_index >= len(self._axes):
                # cycle complete: stop at a fixed point, else go around again
                if not self._improved_this_cycle:
                    return []
                self._axis_index = 0
                self._improved_this_cycle = False
                self._anchor = point_key(centre)
            if not self._axes:
                return []
            axis = self._axes[self._axis_index]
            self._axis_index += 1
            if self._anchor is not None and point_key(centre) != self._anchor:
                self._improved_this_cycle = True
            batch = [k for k in self._axis_sweep(axis, centre)
                     if k not in self.observed]
            if batch:
                return batch[:remaining]
            if self._axis_index >= len(self._axes) and not self._improved_this_cycle:
                return []


class SearchStrategy:
    """A named search shape; hands out one session per tuning cell."""

    name = "base"

    def session(self, points: Sequence[Mapping[str, int]],
                seed: Optional[Mapping[str, int]] = None) -> SearchSession:
        raise NotImplementedError


class ExhaustiveSearch(SearchStrategy):
    """Evaluate every valid point — small spaces, and the search oracle."""

    name = "exhaustive"

    def session(self, points: Sequence[Mapping[str, int]],
                seed: Optional[Mapping[str, int]] = None) -> SearchSession:
        return _ExhaustiveSession(points, seed)


class GuidedSearch(SearchStrategy):
    """Budgeted coordinate descent from the clamped paper default.

    ``budget_fraction`` caps each cell's model evaluations at that fraction
    of its candidate-space size; spaces of ``exhaust_threshold`` points or
    fewer are enumerated outright (the budget arithmetic would only add
    noise there).
    """

    name = "guided"

    def __init__(self, budget_fraction: float = 0.4,
                 exhaust_threshold: int = 8) -> None:
        if not 0 < budget_fraction <= 1:
            raise ConfigurationError(
                f"budget_fraction must lie in (0, 1], got {budget_fraction}")
        self.budget_fraction = float(budget_fraction)
        self.exhaust_threshold = int(exhaust_threshold)

    def session(self, points: Sequence[Mapping[str, int]],
                seed: Optional[Mapping[str, int]] = None) -> SearchSession:
        return _GuidedSession(points, seed,
                              budget_fraction=self.budget_fraction,
                              exhaust_threshold=self.exhaust_threshold)


#: the registered strategies, by CLI/service name
STRATEGIES: Dict[str, type] = {
    ExhaustiveSearch.name: ExhaustiveSearch,
    GuidedSearch.name: GuidedSearch,
}


def get_strategy(name: "str | SearchStrategy") -> SearchStrategy:
    """Resolve a strategy by name (an instance passes through unchanged)."""
    if isinstance(name, SearchStrategy):
        return name
    try:
        return STRATEGIES[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown search strategy {name!r}; "
            f"available: {sorted(STRATEGIES)}") from exc


def budget_for(n_points: int, budget_fraction: float = 0.4,
               exhaust_threshold: int = 8) -> int:
    """The evaluation cap a guided session applies to a space of ``n`` points."""
    if n_points <= exhaust_threshold:
        return n_points
    return max(1, int(math.floor(budget_fraction * n_points)))
