"""Launch-configuration autotuning (the Section 7.1 design-space study).

The paper evaluates every kernel at one launch configuration — sliding-window
depth P = 4 and block size B = 128 — and Section 7.1 argues this sits at the
sweet spot of the registers-per-thread vs. occupancy trade-off.  This package
turns that argument into an experiment:

* :mod:`~repro.tuning.space` declares the design space (P in 1..8, B in
  {64, 128, 256, 512}) and pre-filters it by register-file and occupancy
  validity per architecture;
* :mod:`~repro.tuning.tuner` runs a two-stage search — an exhaustive
  closed-form evaluation of every valid point on the Section 5 model engine,
  then a top-k confirmation on the batched simulator — entirely through the
  cached/sharded :class:`~repro.experiments.jobs.SimulationJob` pipeline, so
  ``ssam-repro --experiment tune`` is deterministic, parallel and 100%
  cache-hits on a warm rerun.
"""

from .space import (
    DEFAULT_BLOCK_THREADS_CHOICES,
    DEFAULT_OUTPUTS_PER_THREAD_RANGE,
    FULL_SPACE,
    PAPER_DEFAULT,
    QUICK_SPACE,
    DesignSpace,
    paper_default_for,
    point_is_valid,
    valid_points,
)
from .tuner import TuneCell, render, run_tuning, tune_cells

__all__ = [
    "DEFAULT_BLOCK_THREADS_CHOICES",
    "DEFAULT_OUTPUTS_PER_THREAD_RANGE",
    "FULL_SPACE",
    "PAPER_DEFAULT",
    "QUICK_SPACE",
    "DesignSpace",
    "TuneCell",
    "paper_default_for",
    "point_is_valid",
    "render",
    "run_tuning",
    "tune_cells",
    "valid_points",
]
