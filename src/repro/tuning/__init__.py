"""Launch-configuration autotuning (the Section 7.1 design-space study).

The paper evaluates every kernel at one launch configuration — sliding-window
depth P = 4 and block size B = 128 — and Section 7.1 argues this sits at the
sweet spot of the registers-per-thread vs. occupancy trade-off.  This package
turns that argument into an experiment:

* :mod:`~repro.tuning.space` declares the design space (P in 1..8, B in
  {64, 128, 256, 512}, plus the extended per-dimension block-shape grid) and
  pre-filters it by register-file and occupancy validity per architecture;
* :mod:`~repro.tuning.search` provides the pluggable search strategies:
  exhaustive enumeration (small spaces, and the correctness oracle) and the
  budgeted guided coordinate descent seeded at the clamped paper default;
* :mod:`~repro.tuning.tuner` orchestrates the two-stage search — a
  strategy-driven closed-form exploration on the Section 5 model engine,
  then a top-k confirmation on the batched simulator — entirely through the
  cached/sharded :class:`~repro.experiments.jobs.SimulationJob` pipeline, so
  ``ssam-repro --experiment tune`` is deterministic, parallel and 100%
  cache-hits on a warm rerun.  Winning configurations persist to the shared
  store's ``tuned_configs`` table, which the planners' default-resolution
  chain (:mod:`repro.core.launch_defaults`) consults.
"""

from .search import (
    STRATEGIES,
    ExhaustiveSearch,
    GuidedSearch,
    SearchStrategy,
    budget_for,
    get_strategy,
)
from .space import (
    DEFAULT_BLOCK_THREADS_CHOICES,
    DEFAULT_OUTPUTS_PER_THREAD_RANGE,
    EXTENDED_SPACE,
    FULL_SPACE,
    PAPER_DEFAULT,
    QUICK_SPACE,
    DesignSpace,
    canonical_point,
    clamp_point,
    paper_default_for,
    point_is_valid,
    valid_points,
)
from .tuner import TuneCell, render, run_tuning, store_tuned_configs, tune_cells

__all__ = [
    "DEFAULT_BLOCK_THREADS_CHOICES",
    "DEFAULT_OUTPUTS_PER_THREAD_RANGE",
    "EXTENDED_SPACE",
    "FULL_SPACE",
    "PAPER_DEFAULT",
    "QUICK_SPACE",
    "STRATEGIES",
    "DesignSpace",
    "ExhaustiveSearch",
    "GuidedSearch",
    "SearchStrategy",
    "TuneCell",
    "budget_for",
    "canonical_point",
    "clamp_point",
    "get_strategy",
    "paper_default_for",
    "point_is_valid",
    "render",
    "run_tuning",
    "store_tuned_configs",
    "tune_cells",
    "valid_points",
]
