"""The stencil benchmark suite of Table 3.

Each entry records the stencil order ``k`` and the FLOP-per-point count
(FPP) exactly as reported in Table 3, together with the domain sizes used in
the evaluation (8192^2 for 2-D, 512^3 for 3-D).  The geometric shapes follow
the benchmark suite of Rawat et al. referenced by the paper: the ``2dXXpt``
entries up to ``2ds25pt`` are star stencils of growing radius, the remaining
2-D entries are dense boxes, and the 3-D entries are the classic star/box
shapes.

The ``poisson`` benchmark's FPP (21) reflects the extra arithmetic of the
original generated code rather than one FMA per tap; the FPP metadata is
carried through to the GFLOP/s conversion so throughput is reported the way
the paper reports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import SpecificationError
from .spec import (
    StencilPoint,
    StencilSpec,
    box2d,
    box3d,
    diffusion2d,
    diffusion3d,
    star2d,
    star3d,
)

#: evaluation domain edge lengths from Table 3
DOMAIN_2D = (8192, 8192)
DOMAIN_3D = (512, 512, 512)


@dataclass(frozen=True)
class StencilBenchmark:
    """One row of Table 3: a stencil spec plus its reported metadata."""

    spec: StencilSpec
    order: int
    flops_per_point: int
    domain: Tuple[int, ...]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def dims(self) -> int:
        return self.spec.dims

    @property
    def cells(self) -> int:
        """Number of grid cells in the evaluation domain."""
        total = 1
        for extent in self.domain:
            total *= extent
        return total

    def as_row(self) -> Dict[str, object]:
        """Row formatted like Table 3 (name, k, FPP)."""
        return {"benchmark": self.name, "k": self.order, "fpp": self.flops_per_point}


def _poisson3d() -> StencilSpec:
    """3-D second-order Poisson operator (7-point with non-uniform weights)."""
    points = (
        StencilPoint(0, 0, 0, -6.0 / 26.0 + 1.0),
        StencilPoint(-1, 0, 0, 1.0 / 26.0),
        StencilPoint(1, 0, 0, 1.0 / 26.0),
        StencilPoint(0, -1, 0, 2.0 / 26.0),
        StencilPoint(0, 1, 0, 2.0 / 26.0),
        StencilPoint(0, 0, -1, 3.0 / 26.0),
        StencilPoint(0, 0, 1, 3.0 / 26.0),
    )
    return StencilSpec(name="poisson", points=points, dims=3, flops_per_point=21)


def _varcoef2d() -> StencilSpec:
    """2-D anisotropic diffusion: a 9-point box with non-uniform weights.

    Post-paper registry addition (not part of Table 3): every tap carries a
    distinct coefficient, so kernels cannot fold taps into symmetric pairs
    and the coefficient-column schedule is exercised with unequal weights.
    The weights sum to 1 so iterated application stays bounded.
    """
    points = (
        StencilPoint(0, 0, 0, 0.44),
        StencilPoint(-1, 0, 0, 0.11),
        StencilPoint(1, 0, 0, 0.09),
        StencilPoint(0, -1, 0, 0.07),
        StencilPoint(0, 1, 0, 0.13),
        StencilPoint(-1, -1, 0, 0.03),
        StencilPoint(1, -1, 0, 0.02),
        StencilPoint(-1, 1, 0, 0.05),
        StencilPoint(1, 1, 0, 0.06),
    )
    return StencilSpec(name="2dv9pt", points=points, dims=2, flops_per_point=17)


def _build_catalog() -> Dict[str, StencilBenchmark]:
    entries: List[Tuple[StencilSpec, int, int]] = [
        (diffusion2d("2d5pt"), 1, 9),
        (star2d(2, name="2d9pt", flops_per_point=17), 2, 17),
        (star2d(3, name="2d13pt", flops_per_point=25), 3, 25),
        (star2d(4, name="2d17pt", flops_per_point=33), 4, 33),
        (star2d(5, name="2d21pt", flops_per_point=41), 5, 41),
        (star2d(6, name="2ds25pt", flops_per_point=49), 6, 49),
        (box2d(2, name="2d25pt", flops_per_point=33), 2, 33),
        (box2d(4, name="2d64pt", flops_per_point=73, asymmetric=True), 4, 73),
        (box2d(4, name="2d81pt", flops_per_point=95), 4, 95),
        (box2d(5, name="2d121pt", flops_per_point=241), 5, 241),
        (diffusion3d("3d7pt"), 1, 13),
        (star3d(2, name="3d13pt", flops_per_point=25), 2, 25),
        (box3d(1, name="3d27pt", flops_per_point=30), 1, 30),
        (box3d(2, name="3d125pt", flops_per_point=130), 2, 130),
        (_poisson3d(), 1, 21),
        # post-paper registry additions (kept out of the Table 3 /
        # Figure 5 / Figure 6 name lists, which mirror the paper exactly)
        (_varcoef2d(), 1, 17),
    ]
    catalog: Dict[str, StencilBenchmark] = {}
    for spec, order, fpp in entries:
        domain = DOMAIN_2D if spec.dims == 2 else DOMAIN_3D
        catalog[spec.name] = StencilBenchmark(spec=spec, order=order,
                                              flops_per_point=fpp, domain=domain)
    return catalog


#: every benchmark of Table 3 keyed by name, in paper order
CATALOG: Dict[str, StencilBenchmark] = _build_catalog()

#: the benchmark names in the order they appear in Figure 5
FIGURE5_BENCHMARKS: Tuple[str, ...] = (
    "2d5pt", "2d9pt", "2d13pt", "2d17pt", "2d21pt", "2ds25pt", "2d25pt",
    "2d64pt", "2d81pt", "2d121pt", "3d7pt", "3d27pt", "3d125pt", "poisson",
)

#: the benchmark names used in the temporal-blocking comparison (Figure 6)
FIGURE6_BENCHMARKS: Tuple[str, ...] = ("2d5pt", "2d9pt", "3d7pt", "3d13pt", "poisson")


def get_benchmark(name: str) -> StencilBenchmark:
    """Look up a Table 3 benchmark by name."""
    try:
        return CATALOG[name]
    except KeyError as exc:
        raise SpecificationError(
            f"unknown stencil benchmark {name!r}; available: {sorted(CATALOG)}"
        ) from exc


def get_stencil(name: str) -> StencilSpec:
    """Look up only the stencil spec of a Table 3 benchmark."""
    return get_benchmark(name).spec


def table3_rows() -> List[Dict[str, object]]:
    """Rows of Table 3 in paper order (benchmark, k, FPP)."""
    order = (
        "2d5pt", "2d9pt", "2d13pt", "2d17pt", "2d21pt", "2ds25pt", "2d25pt",
        "2d64pt", "2d81pt", "2d121pt", "3d7pt", "3d13pt", "3d27pt", "3d125pt",
        "poisson",
    )
    return [CATALOG[name].as_row() for name in order]


def benchmarks_2d() -> List[StencilBenchmark]:
    """All 2-D benchmarks of the catalog."""
    return [bench for bench in CATALOG.values() if bench.dims == 2]


def benchmarks_3d() -> List[StencilBenchmark]:
    """All 3-D benchmarks of the catalog."""
    return [bench for bench in CATALOG.values() if bench.dims == 3]
