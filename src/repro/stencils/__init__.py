"""Stencil specifications and the Table 3 benchmark catalog."""

from .catalog import (
    CATALOG,
    DOMAIN_2D,
    DOMAIN_3D,
    FIGURE5_BENCHMARKS,
    FIGURE6_BENCHMARKS,
    StencilBenchmark,
    benchmarks_2d,
    benchmarks_3d,
    get_benchmark,
    get_stencil,
    table3_rows,
)
from .spec import (
    StencilPoint,
    StencilSpec,
    box2d,
    box3d,
    diffusion2d,
    diffusion3d,
    star2d,
    star3d,
)

__all__ = [
    "CATALOG",
    "DOMAIN_2D",
    "DOMAIN_3D",
    "FIGURE5_BENCHMARKS",
    "FIGURE6_BENCHMARKS",
    "StencilBenchmark",
    "benchmarks_2d",
    "benchmarks_3d",
    "get_benchmark",
    "get_stencil",
    "table3_rows",
    "StencilPoint",
    "StencilSpec",
    "box2d",
    "box3d",
    "diffusion2d",
    "diffusion3d",
    "star2d",
    "star3d",
]
