"""Stencil specifications for 2-D and 3-D structured-grid computations.

A stencil is a weighted sum of neighbouring cells applied iteratively to a
grid (Section 2.2).  Specifications are geometry-only objects: the same
:class:`StencilSpec` drives the SSAM kernels, every baseline, the CPU
reference and the analytical traffic profiles, guaranteeing that all of them
compute the same operator.

Boundary handling follows the common benchmark convention used by the codes
compared in the paper: out-of-domain neighbours are clamped to the nearest
in-domain cell ("edge"/replicate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dtypes import resolve_precision
from ..errors import SpecificationError
from ..serialization import stable_digest


@dataclass(frozen=True)
class StencilPoint:
    """One tap of a stencil: an offset and its coefficient."""

    dx: int
    dy: int
    dz: int = 0
    coefficient: float = 1.0

    @property
    def offset(self) -> Tuple[int, int, int]:
        return (self.dx, self.dy, self.dz)


@dataclass(frozen=True)
class StencilSpec:
    """A stencil operator on a 2-D or 3-D structured grid.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"2d5pt"``).
    points:
        The taps.  Offsets are relative to the updated cell.
    dims:
        2 or 3.
    flops_per_point:
        FLOPs per updated cell.  Defaults to ``2 * len(points) - 1`` (one
        FMA per tap); Table 3 overrides it for benchmarks whose original
        source performs extra arithmetic.
    """

    name: str
    points: Tuple[StencilPoint, ...]
    dims: int
    flops_per_point: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dims not in (2, 3):
            raise SpecificationError("stencils must be 2-D or 3-D")
        if not self.points:
            raise SpecificationError("a stencil needs at least one point")
        if self.dims == 2 and any(p.dz != 0 for p in self.points):
            raise SpecificationError("2-D stencil has a tap with dz != 0")
        offsets = [p.offset for p in self.points]
        if len(set(offsets)) != len(offsets):
            raise SpecificationError(f"duplicate offsets in stencil {self.name!r}")
        if self.flops_per_point is None:
            object.__setattr__(self, "flops_per_point", 2 * len(self.points) - 1)

    # -- identity ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description of this stencil."""
        return {
            "kind": "stencil",
            "name": self.name,
            "dims": self.dims,
            "flops_per_point": self.flops_per_point,
            "points": [[p.dx, p.dy, p.dz, p.coefficient] for p in self.points],
        }

    def fingerprint(self) -> str:
        """Stable content hash used by the simulation cache.  Computed once
        per instance (specs are immutable)."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = stable_digest(self.to_dict())
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- geometry ----------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Number of taps."""
        return len(self.points)

    @property
    def order(self) -> int:
        """Stencil order k: the maximum absolute offset along any axis."""
        return max(max(abs(p.dx), abs(p.dy), abs(p.dz)) for p in self.points)

    @property
    def reach(self) -> Tuple[int, int, int]:
        """Maximum absolute reach along (x, y, z)."""
        return (
            max(abs(p.dx) for p in self.points),
            max(abs(p.dy) for p in self.points),
            max(abs(p.dz) for p in self.points),
        )

    @property
    def x_range(self) -> Tuple[int, int]:
        """(min dx, max dx) — the lane-direction footprint."""
        return (min(p.dx for p in self.points), max(p.dx for p in self.points))

    @property
    def y_range(self) -> Tuple[int, int]:
        """(min dy, max dy) — the register-cache-direction footprint."""
        return (min(p.dy for p in self.points), max(p.dy for p in self.points))

    @property
    def z_range(self) -> Tuple[int, int]:
        """(min dz, max dz)."""
        return (min(p.dz for p in self.points), max(p.dz for p in self.points))

    @property
    def footprint_width(self) -> int:
        """M — the x extent of the footprint (maps to the warp direction)."""
        lo, hi = self.x_range
        return hi - lo + 1

    @property
    def footprint_height(self) -> int:
        """N — the y extent of the footprint (maps to the register cache)."""
        lo, hi = self.y_range
        return hi - lo + 1

    @property
    def footprint_depth(self) -> int:
        """Z extent of the footprint (1 for 2-D stencils)."""
        lo, hi = self.z_range
        return hi - lo + 1

    @property
    def is_star(self) -> bool:
        """True when every tap lies on a coordinate axis."""
        return all(
            (p.dx != 0) + (p.dy != 0) + (p.dz != 0) <= 1 for p in self.points
        )

    def columns(self) -> Dict[int, List[StencilPoint]]:
        """Taps grouped by their x offset, sorted (Listing 2's coefficient groups).

        For 3-D stencils only the in-plane (dz == 0) taps are grouped; the
        out-of-plane taps are handled by the inter-warp path (Section 4.9).
        """
        groups: Dict[int, List[StencilPoint]] = {}
        for point in self.points:
            if point.dz != 0:
                continue
            groups.setdefault(point.dx, []).append(point)
        return {dx: sorted(pts, key=lambda p: p.dy) for dx, pts in sorted(groups.items())}

    def out_of_plane_points(self) -> List[StencilPoint]:
        """Taps with dz != 0 (require inter-warp communication in SSAM)."""
        return [p for p in self.points if p.dz != 0]

    def coefficient_array(self) -> np.ndarray:
        """Dense (depth, height, width) coefficient array of the footprint."""
        (x_lo, x_hi), (y_lo, y_hi), (z_lo, z_hi) = self.x_range, self.y_range, self.z_range
        array = np.zeros((z_hi - z_lo + 1, y_hi - y_lo + 1, x_hi - x_lo + 1))
        for point in self.points:
            array[point.dz - z_lo, point.dy - y_lo, point.dx - x_lo] = point.coefficient
        return array

    # -- reference implementation --------------------------------------------
    def reference(self, grid: np.ndarray, iterations: int = 1,
                  precision: object = None) -> np.ndarray:
        """Apply the stencil ``iterations`` times on the host (ground truth)."""
        if precision is None:
            dtype = grid.dtype
        else:
            dtype = resolve_precision(precision).numpy_dtype
        current = np.asarray(grid, dtype=np.float64)
        if current.ndim != self.dims:
            raise SpecificationError(
                f"stencil {self.name!r} is {self.dims}-D but the grid is {current.ndim}-D"
            )
        for _ in range(iterations):
            current = self._apply_once(current)
        return current.astype(dtype)

    def _apply_once(self, grid: np.ndarray) -> np.ndarray:
        (x_lo, x_hi), (y_lo, y_hi), (z_lo, z_hi) = self.x_range, self.y_range, self.z_range
        if self.dims == 2:
            height, width = grid.shape
            padded = np.pad(grid, ((max(0, -y_lo), max(0, y_hi)),
                                   (max(0, -x_lo), max(0, x_hi))), mode="edge")
            result = np.zeros_like(grid)
            for point in self.points:
                y0 = point.dy + max(0, -y_lo)
                x0 = point.dx + max(0, -x_lo)
                result += point.coefficient * padded[y0:y0 + height, x0:x0 + width]
            return result
        depth, height, width = grid.shape
        padded = np.pad(grid, ((max(0, -z_lo), max(0, z_hi)),
                               (max(0, -y_lo), max(0, y_hi)),
                               (max(0, -x_lo), max(0, x_hi))), mode="edge")
        result = np.zeros_like(grid)
        for point in self.points:
            z0 = point.dz + max(0, -z_lo)
            y0 = point.dy + max(0, -y_lo)
            x0 = point.dx + max(0, -x_lo)
            result += point.coefficient * padded[z0:z0 + depth, y0:y0 + height, x0:x0 + width]
        return result

    # -- conversions ----------------------------------------------------------
    def to_convolution(self):
        """Express a 2-D stencil as an equivalent convolution specification."""
        from ..convolution.spec import ConvolutionSpec

        if self.dims != 2:
            raise SpecificationError("only 2-D stencils convert to 2-D convolutions")
        (x_lo, _), (y_lo, _) = self.x_range, self.y_range
        weights = self.coefficient_array()[0]
        anchor = (-x_lo, -y_lo)
        return ConvolutionSpec(weights=weights, anchor=anchor, boundary="edge",
                               name=f"{self.name}-as-conv")


# ---------------------------------------------------------------------------
# constructors used by the Table 3 catalog and by tests
# ---------------------------------------------------------------------------

def star2d(radius: int, center_coefficient: float = 0.5,
           neighbor_coefficient: Optional[float] = None, name: Optional[str] = None,
           flops_per_point: Optional[int] = None) -> StencilSpec:
    """Star-shaped 2-D stencil of the given radius (4*radius + 1 points)."""
    if radius < 1:
        raise SpecificationError("radius must be >= 1")
    if neighbor_coefficient is None:
        neighbor_coefficient = 0.5 / (4 * radius)
    points = [StencilPoint(0, 0, 0, center_coefficient)]
    for r in range(1, radius + 1):
        for dx, dy in ((r, 0), (-r, 0), (0, r), (0, -r)):
            points.append(StencilPoint(dx, dy, 0, neighbor_coefficient / r))
    return StencilSpec(name=name or f"2d{4 * radius + 1}pt-star", points=tuple(points),
                       dims=2, flops_per_point=flops_per_point)


def box2d(radius_x: int, radius_y: Optional[int] = None, name: Optional[str] = None,
          flops_per_point: Optional[int] = None,
          asymmetric: bool = False) -> StencilSpec:
    """Dense box-shaped 2-D stencil.

    ``asymmetric=True`` drops the most negative row/column to produce
    even-extent footprints such as the 8x8 used by the ``2d64pt`` benchmark.
    """
    radius_y = radius_x if radius_y is None else radius_y
    x_lo = -radius_x + (1 if asymmetric else 0)
    y_lo = -radius_y + (1 if asymmetric else 0)
    points = []
    count = (radius_x - x_lo + 1) * (radius_y - y_lo + 1)
    for dy in range(y_lo, radius_y + 1):
        for dx in range(x_lo, radius_x + 1):
            weight = 1.0 / count if (dx, dy) != (0, 0) else 1.0 / count + 0.25
            points.append(StencilPoint(dx, dy, 0, weight))
    return StencilSpec(name=name or f"2dbox{count}", points=tuple(points), dims=2,
                       flops_per_point=flops_per_point)


def star3d(radius: int, name: Optional[str] = None,
           flops_per_point: Optional[int] = None) -> StencilSpec:
    """Star-shaped 3-D stencil (6*radius + 1 points)."""
    if radius < 1:
        raise SpecificationError("radius must be >= 1")
    neighbor = 0.5 / (6 * radius)
    points = [StencilPoint(0, 0, 0, 0.5)]
    for r in range(1, radius + 1):
        for dx, dy, dz in ((r, 0, 0), (-r, 0, 0), (0, r, 0), (0, -r, 0), (0, 0, r), (0, 0, -r)):
            points.append(StencilPoint(dx, dy, dz, neighbor / r))
    return StencilSpec(name=name or f"3d{6 * radius + 1}pt-star", points=tuple(points),
                       dims=3, flops_per_point=flops_per_point)


def box3d(radius: int, name: Optional[str] = None,
          flops_per_point: Optional[int] = None) -> StencilSpec:
    """Dense box-shaped 3-D stencil ((2r+1)^3 points)."""
    if radius < 1:
        raise SpecificationError("radius must be >= 1")
    extent = 2 * radius + 1
    count = extent ** 3
    points = []
    for dz in range(-radius, radius + 1):
        for dy in range(-radius, radius + 1):
            for dx in range(-radius, radius + 1):
                weight = 1.0 / count if (dx, dy, dz) != (0, 0, 0) else 1.0 / count + 0.25
                points.append(StencilPoint(dx, dy, dz, weight))
    return StencilSpec(name=name or f"3dbox{count}", points=tuple(points), dims=3,
                       flops_per_point=flops_per_point)


def diffusion2d(name: str = "2d5pt") -> StencilSpec:
    """The first-order 2-D diffusion (Jacobi) 5-point stencil of Figure 1a."""
    west, north, current, south, east = 0.125, 0.125, 0.5, 0.125, 0.125
    points = (
        StencilPoint(-1, 0, 0, west),
        StencilPoint(0, -1, 0, north),
        StencilPoint(0, 0, 0, current),
        StencilPoint(0, 1, 0, south),
        StencilPoint(1, 0, 0, east),
    )
    return StencilSpec(name=name, points=points, dims=2, flops_per_point=9)


def diffusion3d(name: str = "3d7pt") -> StencilSpec:
    """The 3-D diffusion 7-point stencil of Figure 1b."""
    center = 0.4
    neighbor = 0.1
    points = (
        StencilPoint(0, 0, 0, center),
        StencilPoint(-1, 0, 0, neighbor),
        StencilPoint(1, 0, 0, neighbor),
        StencilPoint(0, -1, 0, neighbor),
        StencilPoint(0, 1, 0, neighbor),
        StencilPoint(0, 0, -1, neighbor),
        StencilPoint(0, 0, 1, neighbor),
    )
    return StencilSpec(name=name, points=points, dims=3, flops_per_point=13)
