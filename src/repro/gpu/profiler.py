"""Analytical timing model that converts counted work into kernel time.

The model is a bandwidth/throughput ("roofline-with-pipes") model extended
with an occupancy-based latency-attainment term:

* **DRAM** — unique bytes moved divided by the sustainable bandwidth, scaled
  by how well the resident warps can keep enough requests in flight
  (Little's law: ``active_warps x MLP x sector / latency``).
* **FMA/ALU pipe** — warp arithmetic instructions over the core throughput
  (halved for double precision, matching the 1:2 Tesla ratio).
* **Shared-memory pipe** — divergent accesses at one warp access per cycle
  (half rate for 8-byte words), bank conflicts serialised, warp-uniform
  broadcasts at the cheaper broadcast rate.
* **Shuffle pipe** — one warp shuffle per cycle per SM.
* **L1/texture pipe** — global load/store instructions that hit in cache.
* **Issue width** — total instructions over the scheduler issue rate.

The kernel time estimate is the maximum of the pipe times plus a fixed
launch overhead.  This is deliberately simple — the paper's conclusions are
about *which* of these terms dominates for each implementation scheme, and
that is exactly what the maximum exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..dtypes import resolve_precision
from .architecture import GPUArchitecture
from .counters import KernelCounters
from .occupancy import OccupancyResult

#: fixed kernel launch overhead (driver + dispatch), seconds
LAUNCH_OVERHEAD_SECONDS = 4.0e-6

#: cycles the memory system needs to service one 128-byte sector
SECTOR_SERVICE_CYCLES = 4.0

#: sustained-bandwidth penalty for kernels that round-trip their main data
#: stream through the scratchpad (global -> register -> shared -> barrier ->
#: shared -> register): the barrier between staging and compute drains the
#: block's outstanding memory requests, so staging of the next tile cannot
#: overlap the tail of the previous compute phase.  Register-streaming
#: kernels such as SSAM keep the memory pipeline full and take no penalty.
BARRIER_DRAIN_FACTOR = 0.85

#: a kernel is considered scratchpad-staged when its shared-memory store
#: instruction count is a significant fraction of its global-load count
STAGING_STORE_THRESHOLD = 0.3


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-resource time estimates for one kernel launch (seconds)."""

    dram_seconds: float
    arithmetic_seconds: float
    smem_seconds: float
    shfl_seconds: float
    l1_seconds: float
    issue_seconds: float
    sync_seconds: float
    launch_overhead_seconds: float
    bandwidth_attainment: float
    total_seconds: float
    bottleneck: str

    def as_dict(self) -> Dict[str, float]:
        """All components keyed by name (bottleneck excluded)."""
        return {
            "dram": self.dram_seconds,
            "arithmetic": self.arithmetic_seconds,
            "smem": self.smem_seconds,
            "shfl": self.shfl_seconds,
            "l1": self.l1_seconds,
            "issue": self.issue_seconds,
            "sync": self.sync_seconds,
        }


def bandwidth_attainment(architecture: GPUArchitecture, occupancy: OccupancyResult,
                         memory_parallelism: float) -> float:
    """Fraction of peak DRAM bandwidth sustainable at this occupancy.

    Little's law: the device sustains full bandwidth only if the resident
    warps collectively keep ``latency / sector_service`` sectors in flight.
    """
    latency = architecture.latencies.gmem_load
    sectors_needed = latency / SECTOR_SERVICE_CYCLES
    sectors_in_flight = occupancy.active_warps_per_sm * max(memory_parallelism, 1.0)
    if sectors_needed <= 0:
        return 1.0
    return float(min(1.0, sectors_in_flight / sectors_needed))


def estimate_time(
    counters: KernelCounters,
    architecture: GPUArchitecture,
    precision: object = "float32",
    occupancy: Optional[OccupancyResult] = None,
    memory_parallelism: float = 4.0,
    launch_overhead: float = LAUNCH_OVERHEAD_SECONDS,
) -> TimingBreakdown:
    """Convert counters into a :class:`TimingBreakdown` on an architecture."""
    prec = resolve_precision(precision)
    clock = architecture.core_clock_hz
    sms = architecture.sm_count
    tput = architecture.throughput
    per_sm_rate = clock * sms  # cycles/s across the whole device (per pipe unit)

    # --- DRAM ---------------------------------------------------------------
    attainment = 1.0
    if occupancy is not None:
        attainment = bandwidth_attainment(architecture, occupancy, memory_parallelism)
    staged_through_scratchpad = (
        counters.sync > 0
        and counters.smem_store > STAGING_STORE_THRESHOLD * max(counters.gmem_load, 1.0)
    )
    if staged_through_scratchpad:
        attainment *= BARRIER_DRAIN_FACTOR
    effective_bw = architecture.effective_bandwidth_bytes * attainment
    dram_seconds = counters.dram_bytes / effective_bw if effective_bw > 0 else 0.0

    # --- arithmetic pipe ------------------------------------------------------
    arith_cycles = (
        counters.fma / tput.arithmetic("fma", prec.itemsize)
        + counters.add / tput.arithmetic("add", prec.itemsize)
        + counters.mul / tput.arithmetic("mul", prec.itemsize)
        + counters.misc / tput.misc
    )
    arithmetic_seconds = arith_cycles / per_sm_rate

    # --- shared-memory pipe ---------------------------------------------------
    smem_rate = tput.shared(prec.itemsize)
    smem_cycles = (
        (counters.smem_load + counters.smem_store + counters.smem_bank_conflicts) / smem_rate
        + counters.smem_broadcast / tput.smem_broadcast
    )
    smem_seconds = smem_cycles / per_sm_rate

    # --- shuffle pipe ----------------------------------------------------------
    shfl_seconds = (counters.shfl / tput.shfl) / per_sm_rate

    # --- L1 / texture pipe ------------------------------------------------------
    l1_cycles = (counters.gmem_load + counters.gmem_store) / tput.l1
    # uncoalesced accesses replay sectors through the LSU
    extra_sectors = max(
        0.0,
        counters.gmem_load_transactions + counters.gmem_store_transactions
        - (counters.gmem_load + counters.gmem_store),
    )
    l1_cycles += extra_sectors / tput.l1
    l1_seconds = l1_cycles / per_sm_rate

    # --- issue width --------------------------------------------------------------
    issue_seconds = (counters.total_instructions / tput.issue_width) / per_sm_rate

    # --- synchronisation -----------------------------------------------------------
    # barriers overlap across the resident blocks of an SM; what remains is
    # the issue cost of the bar.sync instructions themselves
    sync_seconds = (counters.sync / tput.sync) / per_sm_rate

    components = {
        "dram": dram_seconds,
        "arithmetic": arithmetic_seconds,
        "smem": smem_seconds,
        "shfl": shfl_seconds,
        "l1": l1_seconds,
        "issue": issue_seconds,
        "sync": sync_seconds,
    }
    bottleneck = max(components, key=lambda key: components[key])
    total = max(components.values()) + launch_overhead
    return TimingBreakdown(
        dram_seconds=dram_seconds,
        arithmetic_seconds=arithmetic_seconds,
        smem_seconds=smem_seconds,
        shfl_seconds=shfl_seconds,
        l1_seconds=l1_seconds,
        issue_seconds=issue_seconds,
        sync_seconds=sync_seconds,
        launch_overhead_seconds=launch_overhead,
        bandwidth_attainment=attainment,
        total_seconds=total,
        bottleneck=bottleneck,
    )
