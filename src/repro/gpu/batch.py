"""Batched grid execution: many thread blocks as one vectorized pass.

The legacy engine in :mod:`repro.gpu.kernel` runs one
:class:`~repro.gpu.block.BlockContext` per grid block in a Python loop; for
paper-scale grids that is millions of interpreter iterations.  The
:class:`BatchedBlockContext` defined here executes a *batch* of blocks
simultaneously: every per-thread register vector has shape
``(num_blocks, block_threads)`` instead of ``(block_threads,)`` and the
block indices become ``(num_blocks, 1)`` column vectors, so kernel bodies
written against the legacy context run unchanged — per-block scalars simply
broadcast along the new leading axis.

All accounting is vectorized to match, and is **exactly** equivalent to the
per-block path (the differential tests assert bit-identical outputs and
counters):

* warp-coalescing sector counts: one sorted unique-count pass over a
  ``(batch * warps, warp_size)`` line matrix
  (:func:`repro.gpu.memory.rowwise_unique_counts`);
* per-block unique-line DRAM accounting: a segmented unique over the batch
  (:class:`BatchedTrafficTracker`);
* shared-memory bank conflicts: one ``bincount`` over ``(warp, bank)``
  pairs (:func:`repro.gpu.shared_memory.bank_conflict_profile`).

Functional scatter semantics also match the sequential engine: batches are
flattened in block order, so when two blocks store to the same location the
higher block index wins, exactly as in the per-block loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dtypes import Precision, resolve_precision
from ..errors import SimulationError
from .architecture import GPUArchitecture
from .block import _SIMTContextBase
from .check import active_race_checker
from .counters import KernelCounters
from .memory import (
    _SENTINEL,
    DeviceBuffer,
    coalesced_transactions_matrix,
    rowwise_unique_counts,
    rowwise_unique_pad,
)
from .shared_memory import SharedArray, SharedMemory, bank_conflict_profile
from .simt import grouped_warp_counts


@dataclass
class BatchedSharedArray(SharedArray):
    """A named shared-memory allocation replicated across a batch of blocks.

    ``array`` has shape ``(num_blocks, *shape)``: every block of the batch
    owns an independent copy, exactly as each block owns its own scratchpad
    on hardware.
    """

    @property
    def num_blocks(self) -> int:
        return int(self.array.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes of one block's copy (what counts against the capacity)."""
        return int(self.array.nbytes // max(1, self.num_blocks))

    @property
    def flat(self) -> np.ndarray:
        """Per-block flat view, shape ``(num_blocks, size)``."""
        return self.array.reshape(self.array.shape[0], -1)


class BatchedSharedMemory(SharedMemory):
    """Shared-memory arenas for a whole batch of thread blocks.

    Same capacity checks per block and cumulative statistics fields as
    :class:`~repro.gpu.shared_memory.SharedMemory`, but each named array is
    allocated once for the batch with a leading block axis.
    """

    def __init__(self, num_blocks: int, capacity_bytes: int,
                 banks: int = 32, bank_bytes: int = 4) -> None:
        super().__init__(capacity_bytes, banks, bank_bytes)
        self.num_blocks = int(num_blocks)

    def allocate(self, name: str, shape: Tuple[int, ...],
                 precision: object = "float32") -> BatchedSharedArray:
        """Allocate a named shared array in every block of the batch."""
        # per-block capacity is validated before materializing the batch copies
        prec, per_block = self._check_allocate(name, shape, precision)
        array = np.zeros((self.num_blocks,) + tuple(shape), dtype=prec.numpy_dtype)
        shared = BatchedSharedArray(name=name, array=array,
                                    offset_bytes=self._used_bytes)
        self._arrays[name] = shared
        self._used_bytes += per_block
        return shared


class BatchedTrafficTracker:
    """Per-block unique-line DRAM read accounting for a batch of blocks.

    Records the ``(batch, lanes)`` cache-line matrices of every counted load
    and computes each block's unique-line count with segmented sorts — the
    vectorised equivalent of running one
    :class:`~repro.gpu.memory.BlockTrafficTracker` per block.

    Memory is bounded: whenever a buffer's pending matrices exceed
    ``compact_columns`` columns they are folded into a sentinel-padded
    per-block unique-line matrix (:func:`~repro.gpu.memory.rowwise_unique_pad`),
    whose width is the per-block working set (tile + halo lines) rather than
    the total number of recorded accesses.  Kernels with many counted loads
    per block therefore hold O(batch * (compact_columns + unique_lines))
    instead of O(batch * threads * loads).

    Compaction *work* is bounded too.  Folding into a single compact matrix
    would re-sort the whole accumulated working set on every fold — on an
    adversarial pattern where every load touches fresh lines (zero reuse,
    so the working set never stops growing) that is quadratic in the number
    of recorded columns.  Instead, folds append *segments* that merge
    size-tiered, LSM style: a segment is only merged into its neighbour
    when it has grown to a comparable width, so each recorded column is
    re-sorted O(log columns) times and total compaction work is
    O(columns * log columns) with O(log columns) live segments.
    ``compaction_work`` counts the cells every fold/merge sorts — the
    regression benchmark pins its growth on the adversarial pattern.
    """

    #: pending columns per buffer before folding into the compact form
    COMPACT_COLUMNS = 1024
    #: a segment at least this many times wider than the one folded after
    #: it is left alone; smaller neighbours merge (amortization factor)
    MERGE_FACTOR = 2

    def __init__(self, num_blocks: int, line_bytes: int = 128,
                 compact_columns: Optional[int] = None) -> None:
        self.num_blocks = int(num_blocks)
        self.line_bytes = line_bytes
        self.compact_columns = int(compact_columns or self.COMPACT_COLUMNS)
        self._pending: Dict[int, List[np.ndarray]] = {}
        self._pending_columns: Dict[int, int] = {}
        #: per-buffer compacted segments, widest first
        self._segments: Dict[int, List[np.ndarray]] = {}
        #: total cells (rows x columns) sorted by folds and merges
        self.compaction_work: int = 0

    def record_read(self, buffer: DeviceBuffer, lines: np.ndarray,
                    mask: Optional[np.ndarray]) -> None:
        """Record one load's line matrix (``mask`` marks the active lanes)."""
        if buffer.cached:
            return
        chunk = np.where(mask, lines, _SENTINEL) if mask is not None \
            else np.ascontiguousarray(lines)
        key = buffer.buffer_id
        self._pending.setdefault(key, []).append(chunk)
        self._pending_columns[key] = self._pending_columns.get(key, 0) + chunk.shape[1]
        if self._pending_columns[key] >= self.compact_columns:
            self._fold(key)

    def _unique(self, chunks: List[np.ndarray]) -> np.ndarray:
        stacked = chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=1)
        self.compaction_work += stacked.size
        return rowwise_unique_pad(stacked)

    def _fold(self, key: int) -> None:
        """Compact the pending run into a new segment; merge size tiers."""
        chunks = self._pending.pop(key, [])
        self._pending_columns[key] = 0
        if not chunks:
            return
        segments = self._segments.setdefault(key, [])
        segments.append(self._unique(chunks))
        # size-tiered merge: fold the newest segment into its neighbour
        # until the neighbour is comfortably wider (binary-counter style)
        while (len(segments) >= 2 and segments[-2].shape[1]
               < self.MERGE_FACTOR * segments[-1].shape[1]):
            tail = segments.pop()
            segments[-1] = self._unique([segments[-1], tail])

    def finalize(self) -> float:
        """Total DRAM read bytes: unique lines per block, summed over blocks."""
        total = 0
        for key in set(self._pending) | set(self._segments):
            self._fold(key)
            segments = self._segments.get(key)
            if not segments:
                continue
            compact = (segments[0] if len(segments) == 1
                       else self._unique(segments))
            self._segments[key] = [compact]
            total += int((compact != _SENTINEL).sum()) * self.line_bytes
        return float(total)


class BatchedBlockContext(_SIMTContextBase):
    """Execution context of a batch of thread blocks on the simulated GPU.

    Drop-in replacement for :class:`~repro.gpu.block.BlockContext` with a
    leading block axis: register vectors are ``(num_blocks, block_threads)``
    arrays, ``block_idx_x/y/z`` are ``(num_blocks, 1)`` columns and every
    index/mask argument may be anything broadcastable to the register shape.
    The shared kernel surface (arithmetic, shuffles, coercion) lives in
    :class:`~repro.gpu.block._SIMTContextBase`; only the memory paths and
    their vectorized accounting are defined here.
    """

    def __init__(
        self,
        block_indices: np.ndarray,
        grid_dim: Tuple[int, int, int],
        block_threads: int,
        architecture: GPUArchitecture,
        counters: KernelCounters,
        precision: Precision,
        count_traffic: bool = True,
    ) -> None:
        block_indices = np.asarray(block_indices, dtype=np.int64)
        if block_indices.ndim != 2 or block_indices.shape[1] != 3:
            raise SimulationError("block_indices must have shape (num_blocks, 3)")
        self.block_indices = block_indices
        self.num_blocks = int(block_indices.shape[0])
        self.grid_dim = grid_dim
        self.block_threads = int(block_threads)
        self.architecture = architecture
        self.counters = counters
        self.precision = precision
        self.warp_size = architecture.warp_size
        if self.block_threads % self.warp_size != 0:
            raise SimulationError(
                f"block size {self.block_threads} must be a multiple of the warp size"
            )
        self.num_warps = self.block_threads // self.warp_size
        self.shared = BatchedSharedMemory(self.num_blocks,
                                          architecture.shared_memory_per_block,
                                          architecture.shared_memory_banks,
                                          architecture.shared_memory_bank_bytes)
        self._traffic = (BatchedTrafficTracker(self.num_blocks,
                                               architecture.cache_line_bytes)
                         if count_traffic else None)
        self._thread_idx = np.arange(self.block_threads, dtype=np.int64)
        self._register_shape = (self.num_blocks, self.block_threads)
        self._issue_warps = self.num_blocks * self.num_warps
        checker = active_race_checker()
        self._race = (checker.attach(self.num_blocks, self.block_threads)
                      if checker is not None else None)
        counters.blocks_executed += self.num_blocks
        counters.warps_executed += self.num_blocks * self.num_warps

    # ------------------------------------------------------------------ ids
    @property
    def register_shape(self) -> Tuple[int, int]:
        """Shape of a per-thread register vector: ``(num_blocks, threads)``."""
        return self._register_shape

    @property
    def thread_idx_x(self) -> np.ndarray:
        """``threadIdx.x`` of every thread (shape ``(B,)``, same per block)."""
        return self._thread_idx

    @property
    def lane_id(self) -> np.ndarray:
        """Lane index of every thread within its warp."""
        return self._thread_idx % self.warp_size

    @property
    def warp_id(self) -> np.ndarray:
        """Warp index of every thread within its block."""
        return self._thread_idx // self.warp_size

    @property
    def block_idx_x(self) -> np.ndarray:
        """``blockIdx.x`` per batch entry, shape ``(num_blocks, 1)``."""
        return self.block_indices[:, 0:1]

    @property
    def block_idx_y(self) -> np.ndarray:
        return self.block_indices[:, 1:2]

    @property
    def block_idx_z(self) -> np.ndarray:
        return self.block_indices[:, 2:3]

    # ------------------------------------------------------- warp bookkeeping
    def _active_warps(self, mask: Optional[np.ndarray]) -> int:
        if mask is None:
            return self.num_blocks * self.num_warps
        active, divergent = grouped_warp_counts(mask, self.warp_size)
        self.counters.divergent_branches += divergent
        return active

    def _warp_matrix(self, values: np.ndarray) -> np.ndarray:
        """Reshape a register-shaped array to ``(batch * warps, warp_size)``."""
        return np.ascontiguousarray(values).reshape(-1, self.warp_size)

    # ----------------------------------------------------------- global mem
    def load_global(self, buffer: DeviceBuffer, flat_indices: np.ndarray,
                    mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather ``buffer[flat_indices]`` for every block of the batch."""
        flat_indices = self._as_indices(flat_indices, "load_global")
        if np.any(flat_indices < 0) or np.any(flat_indices >= buffer.size):
            raise SimulationError(f"out-of-bounds global load on {buffer.name!r}")
        mask = self._as_mask(mask)
        warps = self._active_warps(mask)
        self.counters.gmem_load += warps
        itemsize = buffer.itemsize
        # one line matrix serves both the sector count and the traffic record
        lines = (flat_indices * itemsize) // self.architecture.cache_line_bytes
        self.counters.gmem_load_transactions += int(
            rowwise_unique_counts(self._warp_matrix(lines),
                                  None if mask is None else self._warp_matrix(mask)).sum())
        active = flat_indices.size if mask is None else int(mask.sum())
        self.counters.cache_read_bytes += float(active * itemsize)
        if self._traffic is not None and active:
            self._traffic.record_read(buffer, lines, mask)
        values = np.zeros(self._register_shape, dtype=buffer.dtype)
        if mask is None:
            values[:] = buffer.flat[flat_indices]
        else:
            values[mask] = buffer.flat[flat_indices[mask]]
        return values.astype(self.numpy_dtype, copy=False)

    def store_global(self, buffer: DeviceBuffer, flat_indices: np.ndarray,
                     values: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        """Scatter ``values`` into ``buffer`` for every block of the batch.

        Duplicate destinations resolve in block order (later block wins),
        matching the sequential per-block engine.
        """
        flat_indices = self._as_indices(flat_indices, "store_global")
        if np.any(flat_indices < 0) or np.any(flat_indices >= buffer.size):
            raise SimulationError(f"out-of-bounds global store on {buffer.name!r}")
        mask = self._as_mask(mask)
        warps = self._active_warps(mask)
        self.counters.gmem_store += warps
        itemsize = buffer.itemsize
        self.counters.gmem_store_transactions += coalesced_transactions_matrix(
            self._warp_matrix(flat_indices), itemsize,
            self.architecture.cache_line_bytes,
            None if mask is None else self._warp_matrix(mask))
        active = flat_indices.size if mask is None else int(mask.sum())
        if not buffer.cached:
            self.counters.dram_write_bytes += float(active * itemsize)
        values = np.broadcast_to(np.asarray(values), self._register_shape)
        if mask is None:
            buffer.flat[flat_indices] = values.astype(buffer.dtype, copy=False)
        else:
            buffer.flat[flat_indices[mask]] = values[mask].astype(buffer.dtype,
                                                                  copy=False)

    # ----------------------------------------------------------- shared mem
    def alloc_shared(self, name: str, shape: Tuple[int, ...],
                     precision: Optional[object] = None) -> BatchedSharedArray:
        """Allocate a named shared-memory array in every block of the batch."""
        prec = self.precision if precision is None else resolve_precision(precision)
        return self.shared.allocate(name, shape, prec)

    def _smem_access(self, shared: BatchedSharedArray, flat_indices: object,
                     mask: Optional[object], op: str):
        raw = np.asarray(flat_indices)
        # warp-uniform accesses (a scalar or per-block column index) are
        # broadcasts by construction: all active lanes of every warp read
        # one address, so the sort/bincount conflict analysis is skipped.
        uniform = raw.ndim == 0 or raw.shape[-1] == 1
        flat_indices = self._as_indices(flat_indices, op)
        size = shared.flat.shape[1]
        if np.any(flat_indices < 0) or np.any(flat_indices >= size):
            raise SimulationError(
                f"out-of-bounds shared {op.split('_')[0]} on {shared.name!r}")
        lane_mask = self._as_mask(mask)
        if uniform:
            rows = self.num_blocks * self.num_warps
            if lane_mask is None:
                active_counts = np.full(rows, self.warp_size, dtype=np.int64)
            else:
                active_counts = self._warp_matrix(lane_mask).sum(axis=1)
            broadcasts = active_counts > 0
            degrees = broadcasts.astype(np.int64)
        else:
            degrees, broadcasts, active_counts = bank_conflict_profile(
                self._warp_matrix(flat_indices), shared.array.itemsize,
                self.shared.banks, self.shared.bank_bytes,
                None if lane_mask is None else self._warp_matrix(lane_mask))
        return flat_indices, lane_mask, degrees, broadcasts, active_counts, uniform

    def load_shared(self, shared: BatchedSharedArray, flat_indices: np.ndarray,
                    mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Counted shared-memory gather (bank conflicts and broadcasts).

        Warp-uniform unmasked reads (the broadcast-weight pattern) gather
        one element per block and broadcast it across the lanes, instead of
        gathering one element per lane.
        """
        flat_indices, lane_mask, degrees, broadcasts, active_counts, uniform = \
            self._smem_access(shared, flat_indices, mask, "load_shared")
        if self._race is not None:
            self._race.on_access(shared.name, shared.flat.shape[1],
                                 flat_indices, lane_mask, None,
                                 is_store=False)
        itemsize = shared.array.itemsize
        occupied = active_counts > 0
        broadcast_warps = int((broadcasts & occupied).sum())
        conflict_degrees = degrees[occupied & ~broadcasts]
        accesses = int(conflict_degrees.sum())
        conflicts = int((conflict_degrees - 1).sum())
        self.counters.smem_broadcast += broadcast_warps
        self.counters.smem_load += accesses
        self.counters.smem_bank_conflicts += conflicts
        self.shared.broadcast_count += broadcast_warps
        self.shared.access_count += accesses
        self.shared.conflict_extra += conflicts
        active_total = int(active_counts.sum())
        self.shared.bytes_read += float(active_total * itemsize)
        self.counters.smem_read_bytes += float(active_total * itemsize)
        if lane_mask is None and uniform:
            per_block = shared.flat[np.arange(self.num_blocks), flat_indices[:, 0]]
            values = np.empty(self._register_shape, dtype=self.numpy_dtype)
            values[:] = per_block.astype(self.numpy_dtype, copy=False)[:, None]
            return values
        rows = np.broadcast_to(np.arange(self.num_blocks)[:, None], self._register_shape)
        if lane_mask is None:
            return shared.flat[rows, flat_indices].astype(self.numpy_dtype, copy=False)
        values = np.zeros(self._register_shape, dtype=self.numpy_dtype)
        values[lane_mask] = shared.flat[rows[lane_mask], flat_indices[lane_mask]] \
            .astype(self.numpy_dtype, copy=False)
        return values

    def store_shared(self, shared: BatchedSharedArray, flat_indices: np.ndarray,
                     values: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        """Counted shared-memory scatter."""
        flat_indices, lane_mask, degrees, broadcasts, active_counts, _ = \
            self._smem_access(shared, flat_indices, mask, "store_shared")
        itemsize = shared.array.itemsize
        store_degrees = degrees[active_counts > 0]
        accesses = int(store_degrees.sum())
        conflicts = int((store_degrees - 1).sum())
        self.counters.smem_store += accesses
        self.counters.smem_bank_conflicts += conflicts
        self.shared.access_count += accesses
        self.shared.conflict_extra += conflicts
        active_total = int(active_counts.sum())
        self.shared.bytes_written += float(active_total * itemsize)
        self.counters.smem_write_bytes += float(active_total * itemsize)
        values = np.broadcast_to(np.asarray(values), self._register_shape)
        if self._race is not None:
            self._race.on_access(shared.name, shared.flat.shape[1],
                                 flat_indices, lane_mask,
                                 values.astype(shared.array.dtype,
                                               copy=False),
                                 is_store=True)
        rows = np.broadcast_to(np.arange(self.num_blocks)[:, None], self._register_shape)
        if lane_mask is None:
            shared.flat[rows, flat_indices] = values.astype(shared.array.dtype,
                                                            copy=False)
        else:
            shared.flat[rows[lane_mask], flat_indices[lane_mask]] = \
                values[lane_mask].astype(shared.array.dtype, copy=False)

    # -------------------------------------------------------------- control
    def syncthreads(self) -> None:
        super().syncthreads()
        if self._race is not None:
            self._race.on_barrier()

    # ------------------------------------------------------------- finalize
    def finalize(self) -> None:
        """Fold the batch's unique-line DRAM reads into the launch counters."""
        if self._traffic is not None:
            self.counters.dram_read_bytes += self._traffic.finalize()
