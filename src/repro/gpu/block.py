"""The SIMT programming surface kernels are written against.

A :class:`BlockContext` represents one CUDA thread block during execution.
Kernels are ordinary Python functions ``kernel(ctx, *args)`` in which every
"per-thread" value is a NumPy array with one element per thread of the block
(structure-of-arrays).  The context provides

* thread/block/lane indices,
* counted global-memory loads and stores (with per-warp coalescing and
  per-block unique-line DRAM accounting),
* counted shared-memory allocation and access (with bank conflicts),
* warp shuffles restricted to 32-lane groups, and
* counted arithmetic intrinsics (``mad``, ``add``, ``mul``) so the timing
  model sees the same instruction mix the GPU would execute.

Using the intrinsics is what makes a kernel's cost observable; plain NumPy
arithmetic still computes correctly but is invisible to the profiler, so the
library's kernels always go through the intrinsics.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dtypes import Precision, resolve_precision
from ..errors import SimulationError
from .architecture import GPUArchitecture
from .counters import KernelCounters
from .memory import BlockTrafficTracker, DeviceBuffer, coalesced_transactions
from .shared_memory import SharedArray, SharedMemory
from . import warp as warp_ops
from .simt import active_warp_count, divergent_warp_count


class _SIMTContextBase:
    """Operations shared by the legacy and batched execution contexts.

    Both engines expose the same kernel programming surface; everything that
    differs only by the shape of a register vector and the warp-instruction
    multiplier lives here, so the two engines cannot drift apart.
    Subclasses provide ``counters``, ``precision``, ``warp_size``,
    ``_register_shape`` (shape of one per-thread register vector:
    ``(threads,)`` legacy, ``(num_blocks, threads)`` batched) and
    ``_issue_warps`` (warps per counted instruction: warps per block, times
    the batch size on the batched engine).
    """

    counters: KernelCounters
    precision: Precision
    warp_size: int
    _register_shape: Tuple[int, ...]
    _issue_warps: int

    @property
    def numpy_dtype(self) -> np.dtype:
        """Element dtype of the kernel's working precision."""
        return self.precision.numpy_dtype

    def zeros(self) -> np.ndarray:
        """A zero-filled per-thread register vector."""
        return np.zeros(self._register_shape, dtype=self.numpy_dtype)

    def full(self, value: float) -> np.ndarray:
        """A constant per-thread register vector."""
        return np.full(self._register_shape, value, dtype=self.numpy_dtype)

    # ------------------------------------------------------------- coercion
    def _as_indices(self, flat_indices: object, op: str) -> np.ndarray:
        """Coerce indices to one ``int64`` entry per thread (broadcasting)."""
        arr = np.asarray(flat_indices, dtype=np.int64)
        try:
            return np.broadcast_to(arr, self._register_shape)
        except ValueError:
            raise SimulationError(f"{op} expects one index per thread") from None

    def _as_mask(self, mask: Optional[object]) -> Optional[np.ndarray]:
        if mask is None:
            return None
        arr = np.asarray(mask, dtype=bool)
        try:
            return np.broadcast_to(arr, self._register_shape)
        except ValueError:
            raise SimulationError("mask must broadcast to one lane per thread") from None

    def _as_register(self, values: object) -> np.ndarray:
        return np.broadcast_to(np.asarray(values), self._register_shape)

    # --------------------------------------------------------------- shuffles
    def shfl_up(self, values: np.ndarray, delta: int = 1) -> np.ndarray:
        """``__shfl_up_sync`` across each warp (counted)."""
        self.counters.shfl += self._issue_warps
        return warp_ops.shfl_up(self._as_register(values), delta, self.warp_size)

    def shfl_down(self, values: np.ndarray, delta: int = 1) -> np.ndarray:
        """``__shfl_down_sync`` across each warp (counted)."""
        self.counters.shfl += self._issue_warps
        return warp_ops.shfl_down(self._as_register(values), delta, self.warp_size)

    def shfl_idx(self, values: np.ndarray, source_lane: int) -> np.ndarray:
        """``__shfl_sync`` broadcast from ``source_lane`` (counted)."""
        self.counters.shfl += self._issue_warps
        return warp_ops.shfl_idx(self._as_register(values), source_lane, self.warp_size)

    # -------------------------------------------------------------- arithmetic
    def mad(self, a: np.ndarray, b: np.ndarray, acc: np.ndarray) -> np.ndarray:
        """Fused multiply-add ``a * b + acc`` (one FMA warp instruction)."""
        self.counters.fma += self._issue_warps
        return np.asarray(a, dtype=self.numpy_dtype) * np.asarray(b, dtype=self.numpy_dtype) + acc

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Counted addition."""
        self.counters.add += self._issue_warps
        return np.asarray(a, dtype=self.numpy_dtype) + np.asarray(b, dtype=self.numpy_dtype)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Counted multiplication."""
        self.counters.mul += self._issue_warps
        return np.asarray(a, dtype=self.numpy_dtype) * np.asarray(b, dtype=self.numpy_dtype)

    def overhead(self, instructions: float = 1.0) -> None:
        """Account for integer/addressing instructions not modelled explicitly."""
        self.counters.misc += instructions * self._issue_warps

    def syncthreads(self) -> None:
        """``__syncthreads()`` — counted barrier, no functional effect here."""
        self.counters.sync += self._issue_warps


class BlockContext(_SIMTContextBase):
    """Execution context of a single thread block on the simulated GPU."""

    def __init__(
        self,
        block_idx: Tuple[int, int, int],
        grid_dim: Tuple[int, int, int],
        block_threads: int,
        architecture: GPUArchitecture,
        counters: KernelCounters,
        precision: Precision,
        count_traffic: bool = True,
    ) -> None:
        self.block_idx = block_idx
        self.grid_dim = grid_dim
        self.block_threads = int(block_threads)
        self.architecture = architecture
        self.counters = counters
        self.precision = precision
        self.warp_size = architecture.warp_size
        if self.block_threads % self.warp_size != 0:
            raise SimulationError(
                f"block size {self.block_threads} must be a multiple of the warp size"
            )
        self.num_warps = self.block_threads // self.warp_size
        self.shared = SharedMemory(architecture.shared_memory_per_block,
                                   architecture.shared_memory_banks,
                                   architecture.shared_memory_bank_bytes)
        self._traffic = BlockTrafficTracker(architecture.cache_line_bytes) if count_traffic else None
        self._thread_idx = np.arange(self.block_threads, dtype=np.int64)
        self._register_shape = (self.block_threads,)
        self._issue_warps = self.num_warps
        counters.blocks_executed += 1
        counters.warps_executed += self.num_warps

    # ------------------------------------------------------------------ ids
    @property
    def thread_idx_x(self) -> np.ndarray:
        """``threadIdx.x`` of every thread in the block (shape ``(B,)``)."""
        return self._thread_idx

    @property
    def lane_id(self) -> np.ndarray:
        """Lane index of every thread within its warp."""
        return self._thread_idx % self.warp_size

    @property
    def warp_id(self) -> np.ndarray:
        """Warp index of every thread within the block."""
        return self._thread_idx // self.warp_size

    @property
    def block_idx_x(self) -> int:
        return self.block_idx[0]

    @property
    def block_idx_y(self) -> int:
        return self.block_idx[1]

    @property
    def block_idx_z(self) -> int:
        return self.block_idx[2]

    # ------------------------------------------------------- warp bookkeeping
    def _active_warps(self, mask: Optional[np.ndarray]) -> int:
        if mask is None:
            return self.num_warps
        active = active_warp_count(mask, self.warp_size)
        self.counters.divergent_branches += divergent_warp_count(mask, self.warp_size)
        return active

    # ----------------------------------------------------------- global mem
    def load_global(self, buffer: DeviceBuffer, flat_indices: np.ndarray,
                    mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather ``buffer[flat_indices]`` with full traffic accounting.

        ``flat_indices`` is a per-thread array of flattened element indices
        (anything broadcastable to one index per thread); masked-off lanes
        return 0 and generate no traffic.
        """
        flat_indices = self._as_indices(flat_indices, "load_global")
        if np.any(flat_indices < 0) or np.any(flat_indices >= buffer.size):
            raise SimulationError(
                f"out-of-bounds global load on {buffer.name!r}"
            )
        mask = self._as_mask(mask)
        if mask is None:
            active_indices = flat_indices
        else:
            active_indices = flat_indices[mask]
        warps = self._active_warps(mask)
        self.counters.gmem_load += warps
        itemsize = buffer.itemsize
        # per-warp coalescing: count sectors per warp over active lanes
        transactions = 0
        lane_mask = np.ones(self.block_threads, dtype=bool) if mask is None else mask
        grouped_idx = flat_indices.reshape(self.num_warps, self.warp_size)
        grouped_mask = lane_mask.reshape(self.num_warps, self.warp_size)
        for w in range(self.num_warps):
            active = grouped_idx[w][grouped_mask[w]]
            transactions += coalesced_transactions(active, itemsize,
                                                   self.architecture.cache_line_bytes)
        self.counters.gmem_load_transactions += transactions
        self.counters.cache_read_bytes += float(active_indices.size * itemsize)
        if self._traffic is not None and active_indices.size:
            self._traffic.record_read(buffer, active_indices)
        values = np.zeros(self.block_threads, dtype=buffer.dtype)
        if mask is None:
            values[:] = buffer.flat[flat_indices]
        else:
            values[mask] = buffer.flat[flat_indices[mask]]
        return values.astype(self.numpy_dtype, copy=False)

    def store_global(self, buffer: DeviceBuffer, flat_indices: np.ndarray,
                     values: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        """Scatter ``values`` into ``buffer`` with traffic accounting.

        Write traffic is charged directly (one byte of DRAM per byte
        stored); stores are not routed through the unique-line tracker.
        """
        flat_indices = self._as_indices(flat_indices, "store_global")
        values = np.broadcast_to(np.asarray(values), (self.block_threads,))
        if np.any(flat_indices < 0) or np.any(flat_indices >= buffer.size):
            raise SimulationError(f"out-of-bounds global store on {buffer.name!r}")
        mask = self._as_mask(mask)
        warps = self._active_warps(mask)
        self.counters.gmem_store += warps
        itemsize = buffer.itemsize
        lane_mask = np.ones(self.block_threads, dtype=bool) if mask is None else mask
        grouped_idx = flat_indices.reshape(self.num_warps, self.warp_size)
        grouped_mask = lane_mask.reshape(self.num_warps, self.warp_size)
        transactions = 0
        for w in range(self.num_warps):
            active = grouped_idx[w][grouped_mask[w]]
            transactions += coalesced_transactions(active, itemsize,
                                                   self.architecture.cache_line_bytes)
        self.counters.gmem_store_transactions += transactions
        active_indices = flat_indices[lane_mask]
        if not buffer.cached:
            self.counters.dram_write_bytes += float(active_indices.size * itemsize)
        buffer.flat[flat_indices[lane_mask]] = values[lane_mask].astype(buffer.dtype, copy=False)

    # ----------------------------------------------------------- shared mem
    def alloc_shared(self, name: str, shape: Tuple[int, ...],
                     precision: Optional[object] = None) -> SharedArray:
        """Allocate a named shared-memory array for this block."""
        prec = self.precision if precision is None else resolve_precision(precision)
        return self.shared.allocate(name, shape, prec)

    def load_shared(self, shared: SharedArray, flat_indices: np.ndarray,
                    mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Counted shared-memory gather (bank conflicts and broadcasts)."""
        flat_indices = self._as_indices(flat_indices, "load_shared")
        size = shared.array.size
        if np.any(flat_indices < 0) or np.any(flat_indices >= size):
            raise SimulationError(f"out-of-bounds shared load on {shared.name!r}")
        mask = self._as_mask(mask)
        lane_mask = np.ones(self.block_threads, dtype=bool) if mask is None else mask
        grouped_idx = flat_indices.reshape(self.num_warps, self.warp_size)
        grouped_mask = lane_mask.reshape(self.num_warps, self.warp_size)
        for w in range(self.num_warps):
            active = grouped_idx[w][grouped_mask[w]]
            if active.size == 0:
                continue
            degree, broadcast = self.shared.record_load(shared, active)
            if broadcast:
                self.counters.smem_broadcast += 1
            else:
                self.counters.smem_load += degree
                self.counters.smem_bank_conflicts += max(0, degree - 1)
        self.counters.smem_read_bytes += float(lane_mask.sum() * shared.array.itemsize)
        values = np.zeros(self.block_threads, dtype=self.numpy_dtype)
        values[lane_mask] = shared.flat[flat_indices[lane_mask]].astype(self.numpy_dtype, copy=False)
        return values

    def store_shared(self, shared: SharedArray, flat_indices: np.ndarray,
                     values: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        """Counted shared-memory scatter."""
        flat_indices = self._as_indices(flat_indices, "store_shared")
        values = np.broadcast_to(np.asarray(values), (self.block_threads,))
        size = shared.array.size
        if np.any(flat_indices < 0) or np.any(flat_indices >= size):
            raise SimulationError(f"out-of-bounds shared store on {shared.name!r}")
        mask = self._as_mask(mask)
        lane_mask = np.ones(self.block_threads, dtype=bool) if mask is None else mask
        grouped_idx = flat_indices.reshape(self.num_warps, self.warp_size)
        grouped_mask = lane_mask.reshape(self.num_warps, self.warp_size)
        for w in range(self.num_warps):
            active = grouped_idx[w][grouped_mask[w]]
            if active.size == 0:
                continue
            degree = self.shared.record_store(shared, active)
            self.counters.smem_store += degree
            self.counters.smem_bank_conflicts += max(0, degree - 1)
        self.counters.smem_write_bytes += float(lane_mask.sum() * shared.array.itemsize)
        shared.flat[flat_indices[lane_mask]] = values[lane_mask].astype(shared.array.dtype, copy=False)

    # ------------------------------------------------------------- finalize
    def finalize(self) -> None:
        """Fold the block's unique-line DRAM reads into the launch counters."""
        if self._traffic is not None:
            self.counters.dram_read_bytes += self._traffic.finalize()
