"""Kernel objects, launch configuration and grid execution.

A :class:`Kernel` wraps a Python function with the signature
``func(ctx: BlockContext, *args)`` and executes it over the thread blocks of
the launch grid, accumulating :class:`~repro.gpu.counters.KernelCounters`.

Two execution modes are supported:

* **full** — every block runs; the output buffers hold the complete result
  (used by correctness tests and the examples);
* **sampled** — only a representative subset of blocks runs and the counters
  are scaled up; outputs are partial, but the cost estimate is cheap even
  for paper-scale grids (used by the benchmark harness when a closed-form
  traffic profile is not available).

Either mode runs on one of two engines:

* **batched** (the default, ``batch_size="auto"``) — large chunks of the
  grid execute as one vectorized pass through
  :class:`~repro.gpu.batch.BatchedBlockContext`, with all coalescing /
  unique-line / bank-conflict accounting computed by segmented NumPy
  reductions instead of per-warp Python loops;
* **legacy** (``batch_size=1``) — one
  :class:`~repro.gpu.block.BlockContext` per block in a Python loop, kept
  for differential testing of the batched engine.

Both engines produce bit-identical outputs and identical counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..dtypes import Precision, resolve_precision
from ..errors import ConfigurationError, LaunchError
from .architecture import GPUArchitecture, get_architecture
from .batch import BatchedBlockContext
from .block import BlockContext
from .counters import KernelCounters
from .occupancy import OccupancyResult, compute_occupancy
from .profiler import TimingBreakdown, estimate_time

#: default per-batch memory budget of the ``batch_size="auto"`` heuristic
DEFAULT_BATCH_MEMORY_BYTES = 128 * 1024 * 1024
#: hard cap on blocks per batch (keeps peak temporaries bounded even for
#: tiny block sizes)
MAX_AUTO_BATCH_BLOCKS = 4096


def auto_batch_size(config: "LaunchConfig",
                    memory_budget_bytes: int = DEFAULT_BATCH_MEMORY_BYTES) -> int:
    """Blocks per batch chosen so a batch's working set fits a memory budget.

    The per-block footprint is estimated from the launch configuration: each
    live register vector costs ``block_threads`` elements (counted at the
    declared ``registers_per_thread``, 8 bytes each to cover float64 and the
    int64 index/line temporaries), plus the block's declared shared memory
    (allocated once per block of the batch) and a flat allowance for the
    traffic tracker's per-access line matrices.
    """
    bytes_per_vector = 8  # int64 indices / float64 registers dominate
    registers = max(8, int(config.registers_per_thread))
    per_block = (config.block_threads * (registers * bytes_per_vector + 64)
                 + int(config.shared_bytes_per_block))
    blocks = max(1, int(memory_budget_bytes) // max(1, per_block))
    return int(min(blocks, MAX_AUTO_BATCH_BLOCKS))


def _resolve_batch_size(batch_size: Union[int, str, None], config: "LaunchConfig",
                        total_blocks: int) -> int:
    if batch_size is None or batch_size == "auto":
        resolved = auto_batch_size(config)
    elif isinstance(batch_size, bool) or not isinstance(batch_size, (int, np.integer)):
        raise LaunchError(f"batch_size must be a positive int or 'auto', got {batch_size!r}")
    else:
        resolved = int(batch_size)
        if resolved < 1:
            raise LaunchError("batch_size must be >= 1")
    return max(1, min(resolved, max(1, total_blocks)))


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry plus the static resources of one kernel launch."""

    grid_dim: Tuple[int, int, int]
    block_threads: int
    registers_per_thread: int = 32
    shared_bytes_per_block: int = 0
    precision: Precision = field(default_factory=lambda: resolve_precision("float32"))
    #: independent outstanding memory accesses per thread (ILP hint used by
    #: the latency-attainment model; register-cache kernels have high MLP).
    memory_parallelism: float = 4.0

    def __post_init__(self) -> None:
        gx, gy, gz = self.grid_dim
        if min(gx, gy, gz) <= 0:
            raise ConfigurationError(f"grid dimensions must be positive, got {self.grid_dim}")
        if self.block_threads <= 0:
            raise ConfigurationError("block size must be positive")

    @property
    def total_blocks(self) -> int:
        gx, gy, gz = self.grid_dim
        return gx * gy * gz

    @property
    def total_threads(self) -> int:
        return self.total_blocks * self.block_threads

    def with_precision(self, precision: object) -> "LaunchConfig":
        """Copy of this configuration at a different precision."""
        return replace(self, precision=resolve_precision(precision))

    def to_dict(self) -> dict:
        """JSON-serialisable description (cache keys, result artifacts)."""
        return {
            "grid_dim": list(self.grid_dim),
            "block_threads": self.block_threads,
            "registers_per_thread": self.registers_per_thread,
            "shared_bytes_per_block": self.shared_bytes_per_block,
            "precision": self.precision.name,
            "memory_parallelism": self.memory_parallelism,
        }

    def fingerprint(self) -> str:
        """Stable content hash of this launch configuration."""
        from ..serialization import stable_digest

        return stable_digest(self.to_dict())


@dataclass
class LaunchResult:
    """Everything produced by one (simulated) kernel launch."""

    kernel_name: str
    config: LaunchConfig
    architecture: GPUArchitecture
    counters: KernelCounters
    blocks_executed: int
    sampled: bool
    sample_fraction: float

    _timing: Optional[TimingBreakdown] = None
    _occupancy: Optional[OccupancyResult] = None

    @property
    def occupancy(self) -> OccupancyResult:
        """Occupancy of this launch on the target architecture."""
        if self._occupancy is None:
            self._occupancy = compute_occupancy(
                self.architecture,
                self.config.block_threads,
                self.config.registers_per_thread,
                self.config.shared_bytes_per_block,
            )
        return self._occupancy

    @property
    def timing(self) -> TimingBreakdown:
        """Estimated execution time breakdown from the analytical model."""
        if self._timing is None:
            self._timing = estimate_time(
                self.counters,
                self.architecture,
                precision=self.config.precision,
                occupancy=self.occupancy,
                memory_parallelism=self.config.memory_parallelism,
            )
        return self._timing

    @property
    def seconds(self) -> float:
        """Estimated kernel time in seconds."""
        return self.timing.total_seconds

    @property
    def milliseconds(self) -> float:
        """Estimated kernel time in milliseconds."""
        return self.seconds * 1e3

    def merged_with(self, other: "LaunchResult") -> "LaunchResult":
        """Combine two launches (e.g. repeated stencil iterations)."""
        merged = KernelCounters()
        merged.merge(self.counters)
        merged.merge(other.counters)
        return LaunchResult(
            kernel_name=self.kernel_name,
            config=self.config,
            architecture=self.architecture,
            counters=merged,
            blocks_executed=self.blocks_executed + other.blocks_executed,
            sampled=self.sampled or other.sampled,
            sample_fraction=self.sample_fraction,
        )


class Kernel:
    """A simulated CUDA kernel."""

    def __init__(self, func: Callable[..., None], name: Optional[str] = None) -> None:
        self.func = func
        self.name = name or getattr(func, "__name__", "kernel")
        #: compiled replay programs keyed by (arch, plan, precision, args)
        self._trace_cache: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.name})"

    def launch(
        self,
        config: LaunchConfig,
        args: Sequence[object],
        architecture: object = "p100",
        max_blocks: Optional[int] = None,
        count_traffic: bool = True,
        batch_size: Union[int, str, None] = "auto",
    ) -> LaunchResult:
        """Execute the kernel over the launch grid.

        Parameters
        ----------
        config:
            Grid/block geometry and resource usage.
        args:
            Positional arguments forwarded to the kernel function after the
            block context.
        architecture:
            Architecture preset name or instance.
        max_blocks:
            If given and smaller than the grid, only a uniformly spaced
            sample of blocks is executed and the counters are scaled to the
            full grid (outputs are then incomplete).
        count_traffic:
            Disable per-block unique-line DRAM accounting (faster) when the
            caller supplies traffic analytically.
        batch_size:
            Blocks executed per vectorized batch.  ``"auto"`` (default)
            bounds the batch by a memory budget (:func:`auto_batch_size`);
            ``1`` selects the legacy per-block loop, which produces
            bit-identical results and counters.  ``"replay"`` records the
            kernel body once as a dataflow trace and executes subsequent
            chunks through the compiled replay engine
            (:mod:`repro.trace.replay`), bit-identical to ``"auto"``.
        """
        if batch_size == "replay":
            from ..trace.replay import replay_launch

            return replay_launch(self, config, args, architecture=architecture,
                                 max_blocks=max_blocks,
                                 count_traffic=count_traffic)
        arch = get_architecture(architecture)
        if config.block_threads % arch.warp_size != 0:
            raise LaunchError(
                f"block size {config.block_threads} is not a multiple of warp size "
                f"{arch.warp_size}"
            )
        counters = KernelCounters()
        block_indices = list(_iter_blocks(config.grid_dim))
        total_blocks = len(block_indices)
        sampled = False
        if max_blocks is not None and max_blocks < total_blocks:
            stride = max(1, total_blocks // max_blocks)
            block_indices = block_indices[::stride][:max_blocks]
            sampled = True
        chunk = _resolve_batch_size(batch_size, config, len(block_indices))
        executed = 0
        if chunk <= 1:
            for block_idx in block_indices:
                ctx = BlockContext(
                    block_idx=block_idx,
                    grid_dim=config.grid_dim,
                    block_threads=config.block_threads,
                    architecture=arch,
                    counters=counters,
                    precision=config.precision,
                    count_traffic=count_traffic,
                )
                self.func(ctx, *args)
                ctx.finalize()
                executed += 1
        else:
            index_matrix = np.asarray(block_indices, dtype=np.int64).reshape(-1, 3)
            for start in range(0, index_matrix.shape[0], chunk):
                batch = index_matrix[start:start + chunk]
                ctx = BatchedBlockContext(
                    block_indices=batch,
                    grid_dim=config.grid_dim,
                    block_threads=config.block_threads,
                    architecture=arch,
                    counters=counters,
                    precision=config.precision,
                    count_traffic=count_traffic,
                )
                self.func(ctx, *args)
                ctx.finalize()
                executed += int(batch.shape[0])
        sample_fraction = executed / total_blocks if total_blocks else 1.0
        if sampled and sample_fraction > 0:
            counters = counters.scaled(1.0 / sample_fraction)
        return LaunchResult(
            kernel_name=self.name,
            config=config,
            architecture=arch,
            counters=counters,
            blocks_executed=executed,
            sampled=sampled,
            sample_fraction=sample_fraction,
        )


def _iter_blocks(grid_dim: Tuple[int, int, int]) -> Iterable[Tuple[int, int, int]]:
    gx, gy, gz = grid_dim
    for bz in range(gz):
        for by in range(gy):
            for bx in range(gx):
                yield (bx, by, bz)


def kernel(func: Callable[..., None]) -> Kernel:
    """Decorator turning a block function into a :class:`Kernel`."""
    return Kernel(func)


def grid_1d(total_items: int, items_per_block: int) -> Tuple[int, int, int]:
    """1-D grid covering ``total_items`` with ``items_per_block`` per block."""
    if items_per_block <= 0:
        raise ConfigurationError("items_per_block must be positive")
    return (math.ceil(total_items / items_per_block), 1, 1)


def grid_2d(items_x: int, per_block_x: int, items_y: int, per_block_y: int) -> Tuple[int, int, int]:
    """2-D grid covering an ``items_x`` x ``items_y`` domain."""
    if per_block_x <= 0 or per_block_y <= 0:
        raise ConfigurationError("per-block extents must be positive")
    return (math.ceil(items_x / per_block_x), math.ceil(items_y / per_block_y), 1)
