"""Instruction and memory-traffic counters collected during kernel execution.

The simulator does not model every pipeline cycle; instead each warp-level
operation increments a counter here and the timing model in
:mod:`repro.gpu.profiler` converts the aggregate counts into an execution
time.  Counters are also the quantity checked by the tests that validate the
closed-form traffic profiles used for paper-scale estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping


@dataclass
class KernelCounters:
    """Mutable tally of warp instructions and memory traffic for one launch.

    All ``*_instructions`` fields count *warp-level* instructions (one per
    32-lane group), matching how the hardware issues them.  Traffic fields
    are in bytes.
    """

    # warp-level instruction counts
    fma: float = 0.0
    add: float = 0.0
    mul: float = 0.0
    misc: float = 0.0
    shfl: float = 0.0
    smem_load: float = 0.0
    smem_store: float = 0.0
    smem_broadcast: float = 0.0
    gmem_load: float = 0.0
    gmem_store: float = 0.0
    sync: float = 0.0

    # memory traffic (bytes)
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    cache_read_bytes: float = 0.0
    smem_read_bytes: float = 0.0
    smem_write_bytes: float = 0.0

    # transactions (128-byte sectors) issued to the memory system
    gmem_load_transactions: float = 0.0
    gmem_store_transactions: float = 0.0
    smem_bank_conflicts: float = 0.0

    # bookkeeping
    blocks_executed: int = 0
    warps_executed: int = 0
    divergent_branches: float = 0.0

    def merge(self, other: "KernelCounters") -> "KernelCounters":
        """Accumulate another counter set into this one (in place)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def scaled(self, factor: float) -> "KernelCounters":
        """Return a copy with every count multiplied by ``factor``.

        Used to extrapolate counts measured on a sampled subset of blocks to
        a full grid.
        """
        scaled = KernelCounters()
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if name == "blocks_executed" or name == "warps_executed":
                setattr(scaled, name, int(round(value * factor)))
            else:
                setattr(scaled, name, value * factor)
        return scaled

    # -- derived ------------------------------------------------------------
    @property
    def arithmetic_instructions(self) -> float:
        """Total arithmetic warp instructions (FMA + add + mul + misc)."""
        return self.fma + self.add + self.mul + self.misc

    @property
    def total_instructions(self) -> float:
        """Every counted warp instruction (for the issue-width bound)."""
        return (
            self.arithmetic_instructions
            + self.shfl
            + self.smem_load
            + self.smem_store
            + self.smem_broadcast
            + self.gmem_load
            + self.gmem_store
            + self.sync
        )

    @property
    def dram_bytes(self) -> float:
        """Total DRAM traffic in bytes."""
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def flops(self) -> float:
        """Floating point operations implied by the arithmetic counts.

        An FMA counts as two FLOPs; every counter is warp-level so the lane
        count multiplies back in.
        """
        return (2.0 * self.fma + self.add + self.mul) * 32.0

    def instruction_counts(self) -> Dict[str, float]:
        """Warp-instruction counts by class, for reports and tests."""
        return {
            "fma": self.fma,
            "add": self.add,
            "mul": self.mul,
            "misc": self.misc,
            "shfl": self.shfl,
            "smem_load": self.smem_load,
            "smem_store": self.smem_store,
            "smem_broadcast": self.smem_broadcast,
            "gmem_load": self.gmem_load,
            "gmem_store": self.gmem_store,
            "sync": self.sync,
        }

    def as_dict(self) -> Dict[str, float]:
        """Every counter as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, values: Mapping[str, float]) -> "KernelCounters":
        """Build counters from a mapping (unknown keys are rejected)."""
        counters = cls()
        for key, value in values.items():
            if key not in counters.__dataclass_fields__:
                raise KeyError(f"unknown counter {key!r}")
            setattr(counters, key, value)
        return counters


def merge_counters(counter_sets: Iterable[KernelCounters]) -> KernelCounters:
    """Merge an iterable of counters into a fresh aggregate."""
    total = KernelCounters()
    for counters in counter_sets:
        total.merge(counters)
    return total
