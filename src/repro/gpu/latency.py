"""Instruction latency and throughput tables for the simulated GPUs.

The latencies mirror Table 2 of the paper (measured with the authors'
micro-benchmarks, in cycles per warp):

==============  =====  =====
operation        P100   V100
==============  =====  =====
shfl_up_sync       33     22
add / sub / mad     6      4
shared-mem read    33     27
==============  =====  =====

plus the CUDA programming-guide figure of 200--400 cycles for a coalesced
global-memory read used in Section 5.3.

Throughputs are expressed in *warp instructions per cycle per SM* and follow
the published core counts (64 FP32 cores per SM on both P100 and V100, a
1:2 FP64 ratio, 32-lane shuffle unit, 128 B/cycle shared-memory banks).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping

from ..errors import ConfigurationError

#: instruction classes understood by the latency/throughput model.
INSTRUCTION_CLASSES = (
    "fma",
    "add",
    "mul",
    "shfl",
    "smem_load",
    "smem_store",
    "smem_broadcast",
    "gmem_load",
    "gmem_store",
    "l1_load",
    "l2_load",
    "sync",
    "misc",
)


@dataclass(frozen=True)
class LatencyTable:
    """Per-operation dependent-issue latency, in cycles per warp.

    The entries named in the paper's Table 2 (``shfl``, ``fma``/``add``,
    ``smem_load``) are the measured values; the rest use public
    micro-architecture figures.
    """

    shfl: float
    fma: float
    add: float
    mul: float
    smem_load: float
    smem_store: float
    smem_broadcast: float
    gmem_load: float
    gmem_store: float
    l1_load: float
    l2_load: float
    sync: float
    misc: float = 4.0
    register: float = 1.0
    #: Latency of the asynchronous global→shared copy path (``cp.async`` /
    #: TMA).  ``0.0`` means the generation has no such path and staging must
    #: round-trip through the register file (gmem_load + smem_store).
    gmem_to_smem: float = 0.0

    @property
    def supports_async_copy(self) -> bool:
        """True when the generation has a direct global→shared copy path."""
        return self.gmem_to_smem > 0.0

    def for_class(self, instruction_class: str) -> float:
        """Latency in cycles for an instruction class name."""
        try:
            return float(getattr(self, instruction_class))
        except AttributeError as exc:
            raise ConfigurationError(
                f"unknown instruction class {instruction_class!r}"
            ) from exc

    def as_dict(self) -> Dict[str, float]:
        """All latencies keyed by instruction class."""
        return {name: self.for_class(name) for name in INSTRUCTION_CLASSES}


@dataclass(frozen=True)
class ThroughputTable:
    """Peak issue rates, in warp instructions per cycle per SM.

    ``fma32`` corresponds to 64 FP32 cores per SM (two warps' worth of lanes
    per cycle); ``fma64`` to the 1:2 double-precision ratio of the Tesla
    parts.  ``smem`` reflects the 32-bank x 4 B/cycle scratchpad;
    ``smem_wide`` is the same bandwidth expressed for 8-byte accesses.
    ``smem_broadcast`` models warp-uniform (single address, broadcast) reads
    such as filter-weight loads, which are served by the broadcast path and
    do not consume the full 128-byte bank bandwidth of a divergent access.
    """

    fma32: float = 2.0
    fma64: float = 1.0
    add32: float = 2.0
    add64: float = 1.0
    mul32: float = 2.0
    mul64: float = 1.0
    shfl: float = 1.0
    smem: float = 1.0
    smem_wide: float = 0.5
    smem_broadcast: float = 4.0
    l1: float = 1.0
    l2: float = 0.25
    gmem_issue: float = 0.5
    issue_width: float = 4.0
    sync: float = 1.0
    misc: float = 4.0

    def arithmetic(self, instruction_class: str, itemsize: int) -> float:
        """Arithmetic throughput for ``fma``/``add``/``mul`` at a given width."""
        if instruction_class not in ("fma", "add", "mul"):
            raise ConfigurationError(
                f"{instruction_class!r} is not an arithmetic instruction class"
            )
        suffix = "64" if itemsize == 8 else "32"
        return float(getattr(self, instruction_class + suffix))

    def shared(self, itemsize: int) -> float:
        """Divergent shared-memory throughput for the given element width."""
        return self.smem_wide if itemsize == 8 else self.smem


# ---------------------------------------------------------------------------
# Published / measured tables for the evaluated GPUs
# ---------------------------------------------------------------------------

#: Table 2 of the paper, P100 column (+ CUDA-guide global-memory latency).
PASCAL_LATENCIES = LatencyTable(
    shfl=33.0,
    fma=6.0,
    add=6.0,
    mul=6.0,
    smem_load=33.0,
    smem_store=24.0,
    smem_broadcast=33.0,
    gmem_load=350.0,
    gmem_store=350.0,
    l1_load=82.0,
    l2_load=234.0,
    sync=30.0,
)

#: Table 2 of the paper, V100 column (+ Jia et al. cache latencies).
VOLTA_LATENCIES = LatencyTable(
    shfl=22.0,
    fma=4.0,
    add=4.0,
    mul=4.0,
    smem_load=27.0,
    smem_store=19.0,
    smem_broadcast=27.0,
    gmem_load=300.0,
    gmem_store=300.0,
    l1_load=28.0,
    l2_load=193.0,
    sync=22.0,
)

#: Kepler/Maxwell use the Pascal-style values scaled by their lower clocks;
#: only the capacities in Table 1 matter for those parts, but complete tables
#: keep the architecture presets self-consistent.
KEPLER_LATENCIES = replace(PASCAL_LATENCIES, shfl=36.0, fma=9.0, add=9.0, mul=9.0,
                           smem_load=38.0, l1_load=90.0, l2_load=260.0)
MAXWELL_LATENCIES = replace(PASCAL_LATENCIES, shfl=34.0, fma=6.0, add=6.0, mul=6.0,
                            smem_load=34.0, l1_load=86.0, l2_load=245.0)

#: A100 (GA100) values from the public dissecting-Ampere micro-benchmark
#: studies: arithmetic pipes match Volta, the L1 grows to 192 KB with a
#: slightly longer hit latency, DRAM latency drops a little, and the
#: ``cp.async`` global→shared path lands data without a register round-trip.
AMPERE_LATENCIES = LatencyTable(
    shfl=23.0,
    fma=4.0,
    add=4.0,
    mul=4.0,
    smem_load=29.0,
    smem_store=19.0,
    smem_broadcast=29.0,
    gmem_load=290.0,
    gmem_store=290.0,
    l1_load=38.0,
    l2_load=200.0,
    sync=18.0,
    gmem_to_smem=300.0,
)

#: H100 (GH100) values from the published Hopper micro-benchmarks: shorter
#: dependent-issue arithmetic, a much larger partitioned L2 with higher hit
#: latency, HBM3 with a deeper pipeline, and TMA-backed async copies.
HOPPER_LATENCIES = LatencyTable(
    shfl=25.0,
    fma=4.0,
    add=4.0,
    mul=4.0,
    smem_load=31.0,
    smem_store=21.0,
    smem_broadcast=31.0,
    gmem_load=470.0,
    gmem_store=470.0,
    l1_load=33.0,
    l2_load=273.0,
    sync=16.0,
    gmem_to_smem=480.0,
)

# Pascal's unified L1/texture path sustains roughly half the per-SM rate of
# its shared memory; Volta's redesigned 128 KB L1 reaches parity (the
# Section 7.1 discussion of why the SSAM advantage narrows on V100).
PASCAL_THROUGHPUT = ThroughputTable(l1=0.5)
VOLTA_THROUGHPUT = ThroughputTable(l1=1.0, l2=0.35)
KEPLER_THROUGHPUT = ThroughputTable(fma32=6.0, fma64=2.0, add32=6.0, mul32=6.0)
MAXWELL_THROUGHPUT = ThroughputTable(fma32=4.0, fma64=0.125, add32=4.0, mul32=4.0)
# A100 keeps Volta's 64 FP32 cores/SM; H100 doubles them to 128 (and the FP64
# pipe to 64), which doubles every arithmetic issue rate.
AMPERE_THROUGHPUT = ThroughputTable(l1=1.0, l2=0.4)
HOPPER_THROUGHPUT = ThroughputTable(fma32=4.0, fma64=2.0, add32=4.0, add64=2.0,
                                    mul32=4.0, mul64=2.0, l1=1.0, l2=0.5)


def latency_for_generation(generation: str) -> LatencyTable:
    """Return the latency table for an architecture generation name."""
    tables: Mapping[str, LatencyTable] = {
        "kepler": KEPLER_LATENCIES,
        "maxwell": MAXWELL_LATENCIES,
        "pascal": PASCAL_LATENCIES,
        "volta": VOLTA_LATENCIES,
        "ampere": AMPERE_LATENCIES,
        "hopper": HOPPER_LATENCIES,
    }
    try:
        return tables[generation.lower()]
    except KeyError as exc:
        raise ConfigurationError(f"unknown GPU generation {generation!r}") from exc


def throughput_for_generation(generation: str) -> ThroughputTable:
    """Return the throughput table for an architecture generation name."""
    tables: Mapping[str, ThroughputTable] = {
        "kepler": KEPLER_THROUGHPUT,
        "maxwell": MAXWELL_THROUGHPUT,
        "pascal": PASCAL_THROUGHPUT,
        "volta": VOLTA_THROUGHPUT,
        "ampere": AMPERE_THROUGHPUT,
        "hopper": HOPPER_THROUGHPUT,
    }
    try:
        return tables[generation.lower()]
    except KeyError as exc:
        raise ConfigurationError(f"unknown GPU generation {generation!r}") from exc
