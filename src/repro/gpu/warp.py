"""Warp-level data exchange primitives (the CUDA shuffle instructions).

These functions reproduce the semantics of ``__shfl_up_sync`` and friends on
arrays whose *last axis is the lane axis*.  They are pure functions so they
can be unit-tested and property-tested independently of the block execution
machinery, which wraps them with instruction accounting.  Leading axes are
arbitrary: a ``(threads,)`` register vector from the legacy per-block engine
and a ``(num_blocks, threads)`` vector from the batched engine shuffle
identically, which is what lets both engines share one kernel body.

CUDA semantics reproduced here:

* ``shfl_up(v, d)``   — lane ``i`` receives the value of lane ``i - d``;
  lanes ``i < d`` keep their own value.
* ``shfl_down(v, d)`` — lane ``i`` receives the value of lane ``i + d``;
  lanes ``i >= width - d`` keep their own value.
* ``shfl_idx(v, s)``  — every lane receives the value of lane ``s``.
* ``shfl_xor(v, m)``  — lane ``i`` receives the value of lane ``i ^ m``.
"""

from __future__ import annotations


import numpy as np

from ..errors import SimulationError


def _check_width(values: np.ndarray, width: int) -> None:
    if width <= 0 or width & (width - 1):
        raise SimulationError("shuffle width must be a positive power of two")
    if values.shape[-1] % width != 0:
        raise SimulationError(
            f"lane axis of length {values.shape[-1]} is not a multiple of width {width}"
        )


def _grouped(values: np.ndarray, width: int) -> np.ndarray:
    """Reshape so the last axis is exactly one shuffle group wide."""
    return values.reshape(values.shape[:-1] + (-1, width))


def shfl_up(values: np.ndarray, delta: int, width: int = 32) -> np.ndarray:
    """``__shfl_up_sync``: shift values towards higher lanes by ``delta``."""
    _check_width(values, width)
    if delta < 0:
        raise SimulationError("shfl_up delta must be non-negative")
    if delta == 0:
        return values.copy()
    grouped = _grouped(values, width)
    result = grouped.copy()
    if delta < width:
        result[..., delta:] = grouped[..., : width - delta]
    return result.reshape(values.shape)


def shfl_down(values: np.ndarray, delta: int, width: int = 32) -> np.ndarray:
    """``__shfl_down_sync``: shift values towards lower lanes by ``delta``."""
    _check_width(values, width)
    if delta < 0:
        raise SimulationError("shfl_down delta must be non-negative")
    if delta == 0:
        return values.copy()
    grouped = _grouped(values, width)
    result = grouped.copy()
    if delta < width:
        result[..., : width - delta] = grouped[..., delta:]
    return result.reshape(values.shape)


def shfl_idx(values: np.ndarray, source_lane: int, width: int = 32) -> np.ndarray:
    """``__shfl_sync``: broadcast the value held by ``source_lane``."""
    _check_width(values, width)
    if not 0 <= source_lane < width:
        raise SimulationError(f"source lane {source_lane} outside [0, {width})")
    grouped = _grouped(values, width)
    result = np.broadcast_to(grouped[..., source_lane:source_lane + 1],
                             grouped.shape).copy()
    return result.reshape(values.shape)


def shfl_xor(values: np.ndarray, lane_mask: int, width: int = 32) -> np.ndarray:
    """``__shfl_xor_sync``: butterfly exchange with lane ``i ^ lane_mask``."""
    _check_width(values, width)
    if not 0 <= lane_mask < width:
        raise SimulationError(f"lane mask {lane_mask} outside [0, {width})")
    grouped = _grouped(values, width)
    lanes = np.arange(width)
    result = grouped[..., lanes ^ lane_mask]
    return result.reshape(values.shape)


def ballot(predicate: np.ndarray, width: int = 32) -> np.ndarray:
    """``__ballot_sync``: pack per-lane predicates into a bitmask per group."""
    _check_width(predicate, width)
    grouped = _grouped(predicate.astype(bool), width)
    weights = (1 << np.arange(width, dtype=np.uint64))
    return (grouped.astype(np.uint64) * weights).sum(axis=-1)


def lane_ids(count: int, width: int = 32) -> np.ndarray:
    """Lane index of each of ``count`` consecutive threads."""
    return np.arange(count) % width


def warp_ids(count: int, width: int = 32) -> np.ndarray:
    """Warp index of each of ``count`` consecutive threads."""
    return np.arange(count) // width


class Warp:
    """A single 32-lane warp holding named register vectors.

    This convenience wrapper is used by the micro-benchmarks and by unit
    tests; the kernel execution path operates on whole thread blocks via
    :class:`repro.gpu.block.BlockContext` and calls the module-level
    functions directly.
    """

    def __init__(self, width: int = 32, precision: object = "float32") -> None:
        from ..dtypes import resolve_precision

        self.width = width
        self.precision = resolve_precision(precision)
        self._registers: dict[str, np.ndarray] = {}

    @property
    def lanes(self) -> np.ndarray:
        """Lane indices 0..width-1."""
        return np.arange(self.width)

    def set_register(self, name: str, values: np.ndarray) -> None:
        """Store a per-lane register vector."""
        array = np.asarray(values, dtype=self.precision.numpy_dtype)
        if array.shape != (self.width,):
            raise SimulationError(
                f"register {name!r} must have shape ({self.width},), got {array.shape}"
            )
        self._registers[name] = array.copy()

    def get_register(self, name: str) -> np.ndarray:
        """Read back a per-lane register vector."""
        try:
            return self._registers[name].copy()
        except KeyError as exc:
            raise SimulationError(f"register {name!r} was never written") from exc

    def shfl_up(self, name: str, delta: int) -> np.ndarray:
        """Shuffle a named register up and return the received values."""
        return shfl_up(self.get_register(name), delta, self.width)

    def shfl_down(self, name: str, delta: int) -> np.ndarray:
        """Shuffle a named register down and return the received values."""
        return shfl_down(self.get_register(name), delta, self.width)
