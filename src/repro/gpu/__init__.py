"""The simulated GPU substrate: architectures, SIMT execution and timing.

This subpackage stands in for the CUDA toolkit + Tesla hardware used in the
paper.  Kernels written against :class:`~repro.gpu.block.BlockContext` are
functionally executed (lane-vectorised with NumPy) while every warp
instruction and memory transaction is counted; the analytical model in
:mod:`repro.gpu.profiler` then converts the counts into execution-time
estimates for the architecture presets of Table 1.
"""

from .architecture import (
    ARCHITECTURES,
    EVALUATED_ARCHITECTURES,
    GPUArchitecture,
    TESLA_K40,
    TESLA_M40,
    TESLA_P100,
    TESLA_V100,
    get_architecture,
    table1_rows,
)
from .batch import (
    BatchedBlockContext,
    BatchedSharedArray,
    BatchedSharedMemory,
    BatchedTrafficTracker,
)
from .block import BlockContext
from .counters import KernelCounters, merge_counters
from .kernel import (
    Kernel,
    LaunchConfig,
    LaunchResult,
    auto_batch_size,
    grid_1d,
    grid_2d,
    kernel,
)
from .latency import LatencyTable, ThroughputTable
from .memory import (
    DeviceBuffer,
    GlobalMemory,
    coalesced_transactions,
    coalesced_transactions_matrix,
    rowwise_unique_counts,
    rowwise_unique_pad,
)
from .microbench import DependentChain, IndependentStream, measure_latency, run_table2
from .occupancy import OccupancyResult, compute_occupancy
from .profiler import TimingBreakdown, estimate_time
from .register_file import (
    RegisterAllocation,
    allocate_registers,
    register_cache_capacity,
    registers_for_cache,
)
from .shared_memory import SharedMemory, bank_conflict_degree, bank_conflict_profile
from .warp import Warp, ballot, shfl_down, shfl_idx, shfl_up, shfl_xor

__all__ = [
    "ARCHITECTURES",
    "EVALUATED_ARCHITECTURES",
    "GPUArchitecture",
    "TESLA_K40",
    "TESLA_M40",
    "TESLA_P100",
    "TESLA_V100",
    "get_architecture",
    "table1_rows",
    "BatchedBlockContext",
    "BatchedSharedArray",
    "BatchedSharedMemory",
    "BatchedTrafficTracker",
    "BlockContext",
    "KernelCounters",
    "merge_counters",
    "Kernel",
    "LaunchConfig",
    "LaunchResult",
    "auto_batch_size",
    "grid_1d",
    "grid_2d",
    "kernel",
    "LatencyTable",
    "ThroughputTable",
    "DeviceBuffer",
    "GlobalMemory",
    "coalesced_transactions",
    "coalesced_transactions_matrix",
    "rowwise_unique_counts",
    "rowwise_unique_pad",
    "DependentChain",
    "IndependentStream",
    "measure_latency",
    "run_table2",
    "OccupancyResult",
    "compute_occupancy",
    "TimingBreakdown",
    "estimate_time",
    "RegisterAllocation",
    "allocate_registers",
    "register_cache_capacity",
    "registers_for_cache",
    "SharedMemory",
    "bank_conflict_degree",
    "bank_conflict_profile",
    "Warp",
    "ballot",
    "shfl_down",
    "shfl_idx",
    "shfl_up",
    "shfl_xor",
]
