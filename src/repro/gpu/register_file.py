"""Register-file budgeting, spill detection and the register-cache resource.

The central resource in SSAM is the per-thread register file: each thread
caches ``C = N + P - 1`` input values (Equation 3) plus loop-carried partial
sums in registers.  The compiler spills to local memory when the per-thread
budget is exceeded (Section 2, item iv), which destroys the performance of
register-cache methods, so plans must be validated against the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtypes import resolve_precision
from ..errors import ResourceExhaustedError
from .architecture import GPUArchitecture


#: registers the compiler needs for addressing, loop counters and temporaries
#: on top of the explicitly cached values (empirical nvcc overhead).
BASE_REGISTER_OVERHEAD = 18

#: per-thread register allocation granularity: requests round up to pairs
REGISTER_ALLOCATION_GRANULARITY = 2


@dataclass(frozen=True)
class RegisterAllocation:
    """Outcome of allocating registers for one kernel configuration.

    Attributes
    ----------
    requested_per_thread:
        Registers the kernel would like per thread (cache + accumulators +
        overhead), before applying the hardware cap.
    allocated_per_thread:
        Registers actually granted (rounded up to the allocation
        granularity, capped at ``max_registers_per_thread``).
    spilled_per_thread:
        Values that do not fit and spill to local memory (0 in healthy
        configurations).
    """

    requested_per_thread: int
    allocated_per_thread: int
    spilled_per_thread: int

    @property
    def spills(self) -> bool:
        """True when the configuration spills registers to local memory."""
        return self.spilled_per_thread > 0


def registers_for_cache(cache_values: int, accumulators: int,
                        precision: object = "float32",
                        overhead: int = BASE_REGISTER_OVERHEAD) -> int:
    """Registers per thread needed for a register-cache configuration.

    Parameters
    ----------
    cache_values:
        Number of cached input values per thread (``C`` in the paper).
    accumulators:
        Number of live partial-sum accumulators per thread (``P`` for the
        sliding-window convolution kernel).
    precision:
        Element precision; double-precision values occupy two 32-bit
        registers each.
    overhead:
        Fixed compiler overhead (addresses, indices, loop counters).
    """
    prec = resolve_precision(precision)
    per_value = prec.registers_per_value
    return (cache_values + accumulators) * per_value + overhead


def allocate_registers(architecture: GPUArchitecture, requested_per_thread: int,
                       allow_spill: bool = True) -> RegisterAllocation:
    """Apply the hardware per-thread register cap and report spills.

    Raises
    ------
    ResourceExhaustedError
        If ``allow_spill`` is False and the request exceeds the cap.
    """
    granularity = REGISTER_ALLOCATION_GRANULARITY
    rounded = ((requested_per_thread + granularity - 1) // granularity) * granularity
    cap = architecture.max_registers_per_thread
    if rounded <= cap:
        return RegisterAllocation(requested_per_thread, rounded, 0)
    spilled = rounded - cap
    if not allow_spill:
        raise ResourceExhaustedError(
            f"kernel needs {rounded} registers/thread, architecture cap is {cap}"
        )
    return RegisterAllocation(requested_per_thread, cap, spilled)


def register_limited_threads_per_sm(architecture: GPUArchitecture,
                                    registers_per_thread: int) -> int:
    """Maximum resident threads per SM permitted by the register file."""
    if registers_per_thread <= 0:
        return architecture.max_threads_per_sm
    return min(architecture.max_threads_per_sm,
               architecture.registers_per_sm // registers_per_thread)


def register_cache_capacity(architecture: GPUArchitecture,
                            registers_per_thread: int,
                            precision: object = "float32",
                            overhead: int = BASE_REGISTER_OVERHEAD) -> int:
    """How many values one thread can cache given a register budget.

    Inverse of :func:`registers_for_cache` with zero extra accumulators;
    used by planners to choose the largest viable ``P``.
    """
    prec = resolve_precision(precision)
    usable = max(0, registers_per_thread - overhead)
    return usable // prec.registers_per_value


def warp_register_matrix_bytes(cache_values: int, precision: object = "float32",
                               warp_size: int = 32) -> int:
    """Size of the WarpSize x C register matrix of Figure 2a, in bytes."""
    prec = resolve_precision(precision)
    return cache_values * warp_size * prec.itemsize
