"""Global-memory buffers and traffic accounting for the simulated GPU.

Data movement policy
--------------------
The timing model charges DRAM for the *unique* cache lines touched by each
thread block (perfect intra-block reuse through L1/L2) and assumes no reuse
between blocks.  This is exactly the halo/redundancy analysis of Section 5.3
of the paper: a blocked kernel pays for its tile plus its halo once per
block, regardless of how the accesses are scheduled inside the block.
Per-warp coalescing is still tracked (number of 128-byte sectors per warp
load/store) because uncoalesced access patterns increase the number of
transactions the load/store units must issue.

Write traffic is charged directly per store (write-through, no write
combining across stores), so stores do not go through the unique-line
tracker; only reads do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dtypes import resolve_precision
from ..errors import LaunchError, SimulationError

_buffer_ids = itertools.count(1)


@dataclass
class DeviceBuffer:
    """A linear global-memory allocation backed by a NumPy array.

    The array may be multi-dimensional for convenience; all traffic
    accounting happens on the flattened view.  ``cached=True`` marks small
    constant-like buffers (filter weights, coefficients) whose reads are
    assumed to hit in L2/constant cache and therefore generate no DRAM
    traffic after the first block.
    """

    array: np.ndarray
    name: str = ""
    cached: bool = False
    buffer_id: int = field(default_factory=lambda: next(_buffer_ids))

    def __post_init__(self) -> None:
        if not isinstance(self.array, np.ndarray):
            raise LaunchError("DeviceBuffer requires a NumPy array")
        if not self.name:
            self.name = f"buffer{self.buffer_id}"

    # -- host/device movement ------------------------------------------------
    def to_host(self) -> np.ndarray:
        """Copy the buffer contents back to the host."""
        return np.array(self.array, copy=True)

    def fill(self, value: float) -> None:
        """Fill the buffer with a constant (device-side memset)."""
        self.array.fill(value)

    # -- geometry -------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.array.shape

    @property
    def size(self) -> int:
        return int(self.array.size)

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def itemsize(self) -> int:
        return int(self.array.itemsize)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def flat(self) -> np.ndarray:
        """Flat (1-D) view used for index-based access."""
        return self.array.reshape(-1)


class GlobalMemory:
    """Device global-memory manager.

    Allocates :class:`DeviceBuffer` objects, moves data to/from the host and
    tracks the total footprint so experiments can check they fit in the 16 GB
    of the evaluated Tesla parts.
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        self.capacity_bytes = capacity_bytes
        self._buffers: Dict[int, DeviceBuffer] = {}

    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently allocated on the simulated device."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def allocate(self, shape: Tuple[int, ...], precision: object = "float32",
                 name: str = "", fill: Optional[float] = None) -> DeviceBuffer:
        """Allocate a zero-initialised device buffer."""
        prec = resolve_precision(precision)
        array = np.zeros(shape, dtype=prec.numpy_dtype)
        if fill is not None:
            array.fill(fill)
        return self._register(DeviceBuffer(array=array, name=name))

    def to_device(self, host_array: np.ndarray, name: str = "",
                  cached: bool = False) -> DeviceBuffer:
        """Copy a host array into a new device buffer."""
        array = np.array(host_array, copy=True)
        return self._register(DeviceBuffer(array=array, name=name, cached=cached))

    def free(self, buffer: DeviceBuffer) -> None:
        """Release a device buffer."""
        self._buffers.pop(buffer.buffer_id, None)

    def _register(self, buffer: DeviceBuffer) -> DeviceBuffer:
        new_total = self.allocated_bytes + buffer.nbytes
        if self.capacity_bytes is not None and new_total > self.capacity_bytes:
            raise LaunchError(
                f"device out of memory: need {new_total} bytes, "
                f"capacity {self.capacity_bytes} bytes"
            )
        self._buffers[buffer.buffer_id] = buffer
        return buffer


def coalesced_transactions(flat_indices: np.ndarray, itemsize: int,
                           line_bytes: int = 128) -> int:
    """Number of memory sectors touched by one warp-level access.

    A fully coalesced access of 32 contiguous 4-byte words touches a single
    128-byte sector; strided or scattered accesses touch more.  Inactive
    lanes must be filtered out by the caller.
    """
    if flat_indices.size == 0:
        return 0
    lines = (flat_indices.astype(np.int64) * itemsize) // line_bytes
    return int(np.unique(lines).size)


_SENTINEL = np.iinfo(np.int64).max


def rowwise_sorted_firsts(values: np.ndarray,
                          mask: Optional[np.ndarray] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Sort each row and flag the first occurrence of every distinct value.

    The one segmented-unique primitive shared by every vectorised
    accounting path (coalescing sectors, unique-line DRAM traffic, bank
    conflicts): returns ``(work, firsts)`` where ``work`` is the row-sorted
    copy of ``values`` with masked-off entries replaced by the int64-max
    sentinel, and ``firsts`` marks, per row, the first occurrence of each
    distinct non-sentinel value — so ``firsts.sum(axis=1)`` is the per-row
    unique count and ``work[firsts]`` are the unique values themselves.
    Sentinel entries already present in ``values`` are treated as padding.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 2:
        raise SimulationError("rowwise_sorted_firsts expects a 2-D matrix")
    work = np.where(mask, values, _SENTINEL) if mask is not None else np.array(values)
    work.sort(axis=1)
    valid = work != _SENTINEL
    firsts = np.empty(work.shape, dtype=bool)
    if work.shape[1]:
        firsts[:, 0] = valid[:, 0]
        firsts[:, 1:] = valid[:, 1:] & (work[:, 1:] != work[:, :-1])
    return work, firsts


def rowwise_unique_counts(values: np.ndarray,
                          mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Number of distinct values among the active entries of each row.

    Vectorised equivalent of ``np.unique(row[mask]).size`` applied row by
    row: one sort over the whole matrix instead of a Python loop, which is
    what lets the batched execution engine compute per-warp coalescing and
    per-block unique-line traffic for a whole batch of blocks at once.

    Parameters
    ----------
    values:
        Integer matrix of shape ``(rows, width)``.  Values must be
        non-negative (the engine passes cache-line / element indices).
    mask:
        Optional boolean matrix of the same shape; ``False`` entries are
        excluded.  Rows with no active entry count 0.
    """
    _, firsts = rowwise_sorted_firsts(values, mask)
    return firsts.sum(axis=1)


def rowwise_unique_pad(values: np.ndarray,
                       mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-row sorted unique values, right-padded with a sentinel.

    Entries equal to ``np.iinfo(np.int64).max`` (and entries excluded by
    ``mask``) are treated as padding on input, so the output of one call can
    be concatenated with fresh data and fed back in — the compaction step of
    the batched traffic tracker's bounded-memory accumulation.
    """
    work, firsts = rowwise_sorted_firsts(values, mask)
    rows = work.shape[0]
    if rows == 0 or work.shape[1] == 0:
        return np.full((rows, 1), _SENTINEL, dtype=np.int64)
    padded_width = max(1, int(firsts.sum(axis=1).max()))
    out = np.full((rows, padded_width), _SENTINEL, dtype=np.int64)
    positions = np.cumsum(firsts, axis=1) - 1
    row_ids = np.broadcast_to(np.arange(rows)[:, None], work.shape)
    out[row_ids[firsts], positions[firsts]] = work[firsts]
    return out


def coalesced_transactions_matrix(flat_indices: np.ndarray, itemsize: int,
                                  line_bytes: int = 128,
                                  mask: Optional[np.ndarray] = None) -> int:
    """Total sectors touched by a matrix of warp accesses (one warp per row).

    Equivalent to summing :func:`coalesced_transactions` over the rows with
    inactive lanes filtered by ``mask``, but computed in one vectorised pass.
    """
    lines = (np.asarray(flat_indices, dtype=np.int64) * itemsize) // line_bytes
    return int(rowwise_unique_counts(lines, mask).sum())


class BlockTrafficTracker:
    """Tracks the unique global-memory lines read by one thread block.

    ``finalize`` converts the touched-line sets into DRAM bytes according to
    the perfect-intra-block-reuse policy described in the module docstring.
    Only *reads* are tracked — write traffic is charged directly per store
    (see the module docstring).
    """

    def __init__(self, line_bytes: int = 128) -> None:
        self.line_bytes = line_bytes
        self._read_lines: Dict[int, List[np.ndarray]] = {}

    def record_read(self, buffer: DeviceBuffer, flat_indices: np.ndarray) -> None:
        if buffer.cached:
            return
        lines = (flat_indices.astype(np.int64) * buffer.itemsize) // self.line_bytes
        self._read_lines.setdefault(buffer.buffer_id, []).append(lines)

    def finalize(self) -> float:
        """The block's DRAM read bytes (unique lines per touched buffer)."""
        total = 0
        for chunks in self._read_lines.values():
            if not chunks:
                continue
            lines = np.concatenate(chunks)
            total += int(np.unique(lines).size) * self.line_bytes
        return float(total)


def clamp_indices(indices: np.ndarray, lower: int, upper: int) -> np.ndarray:
    """Clamp indices to ``[lower, upper]`` (replicate / 'nearest' boundary)."""
    return np.clip(indices, lower, upper)


def linear_index_2d(row: np.ndarray, col: np.ndarray, width: int) -> np.ndarray:
    """Row-major flattened index for 2-D coordinates."""
    return row.astype(np.int64) * int(width) + col.astype(np.int64)


def linear_index_3d(z: np.ndarray, y: np.ndarray, x: np.ndarray,
                    height: int, width: int) -> np.ndarray:
    """Row-major flattened index for 3-D coordinates (z-major)."""
    return (z.astype(np.int64) * int(height) + y.astype(np.int64)) * int(width) + x.astype(np.int64)
