"""Dynamic shared-memory race checking for the batched engine.

The static verifier (:mod:`repro.analysis`) proves race freedom from the
trace IR; this module is its *dynamic confirmation mode*: a
phase-interleaving checker that observes every shared-memory access the
batched engine actually executes and flags same-phase conflicts between
distinct threads.  Enable it around any launch::

    with shared_race_checking() as checker:
        kernel.launch(config, args, ...)
    assert not checker.events

Within one barrier phase the checker tracks, per (block, address), the
last writer, the stored value and the reader set.  A conflict is recorded
when distinct threads touch one address and at least one writes — unless
every write stores the same value (the idempotent-broadcast pattern, which
the static detector exempts identically).  ``record_only=False`` raises
:class:`SharedMemoryRaceError` on the first conflict instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError

#: reader/writer cell states
_EMPTY = -1      #: no access this phase
_MANY = -2       #: accessed by multiple distinct threads this phase

#: events recorded per checker before further conflicts are dropped
MAX_EVENTS = 64


class SharedMemoryRaceError(SimulationError):
    """A dynamic shared-memory race was observed (``record_only=False``)."""


class SharedMemoryRaceChecker:
    """Collects race events across every context attached to it."""

    def __init__(self, record_only: bool = True) -> None:
        self.record_only = record_only
        self.events: List[Dict[str, object]] = []

    def attach(self, num_blocks: int, block_threads: int
               ) -> "_ContextRaceState":
        """Per-execution-context recorder feeding this checker's events."""
        return _ContextRaceState(self, num_blocks, block_threads)

    def report(self, event: Dict[str, object]) -> None:
        if not self.record_only:
            raise SharedMemoryRaceError(
                f"shared-memory race on {event['shared']!r}: "
                f"{event['kind']} at address {event['address']} of block "
                f"{event['block']} between threads {event['threads']} in "
                f"barrier phase {event['phase']}")
        if len(self.events) < MAX_EVENTS:
            self.events.append(event)


class _ContextRaceState:
    """Phase-local reader/writer tracking for one batched context."""

    def __init__(self, checker: SharedMemoryRaceChecker, num_blocks: int,
                 block_threads: int) -> None:
        self.checker = checker
        self.num_blocks = int(num_blocks)
        self.block_threads = int(block_threads)
        self.phase = 0
        #: name -> (writers, readers, stored_values)
        self._state: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._rows = np.broadcast_to(
            np.arange(self.num_blocks, dtype=np.int64)[:, None],
            (self.num_blocks, self.block_threads))
        self._tids = np.broadcast_to(
            np.arange(self.block_threads, dtype=np.int64),
            (self.num_blocks, self.block_threads))

    def _arrays(self, name: str, size: int
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        state = self._state.get(name)
        if state is None:
            writers = np.full((self.num_blocks, size), _EMPTY, dtype=np.int64)
            readers = np.full((self.num_blocks, size), _EMPTY, dtype=np.int64)
            stored = np.zeros((self.num_blocks, size), dtype=np.float64)
            state = self._state[name] = (writers, readers, stored)
        return state

    def on_barrier(self) -> None:
        self.phase += 1
        for writers, readers, _stored in self._state.values():
            writers.fill(_EMPTY)
            readers.fill(_EMPTY)

    def _report(self, kind: str, name: str, conflict: np.ndarray,
                indices: np.ndarray, other: np.ndarray) -> None:
        blocks, lanes = np.nonzero(conflict)
        block, lane = int(blocks[0]), int(lanes[0])
        address = int(indices[block, lane])
        previous = int(other[block, lane])
        threads = sorted({lane} | ({previous} if previous >= 0 else set()))
        self.checker.report({
            "kind": kind, "shared": name, "phase": self.phase,
            "block": block, "address": address, "threads": threads,
        })

    def _conflicts_with(self, cells: np.ndarray) -> np.ndarray:
        """Cells whose recorded thread is distinct from the current one."""
        return (cells == _MANY) | ((cells >= 0) & (cells != self._tids))

    def _mark_duplicates(self, table: np.ndarray, size: int,
                         indices: np.ndarray, active: np.ndarray) -> None:
        """Addresses touched by >1 lane this statement are multi-thread."""
        keys = (self._rows * size + indices)[active]
        if keys.size < 2:
            return
        keys.sort()
        dup_keys = keys[1:][keys[1:] == keys[:-1]]
        if dup_keys.size:
            blocks, addresses = np.divmod(np.unique(dup_keys), size)
            table[blocks, addresses] = _MANY

    def on_access(self, name: str, size: int, indices: np.ndarray,
                  lane_mask: Optional[np.ndarray],
                  values: Optional[np.ndarray], is_store: bool) -> None:
        writers, readers, stored = self._arrays(name, size)
        shape = (self.num_blocks, self.block_threads)
        indices = np.broadcast_to(np.asarray(indices, dtype=np.int64), shape)
        active = (np.ones(shape, dtype=bool) if lane_mask is None
                  else np.broadcast_to(lane_mask, shape))
        prev_writer = writers[self._rows, indices]
        writer_conflict = active & self._conflicts_with(prev_writer)
        if is_store:
            cast = np.broadcast_to(np.asarray(values), shape) \
                .astype(np.float64, copy=False)
            same_value = stored[self._rows, indices] == cast
            ww = writer_conflict & ~same_value
            if ww.any():
                self._report("write-write", name, ww, indices, prev_writer)
            prev_reader = readers[self._rows, indices]
            war = active & self._conflicts_with(prev_reader)
            if war.any():
                self._report("write-after-read", name, war, indices,
                             prev_reader)
            # intra-statement duplicate targets are distinct threads by
            # construction; differing values make them a race
            self._intra_statement_store(name, size, indices, active, cast)
            self._update(writers, indices, active)
            self._mark_duplicates(writers, size, indices, active)
            stored[self._rows[active], indices[active]] = cast[active]
        else:
            if writer_conflict.any():
                self._report("read-after-write", name, writer_conflict,
                             indices, prev_writer)
            self._update(readers, indices, active)
            self._mark_duplicates(readers, size, indices, active)

    def _intra_statement_store(self, name: str, size: int,
                               indices: np.ndarray, active: np.ndarray,
                               values: np.ndarray) -> None:
        keys = (self._rows * size + indices)[active]
        if keys.size < 2:
            return
        vals = values[active]
        tids = self._tids[active]
        order = np.argsort(keys, kind="stable")
        keys, vals, tids = keys[order], vals[order], tids[order]
        racy = (keys[1:] == keys[:-1]) & (vals[1:] != vals[:-1])
        if not racy.any():
            return
        at = int(np.argmax(racy))
        block, address = divmod(int(keys[at]), size)
        self.checker.report({
            "kind": "write-write", "shared": name, "phase": self.phase,
            "block": block, "address": address,
            "threads": sorted({int(tids[at]), int(tids[at + 1])}),
        })

    def _update(self, table: np.ndarray, indices: np.ndarray,
                active: np.ndarray) -> None:
        current = table[self._rows, indices]
        merged = np.where(current == _EMPTY, self._tids,
                          np.where(current == self._tids, current, _MANY))
        table[self._rows[active], indices[active]] = merged[active]


_CHECKER_STACK: List[SharedMemoryRaceChecker] = []


def active_race_checker() -> Optional[SharedMemoryRaceChecker]:
    """The innermost enabled checker, if any (consulted by the engine)."""
    return _CHECKER_STACK[-1] if _CHECKER_STACK else None


@contextmanager
def shared_race_checking(record_only: bool = True):
    """Enable dynamic race checking for every launch inside the block."""
    checker = SharedMemoryRaceChecker(record_only=record_only)
    _CHECKER_STACK.append(checker)
    try:
        yield checker
    finally:
        _CHECKER_STACK.pop()
