"""GPU architecture descriptions used by the simulator and the timing model.

The capacities follow Table 1 of the paper:

=========  =================  ====================  ====
Tesla GPU  Shared memory/SM   32-bit registers/SM   SMs
=========  =================  ====================  ====
K40        16/32/48 KB        65536                  15
M40        96 KB              65536                  24
P100       64 KB              65536                  56
V100       up to 96 KB        65536                  80
=========  =================  ====================  ====

Clocks, memory bandwidth, cache sizes and register-bank counts come from the
public whitepapers and the micro-benchmarking studies cited in Section 7.1
(Jia et al.): Volta has a 128 KB combined L1 (vs. 24 KB usable on Pascal), a
6 MB L2 (vs. 4 MB) and two register banks (vs. four on earlier generations).

The post-paper A100 (Ampere) and H100 (Hopper) presets extend the same
model from their whitepapers and the dissecting-Ampere/Hopper follow-up
studies: much larger shared-memory carve-outs (164/228 KB per SM), bigger
L1/L2, HBM2e/HBM3 bandwidth, and an asynchronous global→shared copy path
(``cp.async`` / TMA) exposed through ``LatencyTable.gmem_to_smem``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, Tuple

from ..errors import ConfigurationError
from .latency import (
    LatencyTable,
    ThroughputTable,
    latency_for_generation,
    throughput_for_generation,
)

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class GPUArchitecture:
    """Static description of a CUDA-capable GPU used for simulation.

    All capacity fields are per-SM unless stated otherwise.  Instances are
    immutable; use :meth:`with_shared_memory_carveout` or
    :func:`dataclasses.replace` to derive variants.
    """

    name: str
    generation: str
    sm_count: int
    warp_size: int
    #: 32-bit registers per SM (Table 1: 65536 on every evaluated part).
    registers_per_sm: int
    max_registers_per_thread: int
    max_registers_per_block: int
    shared_memory_per_sm: int
    shared_memory_per_block: int
    shared_memory_banks: int
    shared_memory_bank_bytes: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    l1_cache_bytes: int
    l2_cache_bytes: int
    cache_line_bytes: int
    register_banks: int
    fp32_cores_per_sm: int
    fp64_ratio: float
    core_clock_hz: float
    memory_bandwidth_bytes: float
    dram_efficiency: float
    global_memory_bytes: int
    register_allocation_granularity: int = 256
    shared_allocation_granularity: int = 256
    warp_allocation_granularity: int = 2
    latencies: LatencyTable = field(default=None)  # type: ignore[assignment]
    throughput: ThroughputTable = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ConfigurationError("warp_size must be a positive power of two")
        if self.sm_count <= 0:
            raise ConfigurationError("sm_count must be positive")
        if self.latencies is None:
            object.__setattr__(self, "latencies", latency_for_generation(self.generation))
        if self.throughput is None:
            object.__setattr__(self, "throughput", throughput_for_generation(self.generation))

    # -- derived quantities -------------------------------------------------
    @property
    def registers_per_sm_bytes(self) -> int:
        """Register file capacity per SM in bytes (65536 x 4 B = 256 KB)."""
        return self.registers_per_sm * 4

    @property
    def peak_fp32_flops(self) -> float:
        """Peak single-precision FLOP/s (2 FLOP per FMA)."""
        return 2.0 * self.fp32_cores_per_sm * self.sm_count * self.core_clock_hz

    @property
    def peak_fp64_flops(self) -> float:
        """Peak double-precision FLOP/s."""
        return self.peak_fp32_flops * self.fp64_ratio

    @property
    def effective_bandwidth_bytes(self) -> float:
        """Sustainable DRAM bandwidth (peak x measured efficiency)."""
        return self.memory_bandwidth_bytes * self.dram_efficiency

    @property
    def supports_async_copy(self) -> bool:
        """True when the part has a direct global→shared copy path."""
        return self.latencies.supports_async_copy

    @property
    def register_to_shared_ratio(self) -> float:
        """Register-file : scratchpad capacity ratio highlighted in Section 2.

        The paper notes the 256 KB register file is more than 2.7x larger
        than the scratchpad on the latest GPUs.
        """
        return self.registers_per_sm_bytes / float(self.shared_memory_per_sm)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count on one SM into seconds."""
        return float(cycles) / self.core_clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds into core clock cycles."""
        return float(seconds) * self.core_clock_hz

    def with_shared_memory_carveout(self, bytes_per_sm: int) -> "GPUArchitecture":
        """Return a copy with a different shared-memory carve-out per SM.

        The K40 supports 16/32/48 KB and Volta up to 96 KB per block; the
        carve-out affects occupancy, so experiments can sweep it.
        """
        if bytes_per_sm <= 0 or bytes_per_sm > 228 * KIB:
            raise ConfigurationError("unrealistic shared memory carveout")
        return replace(
            self,
            shared_memory_per_sm=bytes_per_sm,
            shared_memory_per_block=min(bytes_per_sm, self.shared_memory_per_block),
        )

    def summary(self) -> Dict[str, object]:
        """Key capacities, as reported in Table 1, plus derived ratios."""
        return {
            "name": self.name,
            "generation": self.generation,
            "sm_count": self.sm_count,
            "shared_memory_per_sm_kib": self.shared_memory_per_sm // KIB,
            "registers_per_sm": self.registers_per_sm,
            "register_file_kib": self.registers_per_sm_bytes // KIB,
            "register_to_shared_ratio": round(self.register_to_shared_ratio, 2),
            "peak_fp32_tflops": round(self.peak_fp32_flops / 1e12, 2),
            "memory_bandwidth_gbs": round(self.memory_bandwidth_bytes / 1e9, 1),
        }


# ---------------------------------------------------------------------------
# Presets (Table 1 of the paper)
# ---------------------------------------------------------------------------

TESLA_K40 = GPUArchitecture(
    name="Tesla K40",
    generation="kepler",
    sm_count=15,
    warp_size=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_registers_per_block=65536,
    shared_memory_per_sm=48 * KIB,
    shared_memory_per_block=48 * KIB,
    shared_memory_banks=32,
    shared_memory_bank_bytes=4,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    l1_cache_bytes=16 * KIB,
    l2_cache_bytes=1536 * KIB,
    cache_line_bytes=128,
    register_banks=4,
    fp32_cores_per_sm=192,
    fp64_ratio=1.0 / 3.0,
    core_clock_hz=745e6,
    memory_bandwidth_bytes=288e9,
    dram_efficiency=0.75,
    global_memory_bytes=12 * 1024 * MIB,
)

TESLA_M40 = GPUArchitecture(
    name="Tesla M40",
    generation="maxwell",
    sm_count=24,
    warp_size=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_registers_per_block=65536,
    shared_memory_per_sm=96 * KIB,
    shared_memory_per_block=48 * KIB,
    shared_memory_banks=32,
    shared_memory_bank_bytes=4,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    l1_cache_bytes=24 * KIB,
    l2_cache_bytes=3 * MIB,
    cache_line_bytes=128,
    register_banks=4,
    fp32_cores_per_sm=128,
    fp64_ratio=1.0 / 32.0,
    core_clock_hz=1114e6,
    memory_bandwidth_bytes=288e9,
    dram_efficiency=0.75,
    global_memory_bytes=12 * 1024 * MIB,
)

TESLA_P100 = GPUArchitecture(
    name="Tesla P100",
    generation="pascal",
    sm_count=56,
    warp_size=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_registers_per_block=65536,
    shared_memory_per_sm=64 * KIB,
    shared_memory_per_block=48 * KIB,
    shared_memory_banks=32,
    shared_memory_bank_bytes=4,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    l1_cache_bytes=24 * KIB,
    l2_cache_bytes=4 * MIB,
    cache_line_bytes=128,
    register_banks=4,
    fp32_cores_per_sm=64,
    fp64_ratio=0.5,
    core_clock_hz=1328e6,
    memory_bandwidth_bytes=732e9,
    dram_efficiency=0.78,
    global_memory_bytes=16 * 1024 * MIB,
)

TESLA_V100 = GPUArchitecture(
    name="Tesla V100",
    generation="volta",
    sm_count=80,
    warp_size=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_registers_per_block=65536,
    shared_memory_per_sm=96 * KIB,
    shared_memory_per_block=96 * KIB,
    shared_memory_banks=32,
    shared_memory_bank_bytes=4,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    l1_cache_bytes=128 * KIB,
    l2_cache_bytes=6 * MIB,
    cache_line_bytes=128,
    register_banks=2,
    fp32_cores_per_sm=64,
    fp64_ratio=0.5,
    core_clock_hz=1530e6,
    memory_bandwidth_bytes=900e9,
    dram_efficiency=0.80,
    global_memory_bytes=16 * 1024 * MIB,
)

A100 = GPUArchitecture(
    name="A100",
    generation="ampere",
    sm_count=108,
    warp_size=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_registers_per_block=65536,
    shared_memory_per_sm=164 * KIB,
    shared_memory_per_block=163 * KIB,
    shared_memory_banks=32,
    shared_memory_bank_bytes=4,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    l1_cache_bytes=192 * KIB,
    l2_cache_bytes=40 * MIB,
    cache_line_bytes=128,
    register_banks=2,
    fp32_cores_per_sm=64,
    fp64_ratio=0.5,
    core_clock_hz=1410e6,
    memory_bandwidth_bytes=1555e9,
    dram_efficiency=0.82,
    global_memory_bytes=40 * 1024 * MIB,
)

H100 = GPUArchitecture(
    name="H100",
    generation="hopper",
    sm_count=132,
    warp_size=32,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_registers_per_block=65536,
    shared_memory_per_sm=228 * KIB,
    shared_memory_per_block=227 * KIB,
    shared_memory_banks=32,
    shared_memory_bank_bytes=4,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    l1_cache_bytes=256 * KIB,
    l2_cache_bytes=50 * MIB,
    cache_line_bytes=128,
    register_banks=2,
    fp32_cores_per_sm=128,
    fp64_ratio=0.5,
    core_clock_hz=1830e6,
    memory_bandwidth_bytes=3350e9,
    dram_efficiency=0.83,
    global_memory_bytes=80 * 1024 * MIB,
)

#: all presets keyed by short name
ARCHITECTURES: Dict[str, GPUArchitecture] = {
    "k40": TESLA_K40,
    "m40": TESLA_M40,
    "p100": TESLA_P100,
    "v100": TESLA_V100,
    "a100": A100,
    "h100": H100,
}

#: the two parts evaluated in the paper, in figure order
EVALUATED_ARCHITECTURES: Tuple[GPUArchitecture, ...] = (TESLA_P100, TESLA_V100)

#: post-paper parts added for the Section 7.1 "newer hardware" question
MODERN_ARCHITECTURES: Tuple[GPUArchitecture, ...] = (A100, H100)


def architecture_names() -> Tuple[str, ...]:
    """The preset short names, in Table 1 order (registry envelopes, CLIs)."""
    return tuple(ARCHITECTURES)


def get_architecture(name: object) -> GPUArchitecture:
    """Look up an architecture preset by name (case-insensitive).

    Accepts an existing :class:`GPUArchitecture` unchanged so public APIs can
    take either a name or an instance.
    """
    if isinstance(name, GPUArchitecture):
        return name
    if not isinstance(name, str):
        raise ConfigurationError(f"cannot interpret {name!r} as a GPU architecture")
    return _lookup_architecture(name)


@lru_cache(maxsize=None)
def _lookup_architecture(name: str) -> GPUArchitecture:
    """Name normalisation + preset lookup, memoised for hot launch paths."""
    key = name.lower().replace("tesla ", "").replace(" ", "")
    try:
        return ARCHITECTURES[key]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown GPU architecture {name!r}; available: {sorted(ARCHITECTURES)}"
        ) from exc


def table1_rows() -> Tuple[Dict[str, object], ...]:
    """Rows of Table 1 (shared memory and register files on GPUs)."""
    rows = []
    for key in ("k40", "m40", "p100", "v100"):
        arch = ARCHITECTURES[key]
        rows.append(
            {
                "gpu": arch.name,
                "shared_memory_per_sm_kib": arch.shared_memory_per_sm // KIB,
                "registers_per_sm": arch.registers_per_sm,
                "sm_count": arch.sm_count,
            }
        )
    return tuple(rows)
